#!/usr/bin/env python3
"""Full reproduction driver: paper-scale world, every figure and claim.

This is the long-form run (about a minute). It regenerates Table 1,
Figures 1a/1b/2 and the complete headline-claim suite against the default
paper-scale scenario, printing everything EXPERIMENTS.md records.

Usage::

    python examples/build_full_map.py [seed]
"""

import sys
import time

from repro import ScenarioConfig, build_scenario
from repro.analysis.claims import ClaimSuite
from repro.analysis.figures import (fig1a_prefixes_per_pop,
                                    fig1b_coverage_and_servers,
                                    fig2_subscribers_vs_signals)
from repro.analysis.report import (render_claims, render_fig1a,
                                   render_fig1b, render_fig2,
                                   render_table1)
from repro.analysis.tables import regenerate_table1
from repro.core.builder import MapBuilder


def main(seed: int = 20211110) -> None:
    t0 = time.time()
    print("Building the paper-scale simulated Internet...")
    scenario = build_scenario(ScenarioConfig.default(seed=seed))
    print(f"  built in {time.time() - t0:.1f}s: "
          f"{len(scenario.registry)} ASes, "
          f"{len(scenario.prefixes)} /24s, "
          f"{len(scenario.catalog)} services")

    print("\nRunning all measurement campaigns...")
    builder = MapBuilder(scenario)
    itm = builder.build()
    print(itm.summary())

    print("\n" + "=" * 72)
    print(render_table1(regenerate_table1(scenario, itm)))

    print("\n" + "=" * 72)
    print(render_fig1a(fig1a_prefixes_per_pop(
        scenario, builder.artifacts.cache_result)))

    print("\n" + "=" * 72)
    print(render_fig1b(fig1b_coverage_and_servers(
        scenario, builder.artifacts.cache_result,
        builder.artifacts.tls_result)))

    print("\n" + "=" * 72)
    print(render_fig2(fig2_subscribers_vs_signals(
        scenario, builder.artifacts.cache_result)))

    print("\n" + "=" * 72)
    suite = ClaimSuite(scenario, itm, builder.artifacts)
    print(render_claims(suite.run_all()))
    print(f"\nTotal wall time: {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
