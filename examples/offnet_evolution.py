#!/usr/bin/env python3
"""Longitudinal off-net growth — the [25] study replayed on the map.

The paper's services component builds on "Seven years in the life of
hypergiants' off-nets" [25]: periodic TLS scans tracking how hypergiant
cache programmes spread through eyeball networks. This example grows
every off-net programme epoch by epoch and prints the curves a
longitudinal study would plot: host counts and, more tellingly,
*user coverage* — which rises much faster because big ISPs sign first.

Usage::

    python examples/offnet_evolution.py [seed]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_table
from repro.rand import substream
from repro.services.evolution import OffnetGrowthModel
from repro.services.hypergiants import OffnetReach


def main(seed: int = 20211110) -> None:
    scenario = build_scenario(ScenarioConfig.medium(seed=seed))
    model = OffnetGrowthModel(scenario, substream(seed, "evolution"))
    epochs = 14
    series = model.run(epochs=epochs)
    users_by_as = scenario.population.users_by_as()

    sample_epochs = [0, 2, 4, 7, 10, 13]
    print(f"Off-net host counts per scan epoch "
          f"(of {len(scenario.registry.eyeballs())} eyeball ASes):\n")
    rows = []
    for key, spec in scenario.catalog.hypergiants.items():
        if spec.offnet_reach is OffnetReach.NONE:
            continue
        counts = series.counts_for(key)
        rows.append((spec.display_name, spec.offnet_reach.value,
                     *[counts[e] for e in sample_epochs]))
    print(render_table(
        ["hypergiant", "reach"] + [f"e{e}" for e in sample_epochs], rows))

    print("\nUser coverage of the MetaBook off-net programme:\n")
    coverage = series.user_coverage_series("metabook", users_by_as)
    counts = series.counts_for("metabook")
    rows = [(e, counts[e], f"{coverage[e]:.1%}") for e in sample_epochs]
    print(render_table(["epoch", "host ASes", "user coverage"], rows))
    mid = epochs // 2
    print(f"\nBy mid-study the programme reaches "
          f"{coverage[mid]:.0%} of users with only "
          f"{counts[mid]}/{counts[-1]} of its final host count — "
          "hypergiants deploy into the biggest networks first.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
