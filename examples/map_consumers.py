#!/usr/bin/env python3
"""The downstream researcher's workflow: load a published map, weight
your own analysis with it.

§4: "we hope the research community both uses and encourages others to
use the Internet traffic map for weighting analysis". This example plays
both roles: the *publisher* builds a map and exports it to JSON; the
*consumer* loads the JSON (no scenario internals needed), plugs their own
per-AS metric into :class:`MapWeighter`, and sees how weighting changes
the conclusion.

Usage::

    python examples/map_consumers.py [seed]
"""

import sys
import tempfile
from pathlib import Path

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_table
from repro.core.builder import MapBuilder
from repro.core.consumer import MapWeighter
from repro.core.serialize import map_from_json, map_to_json


def main(seed: int = 20211110) -> None:
    # ---- Publisher side -------------------------------------------------
    scenario = build_scenario(ScenarioConfig.small(seed=seed))
    itm = MapBuilder(scenario).build()
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "itm.json"
        artifact.write_text(map_to_json(itm, indent=2))
        print(f"Publisher: exported the map "
              f"({artifact.stat().st_size / 1024:.0f} KiB of JSON).")

        # ---- Consumer side ----------------------------------------------
        loaded = map_from_json(
            artifact.read_text(),
            prefix_asn=scenario.prefixes.asn_array)
        print("Consumer: loaded the map; "
              f"{len(loaded.users.activity_by_as)} ASes carry weights.")

    weighter = MapWeighter(loaded)

    # The consumer's own study: "how far is each network from the
    # nearest hypergiant serving site?" (a latency-ish metric they
    # computed themselves; here from the scenario's geometry).
    from repro.net.geography import haversine_km
    sites = scenario.deployment.onnet_sites("googol")
    metric = {}
    for asys in scenario.registry.eyeballs():
        distance = min(haversine_km(asys.home_city.lat,
                                    asys.home_city.lon,
                                    s.city.lat, s.city.lon)
                       for s in sites)
        metric[asys.asn] = distance

    study = weighter.study_as_metric(metric,
                                     "km to nearest Googol site")
    print(f"\nMetric: {study.metric_name} "
          f"({study.keys_used} ASes, "
          f"{study.keys_without_weight} without map weight)\n")
    print(render_table(["quantile", "unweighted", "map-weighted"],
                       study.summary_rows()))
    print("\nWeighted by real activity, users sit much closer to the "
          "content than a flat per-AS view suggests — the paper's "
          "point, now one import away for any consumer.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
