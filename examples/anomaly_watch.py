#!/usr/bin/env python3
"""Operator anomaly watch — "unusual traffic patterns" from public probes.

§2.1: operators "lack visibility to contextualize network events such as
network blackouts, performance anomalies, unusual traffic patterns, or
DDoS attacks." This example runs a baseline cache-probing campaign, then
injects two events into the world — a 3x traffic surge in one ISP and a
near-blackout in another — reruns the campaign, and lets the detector
find both from hit-count deltas alone.

Usage::

    python examples/anomaly_watch.py [seed]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_table
from repro.core.builder import MapBuilder
from repro.core.change_detection import detect_activity_changes
from repro.measure.cache_probing import CacheProbingCampaign
from repro.rand import substream
from repro.services.dnsinfra import CacheOracle


def campaign(scenario, oracle, label, seed):
    return CacheProbingCampaign(
        oracle=oracle, gdns=scenario.gdns,
        services=scenario.catalog.top_by_popularity(10),
        prefix_ids=scenario.routable_prefix_ids(), rounds_per_day=12,
        rng=substream(seed, "anomaly", label)).run()


def main(seed: int = 20211110) -> None:
    scenario = build_scenario(ScenarioConfig.small(seed=seed))
    itm = MapBuilder(scenario).build()
    top = itm.users.top_ases(5)
    surge_asn, drop_asn = top[1][0], top[2][0]
    surge_name = scenario.registry.get(surge_asn).name
    drop_name = scenario.registry.get(drop_asn).name

    print("Day 0: baseline probing campaign...")
    baseline = campaign(scenario, scenario.cache_oracle, "base", seed)

    print(f"Overnight, the world changes: {surge_name} surges 3x "
          f"(viral event), {drop_name} goes nearly dark (outage).")
    rates = scenario.cache_oracle._rate.copy()
    asns = scenario.prefixes.asn_array
    rates[:, asns == surge_asn] *= 3.0
    rates[:, asns == drop_asn] *= 0.05
    event_oracle = CacheOracle(rates, list(scenario.cache_oracle._ttls),
                               scenario.cache_oracle.observability_scale)

    print("Day 1: same campaign, changed Internet...")
    current = campaign(scenario, event_oracle, "event", seed)

    report = detect_activity_changes(baseline, current,
                                     scenario.prefixes)
    print(f"\nFlagged {len(report.changes)} of "
          f"{report.ases_compared} compared ASes:\n")
    rows = []
    for change in report.changes[:8]:
        name = scenario.registry.get(change.asn).name
        rows.append((f"AS{change.asn}", name, change.direction,
                     f"{change.baseline_hits:.0f}",
                     f"{change.current_hits:.0f}",
                     f"{change.z_score:+.1f}"))
    print(render_table(
        ["AS", "name", "event", "hits before", "hits after", "z"], rows))

    flagged = report.flagged_asns()
    verdict = ("both events caught"
               if {surge_asn, drop_asn} <= flagged else "MISSED an event")
    print(f"\n{verdict} — from nothing but public DNS cache probes.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
