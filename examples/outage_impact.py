#!/usr/bin/env python3
"""Outage impact assessment — the paper's flagship use case (§2.1).

"To assess the impact of an outage in a <region, AS>, the map can tell us
which popular services are affected, which prefixes are affected for those
services, what fraction of traffic or users are affected, and where the
prefixes may be routed instead."

Usage::

    python examples/outage_impact.py [seed]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_table
from repro.core.builder import MapBuilder
from repro.core.usecases import OutageImpactAnalyzer


def main(seed: int = 20211110) -> None:
    scenario = build_scenario(ScenarioConfig.small(seed=seed))
    itm = MapBuilder(scenario).build()
    analyzer = OutageImpactAnalyzer(itm, scenario.prefixes,
                                    scenario.graph)

    print("Ranking eyeball networks by outage impact "
          "(map-estimated activity):\n")
    eyeballs = [a.asn for a in scenario.registry.eyeballs()]
    ranked = analyzer.rank_by_impact(eyeballs, k=5)
    rows = []
    for asn, weight in ranked:
        asys = scenario.registry.get(asn)
        rows.append((f"AS{asn}", asys.name, asys.country_code,
                     f"{weight:.2%}"))
    print(render_table(["ASN", "ISP", "cc", "activity share"], rows))

    print("\nDetailed outage reports for the top three:\n")
    for asn, __ in ranked[:3]:
        report = analyzer.assess_as_outage(asn)
        print(report.headline())
        print(f"  off-net caches inside: "
              f"{', '.join(report.offnet_orgs_inside) or 'none'}")
        print(f"  alternate transit for customers: "
              f"{'yes' if report.alternate_transit else 'NO'}")
        sample = list(report.rerouted_service_asns.items())[:4]
        for service, fallback in sample:
            print(f"  {service}: users could be served from AS{fallback}")
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
