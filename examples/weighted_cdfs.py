#!/usr/bin/env python3
"""Banishing unweighted CDFs — the paper's §1 rallying cry, demonstrated.

"Let today be the first step towards banishing unweighted CDFs to the
dustbins of SIGCOMM history."

Plots (as ASCII) the CDF of AS-path length from client networks to a
hypergiant, first giving every AS equal weight (the traditional academic
view) and then weighting each AS by the traffic map's activity estimate.
The story changes completely: the unweighted view says the Internet is
several hops deep, the weighted view says most *activity* is one hop from
the content.

Usage::

    python examples/weighted_cdfs.py [seed]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.weighting import WeightedCDF, weighting_contrast


def ascii_cdf(cdf: WeightedCDF, label: str, max_len: int = 6,
              width: int = 44) -> str:
    lines = [label]
    for hops in range(max_len + 1):
        fraction = cdf.cdf(hops)
        bar = "#" * int(round(fraction * width))
        lines.append(f"  <= {hops} hops  {fraction:6.1%} {bar}")
    return "\n".join(lines)


def main(seed: int = 20211110) -> None:
    scenario = build_scenario(ScenarioConfig.small(seed=seed))
    itm = MapBuilder(scenario).build()

    hg_asn = scenario.hypergiant_asn("googol")
    lengths, weights = [], []
    for asn, weight in itm.users.activity_by_as.items():
        offnet = scenario.deployment.offnet_site_in_as(asn, "googol")
        if offnet is not None:
            lengths.append(0.0)
        else:
            route = scenario.bgp.route(asn, hg_asn)
            if route is None:
                continue
            lengths.append(float(route.as_path_length))
        weights.append(weight)

    contrast = weighting_contrast("AS-path length to Googol",
                                  lengths, weights,
                                  weight_name="map activity")

    print(ascii_cdf(contrast.unweighted,
                    "Unweighted (every AS counts once):"))
    print()
    print(ascii_cdf(contrast.weighted,
                    "Weighted by the traffic map's activity estimates:"))
    print()
    print(f"Mass within one hop: unweighted "
          f"{contrast.unweighted.cdf(1):.1%} vs weighted "
          f"{contrast.weighted.cdf(1):.1%} "
          f"(divergence {contrast.divergence_at(1):+.1%})")
    print("Same topology, same measurements — a different Internet.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
