#!/usr/bin/env python3
"""Hourly activity estimation — Table 1's desired temporal precision.

Table 1 lists *hourly* as the desired precision for relative-activity
estimation, while published techniques deliver yearly or daily numbers.
This example runs the time-sliced cache-probing campaign: one probe round
every two hours, around the clock. Because cache occupancy tracks the
instantaneous query rate, each country's hit-count profile traces its
local diurnal curve — recovering *when* a population is online from
nothing but public ECS probes.

Usage::

    python examples/hourly_activity.py [seed]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_table
from repro.core.activity import estimate_hourly_activity
from repro.errors import ValidationError
from repro.measure.cache_probing import TimedCacheProbing
from repro.rand import substream


def ascii_profile(profile, width: int = 30) -> str:
    peak = max(profile) or 1
    return "".join(" .:-=+*#%@"[min(9, int(v / peak * 9.99))]
                   for v in profile)


def main(seed: int = 20211110) -> None:
    scenario = build_scenario(ScenarioConfig.medium(seed=seed))
    services = scenario.catalog.top_by_popularity(10)
    hours = list(range(0, 24, 2))
    print(f"Probing {len(scenario.prefixes)} prefixes x "
          f"{len(services)} domains at {len(hours)} UTC hours...")
    campaign = TimedCacheProbing(
        scenario.temporal_oracle, scenario.gdns, services,
        scenario.routable_prefix_ids(), probe_hours_utc=hours,
        rounds_per_slot=6, rng=substream(seed, "hourly-example"))
    estimate = estimate_hourly_activity(
        campaign.run(), scenario.prefixes, scenario.registry)

    print("\nPer-country hit profiles over the UTC day "
          "(darker = more hits):\n")
    rows = []
    for country in scenario.atlas.countries:
        try:
            profile = estimate.normalised_profile(country.code)
            est_peak = estimate.peak_utc_hour(country.code)
        except (ValidationError, KeyError):
            continue
        true_peak = (scenario.diurnal.peak_hour()
                     - country.capital.utc_offset) % 24
        rows.append((country.code, ascii_profile(profile),
                     f"{est_peak:.0f}h", f"{true_peak:.1f}h"))
    print(render_table(
        ["cc", "hit profile 00..22 UTC", "est peak", "true peak"], rows))
    print("\nEach country's hits peak at its local evening — hourly "
          "activity recovered from public probes alone.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
