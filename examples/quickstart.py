#!/usr/bin/env python3
"""Quickstart: build a small simulated Internet, measure it, get a map.

Runs in a few seconds::

    python examples/quickstart.py [seed]

Walks the paper's pipeline end to end: scenario -> §3.1.2 measurement
campaigns -> fused Internet Traffic Map -> validation against the
simulated ground truth (the numbers the paper could only get from
Microsoft's CDN logs).
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_table
from repro.core.builder import MapBuilder
from repro.core.validation import validate_users_component
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


def main(seed: int = 20211110) -> None:
    print("Building a small simulated Internet...")
    scenario = build_scenario(ScenarioConfig.small(seed=seed))
    print(f"  {len(scenario.registry)} ASes, "
          f"{scenario.graph.edge_count()} links, "
          f"{len(scenario.prefixes)} /24 prefixes, "
          f"{scenario.population.total_users / 1e9:.2f}B users")

    print("\nRunning measurement campaigns and assembling the map...")
    builder = MapBuilder(scenario)
    itm = builder.build()
    print(itm.summary())

    print("\nTop ASes by estimated activity (the map's weights):")
    rows = []
    for asn, weight in itm.users.top_ases(8):
        asys = scenario.registry.get(asn)
        rows.append((f"AS{asn}", asys.name, asys.country_code,
                     f"{weight:.2%}"))
    print(render_table(["ASN", "name", "cc", "activity share"], rows))

    print("\nValidation against ground truth (the paper's §3.1.2 "
          "numbers):")
    val = validate_users_component(itm.users, scenario,
                                   GROUND_TRUTH_CDN_KEY)
    print(f"  prefixes detected cover "
          f"{val.prefix_traffic_coverage:.1%} of the "
          f"{GROUND_TRUTH_CDN_KEY} CDN's traffic (paper: 95%)")
    print(f"  false-positive prefixes: {val.false_positive_rate:.2%} "
          f"(paper: <1%)")
    print(f"  APNIC-user coverage: {val.apnic_user_coverage:.1%} "
          f"(paper: ~98%)")
    print(f"  activity estimate vs truth (Spearman): "
          f"{val.activity_spearman:.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
