#!/usr/bin/env python3
"""Serve the map and query it over HTTP — the §2 loop, end to end.

Builds the small world, snapshots the map into a read-optimized
:class:`~repro.core.mapstore.MapStore`, puts it behind the
`repro.serve` HTTP/JSON service on a free port, and asks the paper's
§2.1 questions with plain ``urllib`` — weighted CDFs toward the
biggest hypergiant, the blast radius of losing the largest eyeball,
and anycast placement for one client — then prints the answer-cache
counters a run manifest would carry. Endpoint reference:
``docs/serving.md``.

Usage::

    python examples/query_service.py [seed]
"""

import json
import sys
import threading
import urllib.request

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.mapstore import MapStore
from repro.serve import MapService, serve_http


def fetch(base: str, path: str) -> dict:
    """GET ``base+path`` and decode the JSON body."""
    with urllib.request.urlopen(base + path) as resp:
        return json.load(resp)


def main(seed: int = 20211110) -> None:
    scenario = build_scenario(ScenarioConfig.small(seed=seed))
    itm = MapBuilder(scenario).build()
    store = MapStore.from_map(itm, graph=scenario.graph)
    service = MapService(store)
    server = serve_http(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_port}"
    print(f"serving map {store.short_digest} on {base}\n")

    health = fetch(base, "/v1/health")
    print(f"health: {health['status']} "
          f"(format v{health['format_version']})")

    summary = fetch(base, "/v1/map")
    counts = summary["counts"]
    print(f"map: {counts['prefixes']} prefixes, {counts['ases']} ASes, "
          f"{counts['mapped_services']} mapped services, "
          f"{counts['route_pairs']} route pairs\n")

    # Weighted CDF of AS-path length toward the busiest route target.
    target = store.route_targets()[0]
    cdf = fetch(base, f"/v1/cdf?as={target}")["results"][0]
    print(f"paths to AS{target}: median {cdf['unweighted']['median']:g} "
          f"unweighted vs {cdf['weighted']['median']:g} weighted "
          f"over {cdf['samples']} client ASes "
          f"(median shift {cdf['median_shift']:+g})")

    # Outage blast radius of the most active eyeball AS.
    top_asn, __ = itm.users.top_ases(1)[0]
    outage = fetch(base, f"/v1/outage?asn={top_asn}")["report"]
    print(outage["headline"])

    # Anycast placement for one mapped client of the first service.
    service_key = store.service_keys[0]
    client = int(store.svc_clients[0][0])
    anycast = fetch(
        base, f"/v1/anycast?service={service_key}&prefix={client}&k=2")
    print(f"{service_key} serves prefix {client} from "
          f"AS{anycast['host_asn']} ({anycast['organization']}); "
          f"{len(anycast['candidates'])} nearby alternatives")

    stats = service.cache_stats()
    print(f"\nanswer cache: {stats.hits} hit(s), {stats.misses} "
          f"miss(es) — rerun any query above and hits grow")
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
