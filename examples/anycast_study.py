#!/usr/bin/env python3
"""Anycast catchments and CDN mapping optimality (§2.1 / §3.2.3).

Reproduces the two redirection findings the paper leans on:

* DNS-based CDN mapping: far more *users* than *routes* are served from
  their optimal site (paper, from [38]: 60% vs 31%) — mapping systems
  know their heavy clients best;
* anycast: BGP-selected sites are close to optimal for most clients
  (paper: 80% within 500 km of the closest site).

Usage::

    python examples/anycast_study.py [seed]
"""

import sys

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_table
from repro.core.usecases import mapping_optimality_study
from repro.services.hypergiants import RedirectionScheme


def main(seed: int = 20211110) -> None:
    scenario = build_scenario(ScenarioConfig.medium(seed=seed))
    users = scenario.population.users_per_prefix

    rows = []
    dns_study = mapping_optimality_study(
        scenario.mapping.assignment("amazonia", RedirectionScheme.DNS),
        users)
    rows.append(("Amazonia (DNS redirection)",
                 f"{dns_study.route_optimal_fraction:.1%}",
                 f"{dns_study.user_optimal_fraction:.1%}",
                 f"{dns_study.within_500km_fraction:.1%}"))

    for key in scenario.anycast_models:
        study = mapping_optimality_study(
            scenario.mapping.assignment(key, RedirectionScheme.ANYCAST),
            users)
        rows.append((f"{key} (anycast)",
                     f"{study.route_optimal_fraction:.1%}",
                     f"{study.user_optimal_fraction:.1%}",
                     f"{study.within_500km_fraction:.1%}"))

    custom = mapping_optimality_study(
        scenario.mapping.assignment("streamflix",
                                    RedirectionScheme.CUSTOM_URL),
        users)
    rows.append(("StreamFlix (custom URLs)",
                 f"{custom.route_optimal_fraction:.1%}",
                 f"{custom.user_optimal_fraction:.1%}",
                 f"{custom.within_500km_fraction:.1%}"))

    print("Client-to-site mapping optimality by redirection scheme:\n")
    print(render_table(
        ["deployment", "routes optimal", "users optimal",
         "within 500km extra"], rows))
    print("\nPaper reference points: 31% routes / 60% users optimal for a"
          " large CDN; ~80% of anycast clients within 500 km of their"
          " closest site; custom URLs effectively optimal (§3.2.3).")

    dns = dns_study
    print(f"\nDistance penalty distribution (Amazonia DNS): median "
          f"{dns.extra_distance_cdf.median:.0f} km, p90 "
          f"{dns.extra_distance_cdf.quantile(0.9):.0f} km")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20211110)
