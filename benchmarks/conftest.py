"""Benchmark fixtures: one paper-scale world shared across all benches.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper against the default scenario and prints them, timing the
regeneration step of each.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, build_scenario
from repro.analysis.claims import ClaimSuite
from repro.core.builder import BuilderOptions, MapBuilder
from repro.obs import Recorder


@pytest.fixture(scope="session")
def scenario():
    """The paper-scale simulated Internet (built once per session)."""
    return build_scenario(ScenarioConfig.default())


@pytest.fixture(scope="session")
def builder(scenario):
    # profile_memory is on so the bench manifest carries the per-stage
    # peak-memory gauges (and so the profiling overhead is part of what
    # test_bench_history locks against the plain build wall time).
    b = MapBuilder(scenario,
                   options=BuilderOptions(run_auxiliary_campaigns=True,
                                          profile_memory=True),
                   recorder=Recorder())
    b.build()
    return b


@pytest.fixture(scope="session")
def manifest(builder):
    """The instrumented build's provenance record."""
    return builder.manifest(command="benchmarks", scale="default")


@pytest.fixture(scope="session")
def itm(builder):
    return builder.itm


@pytest.fixture(scope="session")
def claims(scenario, builder, itm):
    return ClaimSuite(scenario, itm, builder.artifacts)
