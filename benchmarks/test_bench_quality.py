"""Experiments Q1-Q3 — map quality: validation, bias, uncertainty.

* Q1: APNIC-vs-map validation — "APNIC's methodology has not been
  validated" (§3.1.1): in the simulation it can be, and the map's
  measurement-driven weights order ASes at least as well.
* Q2: country-bias correction (§3.1.3) — a one-off partner snapshot
  corrects the GDNS-adoption skew across countries.
* Q3: bootstrap uncertainty — confidence intervals on the map's
  activity weights; big ASes are statistically distinguishable.
"""

import numpy as np

from repro.analysis.apnic_study import validate_apnic_against_truth
from repro.analysis.report import render_table
from repro.core.bias import (PartnerSnapshot, correct_country_bias,
                             estimate_country_shares)
from repro.core.uncertainty import bootstrap_activity
from repro.rand import substream


def test_bench_apnic_validation(benchmark, scenario, itm):
    """Q1: score both public estimators against ground truth."""
    study = benchmark.pedantic(
        validate_apnic_against_truth, args=(scenario, itm),
        rounds=3, iterations=1)
    print()
    print(render_table(
        ["estimator", "Spearman vs truth", "typical factor off",
         "ASes"],
        [(study.apnic.name, f"{study.apnic.spearman:.3f}",
          f"{study.apnic.typical_factor_off:.2f}x",
          study.apnic.covered_ases),
         (study.map_activity.name,
          f"{study.map_activity.spearman:.3f}",
          f"{study.map_activity.typical_factor_off:.2f}x",
          study.map_activity.covered_ases)]))
    assert study.apnic.spearman > 0.6
    assert study.map_activity.spearman > 0.6


def test_bench_bias_correction(benchmark, scenario, builder):
    """Q2: one-off partner aggregates fix cross-country skew."""
    # The partner's one-off, coarse snapshot (privileged, one-time).
    by_as = scenario.traffic.bytes_by_as()
    total = sum(by_as.values())
    truth_shares = {}
    for asn, volume in by_as.items():
        asys = scenario.registry.maybe(asn)
        if asys is not None:
            truth_shares[asys.country_code] = truth_shares.get(
                asys.country_code, 0.0) + volume / total
    snapshot = PartnerSnapshot(traffic_share_by_country=truth_shares)
    estimate = builder.artifacts.activity

    correction = benchmark.pedantic(
        correct_country_bias,
        args=(estimate, scenario.registry, snapshot),
        rounds=3, iterations=1)

    before = estimate_country_shares(estimate, scenario.registry)
    after = estimate_country_shares(correction.corrected,
                                    scenario.registry)

    def total_error(shares):
        return sum(abs(shares.get(c, 0.0) - t)
                   for c, t in truth_shares.items())

    err_before, err_after = total_error(before), total_error(after)
    print()
    print(render_table(
        ["estimate", "total country-share error (L1)"],
        [("raw map activity", f"{err_before:.3f}"),
         ("bias-corrected", f"{err_after:.3f}")]))
    sample = sorted(correction.factor_by_country.items(),
                    key=lambda kv: -abs(np.log(kv[1])))[:6]
    print(render_table(["country", "learned factor"],
                       [(c, f"{f:.2f}x") for c, f in sample]))
    assert err_after < err_before * 0.5


def test_bench_uncertainty(benchmark, scenario, builder, itm):
    """Q3: bootstrap confidence intervals on activity weights."""
    top = [asn for asn, __ in itm.users.top_ases(12)]

    report = benchmark.pedantic(
        lambda: bootstrap_activity(
            builder.artifacts.cache_result, scenario.prefixes,
            replicates=150, rng=substream(scenario.config.seed, "q3"),
            asns=top),
        rounds=1, iterations=1)

    print()
    rows = []
    for asn in top[:8]:
        interval = report.interval(asn)
        rows.append((f"AS{asn}", f"{interval.point:.3f}",
                     f"[{interval.low:.3f}, {interval.high:.3f}]"))
    print(render_table(
        ["AS", "activity share", f"{report.confidence:.0%} CI"], rows))

    assert report.distinguishable(top[0], top[-1])
    for interval in report.intervals.values():
        assert interval.low <= interval.point <= interval.high
