"""Experiments E1-E4 — the paper's §3 open-question techniques.

These go beyond the preliminary results: the paper *proposes* each of
these follow-ups, and here they run end to end.

* E1 (§3.1.3/Table 1 "Hourly desired"): time-sliced cache probing
  recovers per-country diurnal activity peaks.
* E2 (§3.1.3): page-embedded resolver-client association joins
  resolver-based root logs with client-based measurements, lifting
  root-log coverage dramatically.
* E3 (§3.2.3, [21]): Verfploeter-style probing maps anycast catchments.
* E4 (§3.2.3): community cache study — edge caches get more effective
  under flash events, supporting the custom-URL optimality intuition.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.activity import estimate_hourly_activity
from repro.errors import ValidationError
from repro.measure.cache_efficacy import run_cache_efficacy_study
from repro.measure.cache_probing import TimedCacheProbing
from repro.measure.catchment_probe import VerfploeterCampaign
from repro.measure.resolver_assoc import (PageMeasurementCampaign,
                                          attribute_rootlog_volume)
from repro.measure.rootlogs import RootLogCrawler
from repro.rand import substream
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


def test_bench_hourly_activity(benchmark, scenario):
    """E1: hourly probing recovers local peak hours."""
    services = scenario.catalog.top_by_popularity(10)

    def run():
        campaign = TimedCacheProbing(
            scenario.temporal_oracle, scenario.gdns, services,
            scenario.routable_prefix_ids(),
            probe_hours_utc=list(range(0, 24, 2)), rounds_per_slot=4,
            rng=substream(scenario.config.seed, "bench-timed"))
        return campaign.run()

    timed = benchmark.pedantic(run, rounds=1, iterations=1)
    estimate = estimate_hourly_activity(timed, scenario.prefixes,
                                        scenario.registry)
    rows = []
    good = 0
    scored = 0
    for country in scenario.atlas.countries:
        try:
            est = estimate.peak_utc_hour(country.code)
        except ValidationError:
            continue
        true_peak = (scenario.diurnal.peak_hour()
                     - country.capital.utc_offset) % 24
        error = min(abs(est - true_peak), 24 - abs(est - true_peak))
        scored += 1
        good += error <= 3.0
        rows.append((country.code, f"{est:.0f}h", f"{true_peak:.1f}h",
                     f"{error:.1f}h"))
    print()
    print(render_table(["cc", "estimated peak (UTC)", "true peak",
                        "error"], rows[:12]))
    print(f"peaks within 3h: {good}/{scored}")
    assert scored >= 10
    assert good / scored > 0.75


def test_bench_resolver_association(benchmark, scenario):
    """E2: association-enhanced root-log coverage."""
    weights = scenario.traffic.queries_per_day.sum(axis=0)

    def run():
        campaign = PageMeasurementCampaign(
            scenario.prefixes, scenario.gdns, weights,
            substream(scenario.config.seed, "bench-assoc"))
        return campaign.run(80_000)

    association = benchmark.pedantic(run, rounds=1, iterations=1)
    crawl = RootLogCrawler(scenario.root_archive).run()
    plain = scenario.traffic.coverage_of_as_set(
        crawl.detected_asns(), GROUND_TRUTH_CDN_KEY)
    attributed = attribute_rootlog_volume(crawl, association)
    joined = scenario.traffic.coverage_of_as_set(
        set(attributed), GROUND_TRUTH_CDN_KEY)
    print()
    print(render_table(
        ["root-log variant", "CDN traffic coverage"],
        [("same-AS assumption (paper's ~60%)", f"{plain:.3f}"),
         ("with resolver-client association", f"{joined:.3f}")]))
    assert joined > plain + 0.15
    assert joined > 0.85


def test_bench_verfploeter(benchmark, scenario):
    """E3: anycast catchment mapping from the operator's edge."""
    key = next(iter(scenario.anycast_models))
    model = scenario.anycast_models[key]

    def run():
        campaign = VerfploeterCampaign(
            model, scenario.prefixes,
            substream(scenario.config.seed, "bench-verf"))
        return campaign.run(scenario.user_prefix_ids())

    measurement = benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = measurement.catchment_sizes()
    print()
    ranked = sorted(sizes.items(), key=lambda kv: -kv[1])[:10]
    print(render_table(
        ["site", "responsive prefixes in catchment"],
        [(model.sites[s].city.name, n) for s, n in ranked]))
    print(f"responsive: {measurement.responsive_fraction():.0%}, "
          f"sites seen: {len(sizes)}/{measurement.site_count}")
    assert 0.5 < measurement.responsive_fraction() < 0.75
    assert len(sizes) >= measurement.site_count * 0.5


def test_bench_cache_efficacy(benchmark, scenario):
    """E4: edge-cache hit rates, normal vs flash event."""
    study = benchmark.pedantic(
        lambda: run_cache_efficacy_study(
            substream(scenario.config.seed, "bench-cache")),
        rounds=1, iterations=1)
    print()
    print(render_table(
        ["regime", "hit rate"],
        [("normal operation", f"{study.normal_hit_rate:.3f}"),
         ("flash event", f"{study.flash_hit_rate:.3f}")]))
    assert study.flash_improves_hit_rate
    assert study.flash_hit_rate > study.normal_hit_rate + 0.1
