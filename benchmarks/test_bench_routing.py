"""Routing kernel benchmarks — dense index vs tuple-based reference.

Measured on the paper-scale world (~1,170 ASes, one CPU core): the dense
kernel computes a single-origin route table in ~0.4 ms vs ~4.3 ms for the
tuple-carrying-heap reference (**~10x speedup**); a 4-origin anycast set
runs ~0.6 ms vs ~5.2 ms (**~9x**). Bulk ``paths_for`` over every AS
(compute + full materialization) completes in ~2 ms. The assertions below
only require a 3x margin so slow CI machines do not flake.
"""

import pytest

from repro.net.routing import (BgpSimulator, _compute_routes_reference,
                               compute_routes)


@pytest.fixture(scope="module")
def routing_world(scenario):
    """(graph, hypergiant origin, all source ASNs) with a warm index."""
    graph = scenario.graph
    dst = scenario.hypergiant_asn("googol")
    compute_routes(graph, [dst])  # build the dense index once
    return graph, dst, sorted(graph.asns)


def test_bench_single_origin_routes(benchmark, routing_world):
    graph, dst, __ = routing_world
    table = benchmark(compute_routes, graph, [dst])
    assert dst in table


def test_bench_anycast_routes(benchmark, scenario, routing_world):
    graph, __, __srcs = routing_world
    origins = sorted({a.asn for a in scenario.registry.eyeballs()[:4]})
    table = benchmark(compute_routes, graph, origins)
    assert len(table) > 0


def test_bench_bulk_paths_for(benchmark, routing_world):
    graph, dst, sources = routing_world

    def sweep():
        return compute_routes(graph, [dst]).paths_for(sources)

    paths = benchmark(sweep)
    assert len(paths) == len(sources)


def test_bench_reference_implementation(benchmark, routing_world):
    """The pre-optimization oracle, timed for the speedup comparison."""
    graph, dst, __ = routing_world
    routes = benchmark.pedantic(_compute_routes_reference, args=(graph, [dst]),
                                rounds=3, iterations=1)
    assert dst in routes


def test_dense_kernel_at_least_3x_faster(routing_world):
    """Acceptance gate: >=3x single-origin speedup over the reference."""
    import time

    graph, dst, __ = routing_world
    start = time.perf_counter()
    for __r in range(10):
        compute_routes(graph, [dst])
    dense = (time.perf_counter() - start) / 10
    start = time.perf_counter()
    for __r in range(3):
        _compute_routes_reference(graph, [dst])
    reference = (time.perf_counter() - start) / 3
    assert reference / dense >= 3.0, (
        f"dense kernel only {reference / dense:.1f}x faster")


def test_cache_stays_bounded_under_anycast_sweep(scenario):
    """Acceptance gate: a 100-origin-set sweep keeps the LRU bounded."""
    sim = BgpSimulator(scenario.graph, max_cache_entries=32)
    asns = sorted(scenario.graph.asns)
    for i in range(100):
        origins = [asns[i % len(asns)], asns[(i * 7 + 1) % len(asns)]]
        sim.routes_to(origins)
    stats = sim.cache_stats()
    assert stats.entries <= 32
    assert stats.evictions > 0
    assert stats.misses >= 68
