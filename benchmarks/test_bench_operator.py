"""Experiments O1/O2 — the operator-facing use cases of §2.1.

* O1: anomaly detection — diff two probing campaigns; a surged and a
  blacked-out network must be flagged with the right direction, with a
  controlled false-positive rate.
* O2: commonly-used routes — the §3.3 framing: most user->hypergiant
  routes are stable under light churn, and the map can attach confidence
  to each route it publishes.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.change_detection import detect_activity_changes
from repro.core.routes_common import CommonRouteEstimator
from repro.measure.cache_probing import CacheProbingCampaign
from repro.rand import substream
from repro.services.dnsinfra import CacheOracle


def _campaign(scenario, oracle, label):
    return CacheProbingCampaign(
        oracle=oracle, gdns=scenario.gdns,
        services=scenario.catalog.top_by_popularity(10),
        prefix_ids=scenario.routable_prefix_ids(), rounds_per_day=12,
        rng=substream(scenario.config.seed, "bench-op", label)).run()


def test_bench_anomaly_detection(benchmark, scenario, itm):
    """O1: detect a surge and a blackout from probing deltas."""
    top = itm.users.top_ases(5)
    surge_asn = top[1][0]
    drop_asn = top[3][0]
    base_oracle = scenario.cache_oracle
    rates = base_oracle._rate.copy()
    asns = scenario.prefixes.asn_array
    rates[:, asns == surge_asn] *= 3.0
    rates[:, asns == drop_asn] *= 0.05
    event_oracle = CacheOracle(rates, list(base_oracle._ttls),
                               base_oracle.observability_scale)

    baseline = _campaign(scenario, base_oracle, "baseline")
    current = _campaign(scenario, event_oracle, "event")

    report = benchmark.pedantic(
        detect_activity_changes,
        args=(baseline, current, scenario.prefixes),
        rounds=1, iterations=1)

    print()
    rows = [(f"AS{c.asn}", c.direction, f"{c.baseline_hits:.0f}",
             f"{c.current_hits:.0f}", f"{c.z_score:+.1f}")
            for c in report.changes[:8]]
    print(render_table(
        ["AS", "direction", "baseline hits", "current hits", "z"], rows))
    print(f"{len(report.changes)} flagged of "
          f"{report.ases_compared} compared")

    flagged = report.flagged_asns()
    assert surge_asn in flagged
    assert drop_asn in flagged
    directions = {c.asn: c.direction for c in report.changes}
    assert directions[surge_asn] == "surge"
    assert directions[drop_asn] == "drop"
    # False positives stay rare.
    assert len(report.changes) <= max(4, report.ases_compared * 0.05)


def test_bench_common_routes(benchmark, scenario, itm):
    """O2: route stability under churn, with confidence."""
    top_ases = [asn for asn, __ in itm.users.top_ases(40)]
    dst = scenario.hypergiant_asn("googol")
    pairs = [(src, dst) for src in top_ases if src != dst]
    estimator = CommonRouteEstimator(
        scenario.graph,
        substream(scenario.config.seed, "bench-common"), samples=8)

    routes = benchmark.pedantic(estimator.estimate, args=(pairs,),
                                rounds=1, iterations=1)

    stable = [r for r in routes.values() if r.is_stable]
    confidences = [r.confidence for r in routes.values()]
    print()
    print(render_table(
        ["metric", "value"],
        [("pairs", len(routes)),
         ("stable (confidence > 2/3)",
          f"{len(stable) / len(routes):.0%}"),
         ("median confidence", f"{float(np.median(confidences)):.2f}"),
         ("median path diversity", f"{float(np.median([r.distinct_paths for r in routes.values()])):.1f}")]))

    # The §3.3 premise: user->hypergiant routes are overwhelmingly
    # stable, so publishing "commonly used routes" is meaningful.
    assert len(stable) / len(routes) > 0.7
