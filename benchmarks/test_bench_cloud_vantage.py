"""Experiment E7 — measuring out from cloud VMs (§3.3.2, [7]).

"Measuring out from cloud VMs uncovers most peering links between the
cloud and users" — and its flip side, the §3.3.3 motivation: VM-less CDNs
gain nothing, so the recommender is still needed.
"""

from repro.analysis.report import render_table
from repro.measure.cloud_vantage import (CloudVantageCampaign,
                                         augment_public_view)
from repro.net.relationships import Relationship


def test_bench_cloud_vantage(benchmark, scenario):
    cloud = scenario.hypergiant_asn("amazonia")
    vmless = scenario.hypergiant_asn("streamflix")
    targets = [a.asn for a in scenario.registry.eyeballs()]

    campaign = CloudVantageCampaign(scenario.bgp, cloud)
    result = benchmark.pedantic(campaign.run, args=(targets,),
                                rounds=1, iterations=1)

    graph = scenario.graph

    def peering_links(asn):
        return [(a, b) for a, b, rel in graph.edges()
                if rel is Relationship.P2P and asn in (a, b)]

    augmented = augment_public_view(scenario.public_view, result,
                                    scenario.graph)
    rows = []
    for label, asn in (("Amazonia (hosts our VMs)", cloud),
                       ("StreamFlix (no VMs)", vmless)):
        links = peering_links(asn)
        before = scenario.public_view.visibility_of_links(links)
        after = augmented.visibility_of_links(links)
        rows.append((label, len(links), f"{before:.1%}", f"{after:.1%}"))
    print()
    print(render_table(
        ["hypergiant", "peering links", "visible before",
         "visible after VM campaign"], rows))
    print(f"links discovered: {len(result.discovered_links)}, "
          f"targets reached: {result.reach_fraction:.0%}")

    cloud_links = peering_links(cloud)
    vmless_links = peering_links(vmless)
    assert augmented.visibility_of_links(cloud_links) > 0.8
    assert augmented.visibility_of_links(vmless_links) < 0.3
