"""Serving-layer load test: seeded query replay with committed gates.

The query service's promise is that it is cheap enough to sit next to
the measurement loop. This bench replays a seeded 2000-query stream
(the same mix :mod:`repro.serve.loadgen` gives the CI smoke job)
against an in-process :class:`~repro.serve.service.MapService` over the
small map and gates three things:

* **correctness under load** — zero query errors, and the answer
  cache's hit/miss counters land exactly where the stream's key
  arithmetic says they must (every miss is a unique
  ``(digest, endpoint, params)`` key, every repeat is a hit — the
  committed baseline locks the exact numbers, so a cache-keying or
  stream-generation change cannot slip through as "roughly the same
  hit rate");
* **latency** — p99 at or under a committed ceiling;
* **throughput** — queries/sec at or above a committed floor.

The latency/throughput gates are deliberately loose (shared CI boxes),
the counter gates exact (deterministic by construction). The manifest
check closes the acceptance loop: the ``serve.cache.*`` counters and a
``serve.loadgen.*`` gauge set must be visible in the instrumented
build's run manifest.

Set ``REPRO_SERVE_SUMMARY=PATH`` to also write the replay summary JSON
(the CI smoke job uploads it as an artifact). Regenerate the baseline
after an intentional change with::

    REPRO_UPDATE_BASELINES=1 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_serve.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Tuple

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.mapstore import MapStore
from repro.obs import Recorder
from repro.serve import MapService, Query, replay, seeded_queries

BASELINE = Path(__file__).parent / "baselines" / "serve-loadgen.json"

SEED = 20211110
N_QUERIES = 2000
QPS_FLOOR = 500.0
P99_CEILING_MS = 50.0


def expected_cache_traffic(queries: List[Query]) -> Tuple[int, int]:
    """(lookups, unique keys) the stream must produce on the answer
    cache — the arithmetic the counters are gated against.

    ``health`` never touches the cache; a batched CDF query does one
    lookup per target AS; everything else is one lookup under its
    parameter tuple.
    """
    lookups = 0
    seen = set()
    for query in queries:
        params = dict(query.params)
        if query.endpoint == "health":
            continue
        if query.endpoint == "cdf":
            for asn in params["as"].split(","):
                lookups += 1
                seen.add(("cdf", int(asn)))
            continue
        lookups += 1
        if query.endpoint == "map":
            seen.add(("map",))
        elif query.endpoint == "outage":
            seen.add(("outage", params.get("asn"),
                      params.get("hypergiant")))
        else:
            seen.add(("anycast", params["service"], params["prefix"],
                      params["k"]))
    return lookups, len(seen)


def test_serve_loadgen_gates():
    scenario = build_scenario(ScenarioConfig.small(seed=SEED))
    recorder = Recorder()
    builder = MapBuilder(scenario, recorder=recorder)
    itm = builder.build()
    store = MapStore.from_map(itm, graph=scenario.graph)
    service = MapService(store, recorder=recorder, cache_entries=4096)

    queries = seeded_queries(store, N_QUERIES, seed=SEED)
    summary = replay(service, queries)

    # -- correctness under load (exact, deterministic) -------------------
    assert summary["http_errors"] == 0, summary
    assert summary["shed"] == 0, summary
    lookups, unique = expected_cache_traffic(queries)
    cache = summary["cache"]
    assert cache["evictions"] == 0, \
        "cache too small for the stream: hit counters not comparable"
    assert (cache["misses"], cache["hits"]) == \
        (unique, lookups - unique), (
        f"cache counters off: expected {unique} misses / "
        f"{lookups - unique} hits, got {cache['misses']} / "
        f"{cache['hits']}")

    # -- latency / throughput gates --------------------------------------
    p99 = summary["latency_ms"]["p99"]
    assert p99 <= P99_CEILING_MS, (
        f"p99 latency {p99:.2f} ms over the {P99_CEILING_MS} ms ceiling")
    assert summary["qps"] >= QPS_FLOOR, (
        f"{summary['qps']:.0f} qps under the {QPS_FLOOR:.0f} qps floor")

    # -- counters visible in the run manifest ----------------------------
    recorder.gauge("serve.loadgen.queries", summary["queries"])
    recorder.gauge("serve.loadgen.qps", summary["qps"])
    recorder.gauge("serve.loadgen.p99_ms", p99)
    manifest = builder.manifest(command="bench-serve",
                                scale="small").to_dict()
    counters: Dict[str, float] = manifest["counters"]
    assert counters["serve.cache.hits"] == cache["hits"]
    assert counters["serve.cache.misses"] == cache["misses"]
    hit_rate = cache["hits"] / (cache["hits"] + cache["misses"])
    assert abs(cache["hit_rate"] - hit_rate) < 1e-12
    for endpoint in ("cdf", "outage", "anycast", "map", "health"):
        assert f"serve.requests.{endpoint}" in counters
    assert manifest["gauges"]["serve.loadgen.qps"] == summary["qps"]

    print(f"\nserve loadgen: {summary['queries']} queries, "
          f"{summary['qps']:.0f} qps, p50 "
          f"{summary['latency_ms']['p50']:.3f} ms, p99 {p99:.3f} ms, "
          f"cache {cache['hits']}/{lookups} hits "
          f"({cache['hit_rate']:.0%})")

    summary_path = os.environ.get("REPRO_SERVE_SUMMARY")
    if summary_path:
        with open(summary_path, "w") as handle:
            json.dump({"digest": store.digest, "seed": SEED,
                       "stream": {"queries": N_QUERIES,
                                  "lookups": lookups,
                                  "unique_keys": unique},
                       "summary": summary}, handle, indent=2)
            handle.write("\n")
        print(f"wrote loadgen summary to {summary_path}")

    deterministic = {
        "scale": "small",
        "seed": SEED,
        "queries": N_QUERIES,
        "cache_lookups": lookups,
        "unique_keys": unique,
        "http_errors": 0,
        "shed": 0,
        "qps_floor": QPS_FLOOR,
        "p99_ms_ceiling": P99_CEILING_MS,
    }
    if os.environ.get("REPRO_UPDATE_BASELINES"):
        BASELINE.write_text(json.dumps(deterministic, indent=2) + "\n")
        print(f"baseline rewritten: {BASELINE}")
        return
    baseline = json.loads(BASELINE.read_text())
    assert baseline == deterministic, (
        "serve loadgen drifted from the committed baseline "
        f"({BASELINE}): expected {baseline}, got {deterministic}; "
        "regenerate with REPRO_UPDATE_BASELINES=1 if intentional")
