"""Manifest assertions over the paper-scale instrumented build.

The session ``builder`` fixture runs with a live recorder and the
auxiliary campaigns enabled, so the manifest here is the same artefact
``python -m repro --metrics out.json`` writes — these checks pin the
stage coverage and counter invariants at paper scale, where the small
unit-test worlds might mask a missing span.
"""

from __future__ import annotations

from repro.obs import KNOWN_CAMPAIGNS, validate_manifest


def test_manifest_validates_at_scale(manifest):
    validate_manifest(manifest.to_dict())


def test_manifest_covers_every_campaign(manifest):
    missing = [name for name in KNOWN_CAMPAIGNS
               if manifest.stage(f"measure.{name}") is None]
    assert not missing, f"campaigns without a span: {missing}"
    assert set(manifest.campaigns_ran()) >= set(KNOWN_CAMPAIGNS)


def test_manifest_has_build_stage_tree(manifest):
    build = manifest.stage("build")
    assert build is not None and build.wall_s > 0
    for stage in ("users", "services", "routes", "aux", "assemble",
                  "fusion"):
        timing = manifest.stage(stage)
        assert timing is not None, f"missing stage {stage!r}"
        assert timing.wall_s <= build.wall_s


def test_route_cache_counters_consistent(manifest):
    cache = manifest.route_cache
    assert cache is not None
    assert cache["entries"] <= cache["max_entries"]
    assert cache["hits"] + cache["misses"] > 0
