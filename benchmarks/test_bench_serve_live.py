"""Live-telemetry bench: scrape/manifest equality and observe overhead.

Two gates close the acceptance loop of the telemetry layer:

* **scrape equals manifest** — after a seeded in-process replay, a
  ``/v1/metricsz`` scrape (both exposition formats) must report exactly
  the counters and latency histograms the flushed run manifest records.
  The scrape itself is exempt from observation, so the equality is
  exact, not approximate — any double-count or missed request breaks
  it.
* **overhead** — recording one observation must cost well under 5 % of
  the mean in-process query latency measured by the loadgen bench's
  stream, so enabling telemetry cannot move the committed serving
  gates.

The overhead gate is timed on a shared CI box, so it gates a generous
multiple of the budget's intent; the equality gates are deterministic.
"""

from __future__ import annotations

import json
import re
import time
import urllib.request

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.mapstore import MapStore
from repro.obs import LiveTelemetry, Recorder, validate_manifest
from repro.serve import (MapService, replay, seeded_queries, serve_http,
                         serve_manifest_section)

SEED = 20211110
N_QUERIES = 1000

#: Telemetry budget: one observe() against the 5% of mean query latency
#: the issue allows. The replay mean on any box is > 20 us, so a 1 us
#: per-observation ceiling keeps the histogram path honest while
#: staying timer-noise-proof on shared runners.
OBSERVE_CEILING_US = 1.0
N_OBSERVATIONS = 50_000


def test_scrape_equals_flushed_manifest():
    scenario = build_scenario(ScenarioConfig.small(seed=SEED))
    recorder = Recorder()
    builder = MapBuilder(scenario, recorder=recorder)
    itm = builder.build()
    store = MapStore.from_map(itm, graph=scenario.graph)
    service = MapService(store, recorder=recorder)

    queries = seeded_queries(store, N_QUERIES, seed=SEED)
    summary = replay(service, queries)
    assert summary["http_errors"] == 0

    # Scrape over a real socket, twice, to prove scrapes are free.
    httpd = serve_http(service, port=0)
    import threading
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_port}"
    try:
        text = urllib.request.urlopen(
            base + "/v1/metricsz", timeout=30).read().decode()
        snap = json.loads(urllib.request.urlopen(
            base + "/v1/metricsz?format=json", timeout=30).read())
    finally:
        httpd.shutdown()
        httpd.server_close()

    section = serve_manifest_section(recorder,
                                     telemetry=service.telemetry)
    manifest = builder.manifest(command="bench-serve-live",
                                scale="small", serve=section).to_dict()
    validate_manifest(manifest)
    assert manifest["format_version"] == 5

    # Counter-for-counter equality between the scrape and the manifest.
    assert snap["counters"] == manifest["counters"]
    assert snap["latency"] == manifest["serve"]["latency"]["endpoints"]
    total = manifest["serve"]["latency"]["total"]
    assert total["count"] == summary["queries"]

    # The text exposition carries the same totals: the +Inf bucket of
    # every series sums to the manifest's total count.
    inf_total = sum(
        int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
        if line.startswith("repro_serve_latency_seconds_bucket")
        and 'le="+Inf"' in line)
    assert inf_total == total["count"]
    for name, value in manifest["counters"].items():
        metric = ("repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)
                  + "_total")
        assert f"{metric} {value:g}" in text \
            or f"{metric} {value}" in text, metric

    print(f"\nserve live: {total['count']} observations, scrape == "
          f"manifest across {len(manifest['counters'])} counters")


def test_observe_overhead_under_budget():
    telemetry = LiveTelemetry()
    # Warm the (endpoint, outcome) histogram allocations out of the
    # timed region.
    telemetry.observe("map", "ok", 0.001)
    start = time.perf_counter()
    for i in range(N_OBSERVATIONS):
        telemetry.observe("map", "ok", 0.0001 * (i % 50))
    elapsed = time.perf_counter() - start
    per_call_us = elapsed / N_OBSERVATIONS * 1e6
    assert per_call_us <= OBSERVE_CEILING_US * 20, (
        f"observe() costs {per_call_us:.2f} us/call — over even the "
        "20x slack ceiling; the histogram hot path regressed")
    print(f"\nobserve overhead: {per_call_us:.3f} us/call "
          f"({N_OBSERVATIONS} observations in {elapsed * 1e3:.1f} ms)")
    section = telemetry.manifest_section()
    assert section["total"]["count"] == N_OBSERVATIONS + 1
