"""Experiments W1/W2 — the §1 weighting fallacies, quantified.

* W1: "each congested interconnect impacts the same amount of traffic" —
  false: a small set of interconnects carries most bytes.
* W2: the [40]/[25] consolidation view — a handful of providers serve
  ~90% of traffic; Lorenz/Gini over provider byte shares.
"""

from repro.analysis.concentration import (provider_concentration,
                                          summarize_concentration)
from repro.analysis.report import render_table
from repro.core.usecases import link_importance_study


def test_bench_link_importance(benchmark, scenario):
    """W1: interconnect volume concentration."""
    study = benchmark.pedantic(
        lambda: link_importance_study(scenario.flows.volume_by_link,
                                      top_ks=(10, 50, 100)),
        rounds=3, iterations=1)

    print()
    rows = []
    for k in (10, 50, 100):
        uniform = k / study.total_links
        rows.append((f"top-{k} links",
                     f"{study.top_share(k):.1%}",
                     f"{uniform:.1%}"))
    print(render_table(
        ["link set", "volume carried", "uniform-assumption share"],
        rows))
    print(f"link-volume Gini: {study.volume_gini:.3f} over "
          f"{study.total_links} links")

    assert study.top_share(100) > 0.4
    assert study.top_share(10) > 10 / study.total_links * 5
    assert study.volume_gini > 0.5


def test_bench_provider_concentration(benchmark, scenario):
    """W2: consolidation across serving providers."""
    def build_shares():
        shares = {key: scenario.catalog.hypergiant_bytes_share(key)
                  for key in scenario.catalog.hypergiants}
        shares["(stub hosting)"] = 1.0 - sum(shares.values())
        return provider_concentration(shares)

    summary = benchmark.pedantic(build_shares, rounds=3, iterations=1)
    print()
    rows = [(f"top-{k}", f"{share:.1%}")
            for k, share in sorted(summary.top_shares.items())]
    print(render_table(["providers", "share of all bytes"], rows))
    print(f"provider Gini: {summary.gini:.3f}")

    # "Most user-facing traffic flows from a handful of large providers."
    assert summary.share_of_top(5) > 0.55
    assert summary.share_of_top(10) > 0.8


def test_bench_activity_concentration(benchmark, scenario, itm):
    """Concentration of the map's own activity weights across ASes —
    the weighting an unweighted CDF ignores."""
    weights = list(itm.users.activity_by_as.values())
    summary = benchmark.pedantic(
        lambda: summarize_concentration(weights, top_ks=(1, 10, 50)),
        rounds=3, iterations=1)
    print()
    print(render_table(
        ["AS set", "activity share"],
        [(f"top-{k}", f"{share:.1%}")
         for k, share in sorted(summary.top_shares.items())]))
    print(f"activity Gini across {summary.entities} detected ASes: "
          f"{summary.gini:.3f}")
    assert summary.share_of_top(50) > 0.5
    assert summary.gini > 0.5
