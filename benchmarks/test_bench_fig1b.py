"""Experiment F1b — Figure 1b: country-level user coverage (shading) and
the MetaBook server map (dots).

Paper: cache probing accounts for ~98% of Internet users by APNIC's
estimates, and TLS scans locate the Facebook-like hypergiant's servers —
including its off-nets — worldwide.
"""

from repro.analysis.figures import fig1b_coverage_and_servers
from repro.analysis.report import render_fig1b


def test_bench_fig1b(benchmark, scenario, builder):
    cache_result = builder.artifacts.cache_result
    tls_result = builder.artifacts.tls_result

    data = benchmark.pedantic(
        fig1b_coverage_and_servers,
        args=(scenario, cache_result, tls_result),
        rounds=3, iterations=1)

    print()
    print(render_fig1b(data))

    # Paper: ~98% of APNIC-estimated users covered.
    assert data.global_user_coverage > 0.95
    # Most countries shade dark (>=80% covered).
    dark = [r for r in data.shading if r.apnic_users > 0
            and r.covered_percent >= 80.0]
    with_data = [r for r in data.shading if r.apnic_users > 0]
    assert len(dark) / len(with_data) > 0.8
    # Server dots span many countries and include off-net caches.
    assert len({d.country_code for d in data.server_dots}) >= 10
    assert any(d.is_offnet for d in data.server_dots)
