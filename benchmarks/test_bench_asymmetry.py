"""Experiment E8 — path asymmetry and reverse traceroute (§3.3.2, [36]).

Quantifies why the routes component cannot be built from forward probes
alone: a sizeable share of forward/reverse pairs diverge, which is the
measurement gap Reverse Traceroute closes.
"""

from repro.analysis.report import render_table
from repro.measure.atlas import AtlasPlatform
from repro.measure.reverse_traceroute import (ReverseTraceroute,
                                              asymmetry_study)
from repro.rand import substream


def test_bench_path_asymmetry(benchmark, scenario):
    platform = AtlasPlatform(
        scenario.registry, scenario.bgp, scenario.prefixes,
        substream(scenario.config.seed, "bench-revtr"), vp_count=10)
    tracer = ReverseTraceroute(scenario.bgp)
    remotes = [a.asn for a in scenario.registry.eyeballs()]

    def measure_all():
        pairs = []
        for vp in platform.vantage_points[:5]:
            pairs.extend(tracer.measure_many(vp, remotes))
        return pairs

    pairs = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    study = asymmetry_study(pairs)

    print()
    print(render_table(
        ["metric", "value"],
        [("pairs measured", study.pairs_measured),
         ("symmetric", f"{study.symmetric_fraction:.1%}"),
         ("asymmetric", f"{study.asymmetric_fraction:.1%}"),
         ("mean |len(fwd)-len(rev)|",
          f"{study.mean_length_difference:.2f} hops")]))

    # Forward probing alone misses a real share of reverse paths.
    assert study.asymmetric_fraction > 0.05
    # But routing is not chaos either: most paths are symmetric.
    assert study.symmetric_fraction > 0.5
