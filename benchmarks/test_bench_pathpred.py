"""Experiment C6 — §3.3.1 path-prediction blind spots.

Paper: "When we tried to predict paths from RIPE Atlas probes to root DNS
servers, more than half could not be predicted due to missing links", and
(from [4]) more than 90% of peering links are invisible in public
topologies.
"""

from repro.analysis.report import render_claims


def test_bench_path_prediction(benchmark, claims):
    results = benchmark.pedantic(claims.c6_path_prediction, rounds=1,
                                 iterations=1)
    print()
    print(render_claims(results))
    for claim in results:
        assert claim.passed, claim.render()
