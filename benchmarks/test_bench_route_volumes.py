"""Experiment M1 — the map itself: relative route volumes.

"No work we are aware of can answer how much traffic routes carry
relative to each other without using proprietary data" (§1). The
assembled map can: a gravity model over its own users and services
components estimates relative (client AS, provider) route volumes, scored
here against the ground-truth flow assignment.
"""

from repro.analysis.report import render_table
from repro.core.route_volumes import (estimate_route_volumes,
                                      score_route_volume_estimate)


def test_bench_route_volumes(benchmark, scenario, itm):
    estimate = benchmark.pedantic(estimate_route_volumes, args=(itm,),
                                  rounds=3, iterations=1)

    org_of_asn = {scenario.hypergiant_asn(key): spec.cert_org
                  for key, spec in scenario.catalog.hypergiants.items()}
    rho = score_route_volume_estimate(
        estimate, scenario.flows.volume_by_pair, org_of_asn,
        scenario.flows.intra_as_volume)

    print()
    rows = []
    for (asn, org), volume in estimate.top_routes(8):
        name = scenario.registry.get(asn).name
        rows.append((f"AS{asn}", name, org, f"{volume:.3%}"))
    print(render_table(
        ["client AS", "name", "provider", "est. route volume"], rows))
    print(f"Spearman vs ground-truth flows: {rho:.3f}; "
          f"estimated local (off-net) share: "
          f"{estimate.local_share:.1%}")

    # The map's estimates rank routes like the truth does.
    assert rho > 0.6
    # Off-net locality is visible.
    assert estimate.local_share > 0.05
