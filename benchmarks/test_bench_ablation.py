"""Experiments A1/A2 — ablations of the design choices DESIGN.md calls out.

* A1: cache-probing coverage as a function of probe budget (rounds/day).
  More rounds monotonically improve traffic coverage with diminishing
  returns — the knob a real campaign must size.
* A2: the value of fusing the two §3.1.2 techniques: the fused users
  component covers at least as much as either technique alone, and
  strictly more ASes than root logs alone.
"""

import numpy as np

from repro.analysis.report import render_table
from repro.core.builder import BuilderOptions, MapBuilder
from repro.measure.cache_probing import CacheProbingCampaign
from repro.rand import substream
from repro.services.hypergiants import GROUND_TRUTH_CDN_KEY


def test_bench_probe_budget_sweep(benchmark, scenario):
    """A1: coverage vs probing budget."""
    services = scenario.catalog.top_by_popularity(
        scenario.config.measurement.probe_top_k_domains)
    pids = scenario.routable_prefix_ids()

    def coverage_at(rounds: int) -> float:
        campaign = CacheProbingCampaign(
            oracle=scenario.cache_oracle, gdns=scenario.gdns,
            services=services, prefix_ids=pids, rounds_per_day=rounds,
            rng=substream(scenario.config.seed, "ablation-probe",
                          str(rounds)))
        result = campaign.run()
        return scenario.traffic.coverage_of_prefix_set(
            result.detected_prefixes(), GROUND_TRUTH_CDN_KEY)

    budgets = [1, 2, 4, 8, 16, 32]
    coverages = benchmark.pedantic(
        lambda: [coverage_at(r) for r in budgets], rounds=1, iterations=1)

    print()
    print(render_table(
        ["probe rounds/day", "CDN traffic coverage"],
        [(r, f"{c:.3f}") for r, c in zip(budgets, coverages)]))

    # Monotone improvement (tiny sampling noise tolerated)...
    for lo, hi in zip(coverages, coverages[1:]):
        assert hi >= lo - 0.005
    # ...with diminishing returns: the first doublings buy more than the
    # last one.
    assert coverages[1] - coverages[0] > coverages[-1] - coverages[-2]
    # A single round already finds a sizeable share of the heavy hitters,
    # and the full budget approaches the paper's 95%.
    assert coverages[0] > 0.35
    assert coverages[-1] > 0.9


def test_bench_fusion_value(benchmark, scenario):
    """A2: fused users component vs each technique alone."""

    def build_variant(cache: bool, logs: bool):
        options = BuilderOptions(
            use_cache_probing=cache, use_root_logs=logs,
            use_tls_scan=False, use_sni_scan=False,
            use_ecs_mapping=False, geolocate_sites=False)
        return MapBuilder(scenario, options).build()

    fused = benchmark.pedantic(
        lambda: build_variant(True, True), rounds=1, iterations=1)
    probing_only = build_variant(True, False)
    logs_only = build_variant(False, True)

    def as_coverage(itm) -> float:
        return scenario.traffic.coverage_of_as_set(
            itm.users.detected_as_set(), GROUND_TRUTH_CDN_KEY)

    rows = [
        ("cache probing only", len(probing_only.users.detected_as_set()),
         f"{as_coverage(probing_only):.3f}"),
        ("root logs only", len(logs_only.users.detected_as_set()),
         f"{as_coverage(logs_only):.3f}"),
        ("fused", len(fused.users.detected_as_set()),
         f"{as_coverage(fused):.3f}"),
    ]
    print()
    print(render_table(["users component", "detected ASes",
                        "CDN traffic coverage"], rows))

    assert probing_only.users.detected_as_set() <= \
        fused.users.detected_as_set()
    assert logs_only.users.detected_as_set() <= \
        fused.users.detected_as_set()
    assert as_coverage(fused) >= max(as_coverage(probing_only),
                                     as_coverage(logs_only))
    # Root logs alone are far weaker — the paper's 60% vs 99% story.
    assert as_coverage(logs_only) < as_coverage(fused) - 0.15
