"""Experiment C5 — CDN mapping optimality and anycast efficiency.

Paper (§2.1, from [38]): "While only 31% of routes go to the closest site,
60% of users are mapped to the optimal site"; (§3.2.3): "anycast routing
is extremely efficient for large services, with 80% of clients directed
within 500 km of their closest serving site".
"""

from repro.analysis.report import render_claims


def test_bench_mapping_optimality(benchmark, claims):
    results = benchmark.pedantic(claims.c5_mapping_optimality, rounds=1,
                                 iterations=1)
    print()
    print(render_claims(results))
    for claim in results:
        assert claim.passed, claim.render()
    by_id = {c.claim_id: c for c in results}
    # Users do better than routes, by a wide margin (paper: 60% vs 31%).
    assert by_id["C5b"].measured > by_id["C5a"].measured * 1.3
