"""Parallel campaign execution at 10x substrate scale.

Two acceptance gates for the ``repro.par`` layer:

* with 4 workers the measurement-campaign phase of a scale10 build runs
  at least 2x faster than serial (skipped on boxes with fewer than 4
  cores — the 1-core CI runner measures nothing but scheduler noise);
* a serial scale10 build stays within the committed memory baseline
  (``benchmarks/baselines/scale10-summary.json``), classified by the
  same :func:`repro.obs.diff_manifests` thresholds the CLI gate uses.

Regenerate the baseline after an intentional change with::

    python -m repro --scale scale10 --profile-memory \
        --metrics benchmarks/baselines/scale10-summary.json summary
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import ScenarioConfig, build_scenario
from repro.core.builder import BuilderOptions, MapBuilder
from repro.obs import (Recorder, RunManifest, STATUS_REGRESSION,
                       diff_manifests)

SCALE10_BASELINE = Path(__file__).parent / "baselines" / \
    "scale10-summary.json"

# Aux budgets scaled up so the five stage-parallel campaigns carry
# enough work for the pool to amortise its fork cost.
_HEAVY_AUX = dict(aux_ipid_routers=400, aux_assoc_sample=200_000,
                  aux_reverse_pairs=400, aux_cloud_targets=600)


@pytest.fixture(scope="module")
def scale10_scenario():
    return build_scenario(ScenarioConfig.scale10())


def _timed_build(scenario, workers: int) -> float:
    options = BuilderOptions(run_auxiliary_campaigns=True,
                             workers=workers, **_HEAVY_AUX)
    start = time.perf_counter()
    MapBuilder(scenario, options=options).build()
    return time.perf_counter() - start


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 physical cores")
def test_parallel_build_2x_faster_at_scale10(scale10_scenario):
    """Acceptance gate: >= 2x end-to-end speedup with 4 workers."""
    serial = _timed_build(scale10_scenario, workers=1)
    parallel = _timed_build(scale10_scenario, workers=4)
    assert serial / parallel >= 2.0, (
        f"4 workers only {serial / parallel:.2f}x faster "
        f"({serial:.1f}s -> {parallel:.1f}s)")


def test_scale10_serial_build_within_memory_baseline(scale10_scenario):
    """Acceptance gate: scale10 peak memory holds the committed line.

    Wall findings are ignored (cross-machine); the ``memory`` category
    — ``mem.*.peak_bytes`` growth beyond the diff thresholds — and the
    seed-deterministic counters must classify clean.
    """
    baseline = RunManifest.from_json(SCALE10_BASELINE.read_text())
    recorder = Recorder()
    builder = MapBuilder(
        scale10_scenario,
        options=BuilderOptions(run_auxiliary_campaigns=True,
                               profile_memory=True),
        recorder=recorder)
    builder.build()
    manifest = builder.manifest(command="summary", scale="scale10")
    diff = diff_manifests(baseline, manifest, ignore=("wall",))
    regressions = [f for f in diff.findings
                   if f.status == STATUS_REGRESSION]
    assert not regressions, (
        "scale10 regressed vs committed baseline:\n" +
        "\n".join(f"  {f.category} {f.metric}: {f.detail}"
                  for f in regressions))
