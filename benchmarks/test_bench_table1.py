"""Experiment T1 — Table 1: component granularity/coverage summary.

Regenerates the paper's Table 1 with the "Now" column filled from this
reproduction's measured performance.
"""

from repro.analysis.report import render_table1
from repro.analysis.tables import regenerate_table1


def test_bench_table1(benchmark, scenario, itm):
    rows = benchmark.pedantic(
        regenerate_table1, args=(scenario, itm), rounds=1, iterations=1)

    print()
    print(render_table1(rows))

    assert len(rows) == 5
    by_question = {r.question: r for r in rows}
    # The users rows report /24 granularity, as the paper achieves.
    assert "/24" in by_question["Finding prefixes with users"].network_now
    # The routes row records its own unpredictability.
    assert "unpredictable" in \
        by_question["Commonly used routes"].coverage_now
