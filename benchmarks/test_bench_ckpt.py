"""Crash/resume at paper scale: bit-identity and recovered wall-time.

The small-world tests in ``tests/test_ckpt.py`` lock the checkpoint
contract; this benchmark exercises it where it matters — the paper-scale
world — and reports how much of a fresh build a crash-then-resume run
gets back from snapshots (the numbers quoted in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import time

from repro.ckpt import run_supervised
from repro.core.builder import BuilderOptions, checkpoint_stages
from repro.core.serialize import map_to_json
from repro.faults import FaultPlan

OPTS = BuilderOptions(run_auxiliary_campaigns=True)


def test_crash_resume_bit_identical_at_scale(scenario, builder,
                                             tmp_path_factory):
    # The session fixture's uninterrupted build is the reference.
    fresh_json = map_to_json(builder.itm)

    ckpt = tmp_path_factory.mktemp("ckpt-scale")
    start = time.perf_counter()
    report = run_supervised(scenario, ckpt, options=OPTS,
                            faults=FaultPlan.none().with_crash_at(
                                "services"))
    wall = time.perf_counter() - start

    assert report.completed and report.crashes == 1
    assert map_to_json(report.itm) == fresh_json

    stages = checkpoint_stages(OPTS)
    final = report.runs[-1]
    assert final.stages_reused == stages.index("services") + 1
    assert final.stages_reused + final.stages_recomputed == len(stages)
    print(f"\ncrash@services + resume: {wall:.2f}s total, final run "
          f"reused {final.stages_reused}/{len(stages)} stages")


def test_clean_resume_reuses_every_stage_at_scale(scenario, builder,
                                                  tmp_path_factory):
    from repro.core.builder import MapBuilder

    ckpt = tmp_path_factory.mktemp("ckpt-clean")
    t0 = time.perf_counter()
    MapBuilder(scenario, options=OPTS, checkpoint_dir=ckpt).build()
    fresh_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    resumed = MapBuilder(scenario, options=OPTS, checkpoint_dir=ckpt,
                         resume=True)
    itm = resumed.build()
    resume_wall = time.perf_counter() - t0

    lineage = resumed.ckpt_lineage
    assert lineage.stages_reused == list(checkpoint_stages(OPTS))
    assert not lineage.quarantined
    assert map_to_json(itm) == map_to_json(builder.itm)
    assert resume_wall < fresh_wall
    print(f"\nfresh+checkpoint {fresh_wall:.2f}s, full resume "
          f"{resume_wall:.2f}s ({fresh_wall / resume_wall:.1f}x faster)")
