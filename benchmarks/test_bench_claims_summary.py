"""Master experiment — every headline claim in one table.

Runs the complete :class:`ClaimSuite` against the paper-scale world and
prints the paper-vs-measured summary that EXPERIMENTS.md records.
"""

from repro.analysis.report import render_claims


def test_bench_all_claims(benchmark, claims):
    results = benchmark.pedantic(claims.run_all, rounds=1, iterations=1)
    print()
    print(render_claims(results))
    failing = [c for c in results if not c.passed]
    assert not failing, "\n".join(c.render() for c in failing)
    assert len(results) >= 19
