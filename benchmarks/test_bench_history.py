"""Cross-run diffing and memory profiling at paper scale.

Two locks over the session ``builder``/``manifest`` fixtures (which run
with ``profile_memory`` on):

* the manifest differ is cheap relative to what it watches — a full
  classification of the paper-scale manifest must cost under 5% of the
  build wall time it describes, so ``repro compare`` never becomes the
  bottleneck of a CI gate;
* the peak-memory gauges are present and internally consistent at
  scale (the build's traced peak bounds every child stage's peak).
"""

from __future__ import annotations

import copy
import time

from repro.obs import (STATUS_OK, STATUS_REGRESSION, RunHistory,
                       RunManifest, diff_manifests, validate_manifest)


def test_self_diff_clean_at_scale(manifest):
    diff = diff_manifests(manifest, manifest)
    assert diff.status == STATUS_OK
    assert diff.findings == []


def test_diff_classification_overhead_under_5pct(manifest):
    build_wall = manifest.stage("build").wall_s
    payload = copy.deepcopy(manifest.to_dict())
    for stage in payload["stages"]:
        stage["wall_s"] *= 1.5
    payload["route_cache"]["hit_rate"] *= 0.8
    perturbed = RunManifest.from_dict(payload)
    start = time.perf_counter()
    rounds = 5
    for _ in range(rounds):
        diff = diff_manifests(manifest, perturbed)
    wall = (time.perf_counter() - start) / rounds
    assert diff.status == STATUS_REGRESSION
    assert wall < 0.05 * build_wall, (
        f"one diff classification took {wall:.3f}s against a "
        f"{build_wall:.3f}s build (>{5}% overhead)")


def test_seeded_regression_detected_at_scale(manifest):
    payload = copy.deepcopy(manifest.to_dict())
    component = next(iter(payload["coverage"]))
    payload["coverage"][component]["coverage"] = max(
        0.0, payload["coverage"][component]["coverage"] - 0.10)
    diff = diff_manifests(manifest, RunManifest.from_dict(payload))
    assert diff.status == STATUS_REGRESSION
    assert any(f.metric == component for f in diff.regressions())


def test_memory_gauges_present_at_scale(manifest):
    validate_manifest(manifest.to_dict())
    gauges = manifest.gauges
    build_peak = gauges["mem.build.peak_bytes"]
    assert build_peak > 0
    # Every pipeline stage traced a peak, bounded by the build's own.
    for stage in ("users", "services", "routes", "aux"):
        peak = gauges[f"mem.build.{stage}.peak_bytes"]
        assert 0 <= peak <= build_peak, stage
    # The dense route cache reports its resident footprint.
    assert gauges["mem.routing.cache.resident_bytes"] > 0


def test_history_append_and_diff_round_trip_at_scale(manifest,
                                                     tmp_path):
    history = RunHistory(tmp_path / "bench-history.jsonl")
    history.record(manifest, label="bench")
    entry = history.latest()
    loaded = entry.load_manifest()
    diff = diff_manifests(manifest, loaded)
    assert diff.status == STATUS_OK
    assert diff.findings == []
