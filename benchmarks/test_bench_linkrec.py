"""Experiment C9 — §3.3.3 peering-link recommendation.

Paper: "one could formulate the problem as a recommendation system [45] —
we rate the likelihood that networks (the shoppers) would want to peer
with other networks (the items being recommended) and infer the existence
of links if the recommendation is strong."

The recommender must rank the links that collectors cannot see well above
co-located non-links (AUC well above 0.5).
"""

from repro.analysis.report import render_claims


def test_bench_link_recommendation(benchmark, claims):
    result = benchmark.pedantic(claims.c9_link_recommendation, rounds=1,
                                iterations=1)
    print()
    print(render_claims([result]))
    assert result.passed, result.render()
