"""Experiment E6 — inferring anycast suboptimality (§3.2.3).

"The main challenge is in inferring in which cases this optimality is
likely violated" — including the honest negative result: the obvious
public features (colocation, site proximity) carry almost no signal in
this world; the map's own activity weights do.
"""

from repro.analysis.report import render_table
from repro.core.suboptimality import (SuboptimalityPredictor,
                                      evaluate_risk_ranking,
                                      true_inflation_by_as)
from repro.services.hypergiants import RedirectionScheme


def test_bench_suboptimality_inference(benchmark, scenario, itm):
    key = next(iter(scenario.anycast_models))
    model = scenario.anycast_models[key]
    predictor = SuboptimalityPredictor(
        scenario.registry, scenario.topology.peeringdb,
        scenario.public_view.graph, scenario.hypergiant_asn(key),
        [site.city for site in model.sites],
        activity_by_as=itm.users.activity_by_as)
    assignment = scenario.mapping.assignment(
        key, RedirectionScheme.ANYCAST)
    extra = true_inflation_by_as(scenario.registry, scenario.prefixes,
                                 assignment.extra_km())

    risks = benchmark.pedantic(predictor.rank, args=(sorted(extra),),
                               rounds=1, iterations=1)
    auc = evaluate_risk_ranking(risks, extra)

    inflated = {asn for asn, e in extra.items() if e > 500}
    top_quarter = risks[:len(risks) // 4]
    hit_rate_top = sum(1 for r in top_quarter if r.asn in inflated) \
        / len(top_quarter)
    base_rate = len(inflated) / len(extra)
    print()
    print(render_table(
        ["metric", "value"],
        [("client ASes scored", len(risks)),
         ("truly inflated (>500 km)", f"{base_rate:.1%}"),
         ("inflated among top-risk quartile", f"{hit_rate_top:.1%}"),
         ("risk-ranking AUC", f"{auc:.3f}")]))

    assert auc > 0.55
    assert hit_rate_top > base_rate
