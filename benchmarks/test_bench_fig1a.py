"""Experiment F1a — Figure 1a: client prefixes detected per GDNS PoP.

Regenerates the per-PoP detected-prefix counts from one day of ECS cache
probing and checks the figure's shape: a heavy-tailed, multi-order-of-
magnitude spread across PoPs (the paper plots it on a log axis).
"""

import numpy as np

from repro.analysis.figures import fig1a_prefixes_per_pop
from repro.analysis.report import render_fig1a


def test_bench_fig1a(benchmark, scenario, builder):
    cache_result = builder.artifacts.cache_result

    rows = benchmark.pedantic(
        fig1a_prefixes_per_pop, args=(scenario, cache_result),
        rounds=3, iterations=1)

    print()
    print(render_fig1a(rows))

    counts = np.array([r.prefix_count for r in rows], dtype=float)
    # Every PoP serves someone; the spread spans at least one order of
    # magnitude (log-scale figure), and most detected prefixes concentrate
    # behind the biggest PoPs.
    assert (counts > 0).sum() >= len(counts) * 0.8
    nonzero = counts[counts > 0]
    assert nonzero.max() / nonzero.min() > 10
    top_quarter = counts[:max(1, len(counts) // 4)].sum()
    assert top_quarter / counts.sum() > 0.4
    # Total detected prefixes match the campaign's detection set.
    assert counts.sum() == len(cache_result.detected_prefixes())
