"""Experiment F2 — Figure 2: ISP subscribers vs cache hit rate vs APNIC.

Paper: "Cache hit rate correctly orders French ISPs with respect to their
subscriber counts, suggesting there is some signal available for
estimating relative activities."
"""

from repro.analysis.figures import fig2_subscribers_vs_signals
from repro.analysis.report import render_fig2


def test_bench_fig2(benchmark, scenario, builder):
    cache_result = builder.artifacts.cache_result

    data = benchmark.pedantic(
        fig2_subscribers_vs_signals, args=(scenario, cache_result),
        rounds=3, iterations=1)

    print()
    print(render_fig2(data))

    # The French case study: hit counts order the ISPs correctly.
    assert data.orderings_correct["FR"]
    # And in fact every focus country orders correctly in this world.
    assert data.all_orderings_correct()
    # Strong correlation between the estimator and ground truth.
    assert data.hit_count_pearson > 0.9
    assert data.hit_count_spearman > 0.9
    # The unvalidated APNIC estimates exist for the focus ISPs too.
    with_apnic = [r for r in data.rows if r.apnic_estimate_m is not None]
    assert len(with_apnic) >= len(data.rows) * 0.8
