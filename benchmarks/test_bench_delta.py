"""Steady-state churn: ten delta rebuilds vs ten fresh rebuilds.

The delta layer's economic claim (docs/delta.md): absorbing a stream of
substrate changes by recomputing only dirty stages beats rebuilding from
scratch. Two acceptance gates at the small scenario:

* **wall-time** — a 10-step activity-churn loop rebuilt with ``--delta``
  costs under 35% of the same loop rebuilt fresh (the services stage,
  roughly three quarters of a small build, is reused on every step);
* **baseline** — the final-step delta manifest, with deterministic
  ``delta.*`` reuse gauges folded in, classifies clean against the
  committed ``benchmarks/baselines/delta-churn.json`` under the same
  :func:`repro.obs.diff_manifests` thresholds the CLI gate uses (wall
  findings ignored — cross-machine).

The two pipelines being compared do the work each would really do at
step *k* of a churn sequence:

* **fresh** regenerates the world from its config, replays the full
  mutation log (plans 1..k) and runs a checkpointed build into an empty
  directory — exactly what ``repro build --mutate`` does today when no
  prior state survives;
* **delta** applies plan *k* to its live world and rebuilds only the
  stages the plan dirtied, against the snapshots the previous step
  saved.

Both sides persist snapshots, so neither gets a durability discount.
The identity verification (``map_to_json`` on both maps) runs outside
the timed regions: it is harness overhead, not rebuild cost, and both
sides would pay it equally.

Every step re-asserts the identity guarantee end-to-end: the delta map
must equal the fresh map byte-for-byte, otherwise the speedup is
measuring a wrong answer.

Regenerate the baseline after an intentional change with::

    REPRO_UPDATE_BASELINES=1 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_delta.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.serialize import map_to_json
from repro.delta import ActivitySwing, MutationPlan, apply_mutation_plan
from repro.obs import (Recorder, RunManifest, STATUS_REGRESSION,
                       diff_manifests)

DELTA_BASELINE = Path(__file__).parent / "baselines" / "delta-churn.json"

SEED = 20211110
STEPS = 10


def churn_plans(scenario):
    """Ten single-swing plans over drifting prefix windows.

    Factors alternate 2x / 0.5x so the traffic matrix oscillates instead
    of blowing up; prefix ids wrap modulo the table so the plans stay
    valid at any scale.
    """
    n = scenario.traffic.queries_per_day.shape[1]
    plans = []
    for i in range(STEPS):
        ids = tuple(sorted({(i * 7 + j) % n for j in range(5)}))
        factor = 2.0 if i % 2 == 0 else 0.5
        plans.append(MutationPlan(mutations=(
            ActivitySwing(prefix_ids=ids, factor=factor),)))
    return plans


def test_ten_step_churn_under_35pct_of_fresh(tmp_path_factory):
    config = ScenarioConfig.small(seed=SEED)
    scenario = build_scenario(config)
    root = tmp_path_factory.mktemp("delta-churn")
    ckpt = root / "delta"
    MapBuilder(scenario, checkpoint_dir=ckpt).build()

    fresh_wall = 0.0
    delta_wall = 0.0
    reused_total = 0
    recomputed_total = 0
    builder = None
    applied = []
    for step, plan in enumerate(churn_plans(scenario)):
        applied.append(plan)

        # Fresh pipeline: config + mutation log is all it has.
        start = time.perf_counter()
        replayed = build_scenario(config)
        for past in applied:
            apply_mutation_plan(replayed, past)
        fresh_map = MapBuilder(
            replayed, checkpoint_dir=root / f"fresh-{step}").build()
        fresh_wall += time.perf_counter() - start

        # Delta pipeline: live world + this step's plan.
        recorder = Recorder()
        start = time.perf_counter()
        apply_mutation_plan(scenario, plan)
        builder = MapBuilder(scenario, recorder=recorder,
                             checkpoint_dir=ckpt, delta=True,
                             delta_plan=plan)
        delta_map = builder.build()
        delta_wall += time.perf_counter() - start

        assert map_to_json(delta_map) == map_to_json(fresh_map), \
            f"delta rebuild diverged from fresh rebuild at step {step}"
        lineage = builder.ckpt_lineage
        assert lineage.stages_reused, "no reuse: delta means fresh"
        reused_total += len(lineage.stages_reused)
        recomputed_total += len(lineage.stages_recomputed)

    ratio = delta_wall / fresh_wall
    print(f"\n{STEPS}-step churn: fresh {fresh_wall:.2f}s, delta "
          f"{delta_wall:.2f}s ({ratio:.0%}); reused "
          f"{reused_total}/{reused_total + recomputed_total} "
          f"stage visits")
    assert ratio < 0.35, (
        f"{STEPS} delta rebuilds cost {ratio:.0%} of fresh rebuilds "
        f"(gate: 35%)")

    # Deterministic churn outcome, folded into the final-step manifest
    # as gauges so the committed baseline locks it.
    recorder.gauge("delta.churn.steps", STEPS)
    recorder.gauge("delta.churn.stages_reused_total", reused_total)
    recorder.gauge("delta.churn.stages_recomputed_total",
                   recomputed_total)
    manifest = builder.manifest(command="bench-delta", scale="small")

    if os.environ.get("REPRO_UPDATE_BASELINES"):
        DELTA_BASELINE.write_text(
            json.dumps(manifest.to_dict(), indent=2) + "\n")
        print(f"baseline rewritten: {DELTA_BASELINE}")
        return

    baseline = RunManifest.from_json(DELTA_BASELINE.read_text())
    diff = diff_manifests(baseline, manifest, ignore=("wall",))
    regressions = [f for f in diff.findings
                   if f.status == STATUS_REGRESSION]
    assert not regressions, (
        "delta churn regressed vs committed baseline:\n" +
        "\n".join(f"  {f.category} {f.metric}: {f.detail}"
                  for f in regressions))
