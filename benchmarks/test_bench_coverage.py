"""Experiments C1-C3 — §3.1.2 coverage claims.

* C1: cache probing finds prefixes with ~95% of the ground-truth CDN's
  traffic, with <1% false positives;
* C2: root-log crawling finds ASes with ~60% of that traffic;
* C3: combined, ~99% of traffic and ~98% of APNIC-estimated users.

The benchmarked step is the full one-day cache-probing campaign over every
routable /24 x top-20 domains — the heart of the measurement machinery.
"""

from repro.analysis.report import render_claims
from repro.measure.cache_probing import CacheProbingCampaign
from repro.rand import substream


def test_bench_cache_probing_campaign(benchmark, scenario, claims):
    config = scenario.config.measurement

    def run_campaign():
        return CacheProbingCampaign(
            oracle=scenario.cache_oracle,
            gdns=scenario.gdns,
            services=scenario.catalog.top_by_popularity(
                config.probe_top_k_domains),
            prefix_ids=scenario.routable_prefix_ids(),
            rounds_per_day=config.probe_rounds_per_day,
            rng=substream(scenario.config.seed, "bench-probe")).run()

    result = benchmark.pedantic(run_campaign, rounds=3, iterations=1)
    assert len(result.detected_prefixes()) > 0

    results = (claims.c1_cache_probing_coverage()
               + [claims.c2_rootlog_coverage()]
               + claims.c3_combined_coverage())
    print()
    print(render_claims(results))
    for claim in results:
        assert claim.passed, claim.render()

    # Complementarity: the union must beat the weaker technique alone.
    by_id = {c.claim_id: c for c in results}
    assert by_id["C3a"].measured >= by_id["C2"].measured


def test_bench_coverage_across_cdns(benchmark, scenario, builder, itm):
    """Robustness: the coverage result is not specific to the reference
    CDN — the detected-prefix set covers every hypergiant's traffic."""
    from repro.analysis.report import render_table

    detected = itm.users.detected_prefixes

    def coverage_table():
        rows = []
        for key in scenario.catalog.hypergiants:
            coverage = scenario.traffic.coverage_of_prefix_set(
                detected, key)
            rows.append((key, coverage))
        return rows

    rows = benchmark.pedantic(coverage_table, rounds=1, iterations=1)
    print()
    print(render_table(["hypergiant", "prefix-level traffic coverage"],
                       [(k, f"{c:.3f}") for k, c in rows]))
    for key, coverage in rows:
        assert coverage > 0.9, key
