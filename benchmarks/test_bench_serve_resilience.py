"""Overload-protection benchmark: the admission gate under 3× capacity.

The resilience promise (see ``docs/serving.md``) is that overload
*degrades* service instead of breaking it: excess requests are shed
with 429 + ``Retry-After`` while every admitted request still answers
correctly and promptly. This bench drives a real HTTP server with
open-loop load at three times the token bucket's sustained rate and
gates:

* **no silent failures** — zero 5xx/transport errors across the run;
  every request either completes (2xx) or is shed (429);
* **the gate actually sheds** — the shed fraction lands inside the
  committed band around the arithmetic prediction (offered 3×, serving
  capacity 1× → about 2/3 shed, the band absorbs burst credit and
  scheduling noise);
* **admitted latency stays flat** — p99 of admitted requests under
  overload at most ``P99_OVERLOAD_FACTOR`` × the unloaded closed-loop
  p99 (floored at ``P99_ABS_FLOOR_MS`` for shared CI boxes): shedding
  at the door is what keeps the queue, and therefore the latency, from
  growing;
* **the manifest tells the story** — the instrumented run's ``serve``
  section (manifest format 4) carries matching admit counters with
  ``offered == admitted + shed``.

The committed baseline (``baselines/serve-resilience.json``) locks the
deterministic scenario parameters and bands; regenerate after an
intentional change with::

    REPRO_UPDATE_BASELINES=1 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_serve_resilience.py -q
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro import ScenarioConfig, build_scenario
from repro.core.builder import MapBuilder
from repro.core.mapstore import MapStore
from repro.obs import Recorder
from repro.serve import (AdmissionGate, MapService, replay_http,
                         seeded_queries, serve_http,
                         serve_manifest_section)

BASELINE = Path(__file__).parent / "baselines" / "serve-resilience.json"

SEED = 20211110
N_WARMUP = 150
N_QUERIES = 400
RATE_QPS = 60.0            # token bucket: sustained serving capacity
BURST = 12
OVERLOAD_FACTOR = 3.0      # open-loop arrival rate = 3× capacity
SHED_BAND = (0.40, 0.85)   # around the 2/3 arithmetic prediction
P99_OVERLOAD_FACTOR = 2.0
P99_ABS_FLOOR_MS = 60.0


def test_overload_gate():
    scenario = build_scenario(ScenarioConfig.small(seed=SEED))
    recorder = Recorder()
    builder = MapBuilder(scenario, recorder=recorder)
    store = MapStore.from_map(builder.build(), graph=scenario.graph)
    gate = AdmissionGate(max_inflight=16, rate=RATE_QPS, burst=BURST,
                         max_wait_s=0.0, recorder=recorder)
    service = MapService(store, recorder=recorder, cache_entries=4096,
                         gate=gate)
    httpd = serve_http(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_port}"
    try:
        # Unloaded reference: open-loop at half the bucket rate, so
        # nothing sheds and p99 is the service's natural latency.
        warmup = seeded_queries(store, N_WARMUP, seed=SEED + 1)
        unloaded = replay_http(base, warmup, seed=SEED,
                               open_loop_rate=RATE_QPS * 0.5,
                               max_workers=8)
        assert unloaded["shed"] == 0, unloaded
        assert unloaded["http_errors"] == 0, unloaded

        # Overload: open-loop Poisson arrivals at 3× the bucket rate.
        queries = seeded_queries(store, N_QUERIES, seed=SEED)
        loaded = replay_http(base, queries, seed=SEED,
                             open_loop_rate=RATE_QPS * OVERLOAD_FACTOR,
                             max_workers=32)
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)

    # -- no silent failures: completed or shed, nothing in between ------
    assert loaded["http_errors"] == 0, loaded
    assert loaded["queries"] == N_QUERIES

    # -- the gate sheds inside the committed band -----------------------
    shed_fraction = loaded["shed"] / N_QUERIES
    low, high = SHED_BAND
    assert low <= shed_fraction <= high, (
        f"shed fraction {shed_fraction:.2f} outside the committed "
        f"[{low}, {high}] band: {loaded}")

    # -- admitted latency stays flat under overload ---------------------
    p99_unloaded = unloaded["latency_ms"]["p99"]
    p99_loaded = loaded["latency_ms"]["p99"]
    ceiling = max(P99_OVERLOAD_FACTOR * p99_unloaded, P99_ABS_FLOOR_MS)
    assert p99_loaded <= ceiling, (
        f"admitted p99 {p99_loaded:.1f} ms under overload exceeds "
        f"{ceiling:.1f} ms (unloaded p99 {p99_unloaded:.1f} ms)")

    # -- the manifest's serve section tells the same story --------------
    section = serve_manifest_section(recorder)
    assert section is not None
    admit = section["admit"]
    assert admit["offered"] == admit["admitted"] + admit["shed"]
    assert admit["shed"] >= loaded["shed"]   # gate counts every attempt
    manifest = builder.manifest(command="bench-serve-resilience",
                                scale="small",
                                serve=section).to_dict()
    assert manifest["format_version"] == 5
    assert manifest["serve"]["admit"]["shed"] == admit["shed"]

    print(f"\nserve overload: offered {admit['offered']} "
          f"(gate: {admit['admitted']} admitted / {admit['shed']} shed), "
          f"client shed fraction {shed_fraction:.2f}, "
          f"p99 {p99_unloaded:.1f} ms unloaded -> {p99_loaded:.1f} ms "
          f"at {OVERLOAD_FACTOR:.0f}x capacity")

    summary_path = os.environ.get("REPRO_SERVE_SUMMARY")
    if summary_path:
        with open(summary_path, "w") as handle:
            json.dump({"digest": store.digest, "seed": SEED,
                       "unloaded": unloaded, "loaded": loaded,
                       "serve": section}, handle, indent=2)
            handle.write("\n")
        print(f"wrote resilience summary to {summary_path}")

    deterministic = {
        "scale": "small",
        "seed": SEED,
        "queries": N_QUERIES,
        "rate_qps": RATE_QPS,
        "burst": BURST,
        "overload_factor": OVERLOAD_FACTOR,
        "shed_band": list(SHED_BAND),
        "http_errors": 0,
        "p99_overload_factor": P99_OVERLOAD_FACTOR,
        "p99_abs_floor_ms": P99_ABS_FLOOR_MS,
    }
    if os.environ.get("REPRO_UPDATE_BASELINES"):
        BASELINE.write_text(json.dumps(deterministic, indent=2) + "\n")
        print(f"baseline rewritten: {BASELINE}")
        return
    baseline = json.loads(BASELINE.read_text())
    assert baseline == deterministic, (
        "serve resilience scenario drifted from the committed baseline "
        f"({BASELINE}): expected {baseline}, got {deterministic}; "
        "regenerate with REPRO_UPDATE_BASELINES=1 if intentional")
