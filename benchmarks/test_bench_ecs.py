"""Experiment C7 — §3.2.3 ECS adoption among top sites.

Paper: "Already, 15 of the top 20 sites (according to Alexa toplist)
support ECS, representing 35% of Internet traffic and 91% of traffic to
the top 20 sites."
"""

from repro.analysis.report import render_claims


def test_bench_ecs_adoption(benchmark, claims):
    results = benchmark.pedantic(claims.c7_ecs_adoption, rounds=5,
                                 iterations=1)
    print()
    print(render_claims(results))
    for claim in results:
        assert claim.passed, claim.render()
