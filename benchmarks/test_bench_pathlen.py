"""Experiment C4 — §2.1 path-length weighting contrast.

Paper: with a traditional academic topology "only 2% of Internet paths
were two ASes long", yet "73% of Google queries come from ASes that either
host a Google server or connect directly with Google or another AS hosting
a Google server". The contrast is the map's raison d'etre.
"""

from repro.analysis.report import render_claims


def test_bench_path_lengths(benchmark, claims):
    results = benchmark.pedantic(claims.c4_path_lengths, rounds=1,
                                 iterations=1)
    print()
    print(render_claims(results))
    for claim in results:
        assert claim.passed, claim.render()
    by_id = {c.claim_id: c for c in results}
    # The "huge swing": weighted near-mass dwarfs the unweighted baseline.
    assert by_id["C4b"].measured > by_id["C4a"].measured + 0.5
