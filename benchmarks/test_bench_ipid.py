"""Experiment C8 — §3.1.3 IP ID velocity.

Paper: "the IP ID values of most routers display diurnal patterns,
suggesting that the rate at which the routers source packets may be
proportional to the rate at which they forward traffic. We propose
measuring IP ID velocity over time ... to estimate the rate at which
routers forward user traffic."

The benchmarked step is a 48-hour ping campaign over 100 router
interfaces at 15-minute intervals.
"""

from repro.analysis.report import render_claims


def test_bench_ipid_velocity(benchmark, claims):
    results = benchmark.pedantic(claims.c8_ipid_velocity, rounds=1,
                                 iterations=1)
    print()
    print(render_claims(results))
    for claim in results:
        assert claim.passed, claim.render()
