"""Experiment E5 — closing the §3.3.3 loop: recommended links feed the
path predictor.

"Is it possible to predict with high confidence which links exist, to
feed into a path prediction algorithm?" — rank co-located candidate pairs
with the recommender, install the top-scoring predictions as peering
links, and measure how much Atlas->root prediction improves.
"""

from repro.analysis.report import render_table
from repro.core.linkrec import PeeringRecommender
from repro.core.pathpred import PathPredictor, evaluate_prediction
from repro.measure.atlas import AtlasPlatform
from repro.rand import substream


def test_bench_recommendation_feeds_prediction(benchmark, scenario, itm):
    platform = AtlasPlatform(
        scenario.registry, scenario.bgp, scenario.prefixes,
        substream(scenario.config.seed, "bench-e5-atlas"), vp_count=120)
    truth = {}
    for root in scenario.roots.roots:
        for vp in platform.vantage_points:
            if vp.asn != root.host_asn:
                truth[(vp.asn, root.host_asn)] = scenario.bgp.path(
                    vp.asn, root.host_asn)

    recommender = PeeringRecommender(
        scenario.public_view.graph, scenario.registry,
        scenario.topology.peeringdb,
        activity_by_as=itm.users.activity_by_as)

    def recommend():
        return recommender.recommend_missing_links(top_k=2000)

    recommendations = benchmark.pedantic(recommend, rounds=1,
                                         iterations=1)
    predicted_links = [r.pair for r in recommendations]

    rows = []
    baseline = evaluate_prediction(
        PathPredictor(scenario.public_view).predict_many(list(truth)),
        truth)
    rows.append(("public topology only", f"{baseline.exact_fraction:.3f}",
                 f"{baseline.unpredictable_fraction:.3f}"))
    results = {}
    for k in (250, 1000, 2000):
        predictor = PathPredictor.with_augmented_links(
            scenario.public_view, predicted_links[:k])
        evaluation = evaluate_prediction(
            predictor.predict_many(list(truth)), truth)
        results[k] = evaluation
        rows.append((f"+ top-{k} recommended links",
                     f"{evaluation.exact_fraction:.3f}",
                     f"{evaluation.unpredictable_fraction:.3f}"))

    print()
    print(render_table(
        ["topology", "exact-path fraction", "unpredictable fraction"],
        rows))

    # Recommendations help: exact prediction improves over the baseline.
    assert results[2000].exact_fraction > baseline.exact_fraction
    # And unpredictability does not get worse.
    assert results[2000].unpredictable_fraction <= \
        baseline.unpredictable_fraction + 1e-9
