"""Crash-recoverable builds: stage checkpoints, verified resume.

Each :class:`repro.core.builder.MapBuilder` stage can snapshot its
output to a :class:`CheckpointStore` (content-addressed, atomically
written); a build started with ``resume=True`` loads verified snapshots
instead of recomputing, quarantines anything corrupt or incompatible,
and — the subsystem's hard guarantee — produces a map bit-identical to
a fresh uninterrupted build. :func:`run_supervised` wraps the
build/crash/resume loop; see ``docs/checkpointing.md``.
"""

from .store import (CKPT_FORMAT_VERSION, CheckpointError,
                    CheckpointLineage, CheckpointStore, LoadedSnapshot)
from .supervisor import SupervisedRun, SupervisionReport, run_supervised

__all__ = [
    "CKPT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointLineage",
    "CheckpointStore",
    "LoadedSnapshot",
    "SupervisedRun",
    "SupervisionReport",
    "run_supervised",
]
