"""Crash supervision: re-run a checkpointed build until it completes.

The paper's map is meant to be rebuilt continuously from long-running
campaigns (§3.1-§3.3); a production builder therefore needs the same
checkpoint/restart discipline as a training job. :func:`run_supervised`
is that restart loop in miniature: construct a :class:`MapBuilder`
against a checkpoint directory, build, and — when the build dies with a
:class:`repro.faults.SimulatedCrash` — construct a fresh builder and
resume from the snapshots the dead run left behind. Because a crash
fires only after its stage's snapshot is durably on disk, every run
makes at least one stage of progress, so the loop terminates.

The resulting map is bit-identical to an uninterrupted build (the
``repro.ckpt`` hard guarantee, regression-locked in
``tests/test_ckpt.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..faults import SimulatedCrash
from ..obs.recorder import Recorder
from .store import CheckpointError


@dataclass
class SupervisedRun:
    """One builder run under supervision."""

    attempt: int
    crashed_at: Optional[str]          # None = completed
    stages_reused: int = 0
    stages_recomputed: int = 0


@dataclass
class SupervisionReport:
    """What the supervisor did to get a map out the other side.

    ``builder`` is the final (successful) builder — its
    ``ckpt_lineage`` and ``manifest()`` describe the completing run.
    """

    runs: List[SupervisedRun] = field(default_factory=list)
    itm: object = None
    builder: object = None

    @property
    def completed(self) -> bool:
        return self.itm is not None

    @property
    def crashes(self) -> int:
        return sum(1 for run in self.runs if run.crashed_at is not None)


def run_supervised(scenario, checkpoint_dir, *, options=None, faults=None,
                   recorder_factory: Optional[
                       Callable[[], Recorder]] = None,
                   max_runs: Optional[int] = None) -> SupervisionReport:
    """Build a map, restarting from checkpoints after simulated crashes.

    ``faults`` may arm ``crash_at``; the first run then dies at that
    stage boundary and the next run resumes past it. ``recorder_factory``
    (not a shared recorder) is called once per run, because spans cannot
    restart across builder lifetimes. ``max_runs`` defaults to
    stage-count + 2 — enough for a crash at every boundary plus the
    clean final pass — and exceeding it raises :class:`CheckpointError`,
    which can only mean resume is not making progress.
    """
    # Imported here, not at module top: repro.core.builder is this
    # package's consumer (it loads repro.ckpt.store), so a top-level
    # import would be circular.
    from ..core.builder import MapBuilder

    report = SupervisionReport()
    attempt = 0
    while True:
        attempt += 1
        recorder = recorder_factory() if recorder_factory else None
        builder = MapBuilder(scenario, options=options, faults=faults,
                             recorder=recorder,
                             checkpoint_dir=checkpoint_dir, resume=True)
        if max_runs is None:
            max_runs = len(builder.stages()) + 2
        try:
            itm = builder.build()
        except SimulatedCrash as crash:
            lineage = builder.ckpt_lineage
            report.runs.append(SupervisedRun(
                attempt=attempt,
                crashed_at=crash.stage,
                stages_reused=len(lineage.stages_reused),
                stages_recomputed=len(lineage.stages_recomputed)))
            if attempt >= max_runs:
                raise CheckpointError(
                    f"supervisor gave up after {attempt} runs "
                    f"(last crash at {crash.stage!r}): resume is not "
                    "making progress") from None
            continue
        lineage = builder.ckpt_lineage
        report.runs.append(SupervisedRun(
            attempt=attempt,
            crashed_at=None,
            stages_reused=len(lineage.stages_reused),
            stages_recomputed=len(lineage.stages_recomputed)))
        report.itm = itm
        report.builder = builder
        return report
