"""Content-addressed stage snapshots with atomic writes and quarantine.

A :class:`CheckpointStore` owns one ``--checkpoint-dir``. Each builder
stage saves its output as a JSON snapshot whose *body* (payload +
fault-scope states + builder notes) is digested with SHA-256; the digest
rides in the envelope and — truncated — in the filename, so a snapshot
is content-addressed and self-verifying. Writes are atomic (temp file in
the same directory, then ``os.replace``) so a crash mid-save can never
leave a half-written snapshot where a resume would trust it.

On load the store verifies, in order: the file parses, the envelope
schema version and stage name match, the config / fault-plan / options
digests match the current build, and the recomputed body digest equals
the recorded one. Any failure *quarantines* the snapshot (moves it to
``quarantine/`` and records the reason in the lineage) and reports a
miss, so the builder recomputes the stage instead of trusting bad data —
a wrong map is strictly worse than a slow one.

Layout under the checkpoint dir::

    snapshots/<stage>.<digest12>.json   one per stage, newest wins
    quarantine/<n>-<original name>      failed verification, kept for
                                        post-mortems

Determinism note: nothing here depends on wall-clock or randomness; the
envelope records ``created_unix`` for humans only, and it is excluded
from the digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ReproError
from ..obs.recorder import NULL_RECORDER, Recorder

#: Snapshot envelope schema version; bump on incompatible layout change.
CKPT_FORMAT_VERSION = 1

#: Hex digits of the body digest carried in the snapshot filename.
_NAME_DIGEST_LEN = 12


class CheckpointError(ReproError):
    """A checkpoint operation failed unrecoverably (I/O, bad root)."""


@dataclass
class LoadedSnapshot:
    """A verified snapshot, ready for the builder to apply.

    ``payload`` is still in its serialized (plain-JSON) form — the
    builder decodes it with :func:`repro.core.serialize.
    stage_payload_from_dict`; ``scopes`` / ``notes`` are the absolute
    post-stage fault-scope states and note lists the stage recorded.
    """

    stage: str
    payload: object
    scopes: Dict[str, Dict]
    notes: Dict[str, List[str]]


@dataclass
class CheckpointLineage:
    """What a checkpointed build reused, recomputed and quarantined.

    Feeds the :class:`repro.obs.RunManifest` ``checkpoint`` section;
    ``validate_manifest`` holds ``len(stages_reused) +
    len(stages_recomputed) == stages_total``.
    """

    checkpoint_dir: str
    resumed: bool
    stages_total: int = 0
    stages_reused: List[str] = field(default_factory=list)
    stages_recomputed: List[str] = field(default_factory=list)
    quarantined: List[Dict[str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the manifest section verbatim)."""
        return dataclasses.asdict(self)


class CheckpointStore:
    """Atomic, verified stage snapshots under one checkpoint directory.

    The three digests pin snapshot compatibility: a snapshot satisfies a
    resume only if the scenario config, the fault plan (crash schedule
    excluded — see :func:`repro.obs.manifest.fault_plan_digest`) and the
    builder options all match the run that wrote it.
    """

    def __init__(self, root, *, config_digest: str,
                 fault_plan_digest: str, options_digest: str,
                 recorder: Optional[Recorder] = None) -> None:
        self.root = Path(root)
        self.snapshot_dir = self.root / "snapshots"
        self.quarantine_dir = self.root / "quarantine"
        self.config_digest = config_digest
        self.fault_plan_digest = fault_plan_digest
        self.options_digest = options_digest
        self._recorder = recorder or NULL_RECORDER
        try:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint dir {self.root}: {exc}") \
                from None

    # -- digests ----------------------------------------------------------

    @staticmethod
    def _body_bytes(body: Dict[str, object]) -> bytes:
        # Compact, order-preserving: dict insertion order is meaningful
        # (see repro.core.serialize) so the body is NOT key-sorted. The
        # digest therefore covers the exact order a resume will see.
        return json.dumps(body, separators=(",", ":")).encode()

    @classmethod
    def body_digest(cls, body: Dict[str, object]) -> str:
        """SHA-256 hex digest of a snapshot body."""
        return hashlib.sha256(cls._body_bytes(body)).hexdigest()

    # -- paths ------------------------------------------------------------

    def snapshot_paths(self, stage: str) -> List[Path]:
        """Existing snapshot files for a stage (normally zero or one)."""
        return sorted(self.snapshot_dir.glob(f"{stage}.*.json"))

    # -- save -------------------------------------------------------------

    def save(self, stage: str, payload: object,
             scopes: Dict[str, Dict],
             notes: Dict[str, List[str]]) -> Path:
        """Atomically persist one stage's snapshot; returns its path.

        Any older snapshot of the same stage is removed after the new
        one is durably in place, so a reader never sees zero snapshots
        where one existed.
        """
        rec = self._recorder
        with rec.span("ckpt.save"):
            body = {"payload": payload, "scopes": scopes, "notes": notes}
            digest = self.body_digest(body)
            envelope = {
                "format_version": CKPT_FORMAT_VERSION,
                "stage": stage,
                "config_digest": self.config_digest,
                "fault_plan_digest": self.fault_plan_digest,
                "options_digest": self.options_digest,
                "payload_sha256": digest,
                "created_unix": time.time(),
                "body": body,
            }
            final = self.snapshot_dir / (
                f"{stage}.{digest[:_NAME_DIGEST_LEN]}.json")
            tmp = self.snapshot_dir / f".{final.name}.tmp"
            try:
                with open(tmp, "w") as handle:
                    json.dump(envelope, handle, indent=2)
                    handle.write("\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, final)
            except OSError as exc:
                raise CheckpointError(
                    f"cannot write snapshot for stage {stage!r}: {exc}") \
                    from None
            for stale in self.snapshot_paths(stage):
                if stale != final:
                    stale.unlink(missing_ok=True)
            rec.count("ckpt.saves")
        return final

    # -- load -------------------------------------------------------------

    def load(self, stage: str,
             lineage: Optional[CheckpointLineage] = None
             ) -> Optional[LoadedSnapshot]:
        """Verified snapshot for a stage, or None (miss / quarantined).

        A missing snapshot is a plain miss. A snapshot that fails
        verification is moved to ``quarantine/`` (reason recorded on
        ``lineage``) and also reported as a miss, so the caller
        recomputes.
        """
        rec = self._recorder
        paths = self.snapshot_paths(stage)
        if not paths:
            rec.count("ckpt.misses")
            return None
        # Newest (and normally only) candidate last; older leftovers are
        # quarantined rather than silently ignored.
        for path in paths[:-1]:
            self._quarantine(path, stage, "superseded duplicate snapshot",
                             lineage)
        path = paths[-1]
        with rec.span("ckpt.verify"):
            rec.count("ckpt.verifies")
            reason = None
            envelope = None
            try:
                with open(path) as handle:
                    envelope = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                reason = f"unreadable snapshot: {exc}"
            if reason is None:
                reason = self._verify(stage, envelope)
        if reason is not None:
            self._quarantine(path, stage, reason, lineage)
            rec.count("ckpt.misses")
            return None
        with rec.span("ckpt.load"):
            rec.count("ckpt.loads")
            body = envelope["body"]
            return LoadedSnapshot(
                stage=stage,
                payload=body["payload"],
                scopes=body.get("scopes", {}),
                notes=body.get("notes", {}))

    def _verify(self, stage: str, envelope: object) -> Optional[str]:
        """Reason the envelope is unusable, or None when it checks out."""
        if not isinstance(envelope, dict):
            return "snapshot is not a JSON object"
        if envelope.get("format_version") != CKPT_FORMAT_VERSION:
            return (f"schema version "
                    f"{envelope.get('format_version')!r} != "
                    f"{CKPT_FORMAT_VERSION}")
        if envelope.get("stage") != stage:
            return f"stage mismatch: {envelope.get('stage')!r}"
        for key, want in (("config_digest", self.config_digest),
                          ("fault_plan_digest", self.fault_plan_digest),
                          ("options_digest", self.options_digest)):
            if envelope.get(key) != want:
                return (f"{key} mismatch: snapshot "
                        f"{envelope.get(key)!r} != current {want!r}")
        body = envelope.get("body")
        if not isinstance(body, dict) or "payload" not in body:
            return "snapshot body is missing"
        if self.body_digest(body) != envelope.get("payload_sha256"):
            return "payload digest mismatch (corrupt snapshot)"
        return None

    # -- quarantine -------------------------------------------------------

    def _quarantine(self, path: Path, stage: str, reason: str,
                    lineage: Optional[CheckpointLineage]) -> None:
        """Move a bad snapshot aside and record why."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        n = 0
        while target.exists():
            n += 1
            target = self.quarantine_dir / f"{n}-{path.name}"
        try:
            os.replace(path, target)
        except OSError:
            # Losing the post-mortem copy is acceptable; trusting the
            # snapshot is not. Best effort removal instead.
            try:
                path.unlink()
            except OSError:
                pass
            target = path
        self._recorder.count("ckpt.quarantined")
        if lineage is not None:
            lineage.quarantined.append({
                "stage": stage,
                "reason": reason,
                "path": str(target),
            })
