"""Content-addressed stage snapshots with atomic writes and quarantine.

A :class:`CheckpointStore` owns one ``--checkpoint-dir``. Each builder
stage saves its output as a JSON snapshot whose *body* (payload +
fault-scope states + builder notes) is digested with SHA-256; the digest
rides in the envelope and — truncated — in the filename, so a snapshot
is content-addressed and self-verifying. Writes are atomic (temp file in
the same directory, then ``os.replace``) so a crash mid-save can never
leave a half-written snapshot where a resume would trust it.

On load the store verifies, in order: the file parses, the envelope
schema version and stage name match, the config / fault-plan / options
digests match the current build, and the body digest equals the
recorded one. The body rides as the envelope's last member, stored as
the exact bytes the digest covers — so the cheap meta checks (and a
delta build's input-digest staleness check) run off a few hundred
bytes of prefix, and integrity is one hash over the raw body slice,
never a multi-megabyte re-encode. Any verification failure
*quarantines* the snapshot (moves it to ``quarantine/`` and records
the reason in the lineage) and reports a miss, so the builder
recomputes the stage instead of trusting bad data — a wrong map is
strictly worse than a slow one.

Layout under the checkpoint dir::

    snapshots/<stage>.<digest12>.json   one per stage, newest wins
    quarantine/<n>-<original name>      failed verification, kept for
                                        post-mortems

Determinism note: nothing here depends on wall-clock or randomness; the
envelope records ``created_unix`` for humans only, and it is excluded
from the digest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ReproError
from ..obs.recorder import NULL_RECORDER, Recorder

try:  # Optional accelerator for the multi-megabyte snapshot bodies.
    # Safe because snapshot digests are only ever compared against bytes
    # produced by the same store (save records the digest the load
    # verifies), never across environments: a snapshot written by the
    # other encoder at worst re-encodes to different bytes on the legacy
    # verify path and is quarantined — a recompute, not a wrong map.
    import orjson as _orjson

    def _json_loads(data):
        return _orjson.loads(data)

    def _body_encode(body) -> bytes:
        # OPT_NON_STR_KEYS mirrors json.dumps coercing int keys to str;
        # OPT_SERIALIZE_NUMPY covers the numpy scalars stage payloads
        # carry (stdlib json takes them as float/int subclasses).
        return _orjson.dumps(
            body,
            option=_orjson.OPT_NON_STR_KEYS | _orjson.OPT_SERIALIZE_NUMPY)
except ImportError:  # pragma: no cover - depends on the environment
    _json_loads = json.loads

    def _body_encode(body) -> bytes:
        return json.dumps(body, separators=(",", ":")).encode()

#: Snapshot envelope schema version; bump on incompatible layout change.
CKPT_FORMAT_VERSION = 1

#: Hex digits of the body digest carried in the snapshot filename.
_NAME_DIGEST_LEN = 12

#: Byte sequence introducing the body member in a snapshot written by
#: :meth:`CheckpointStore.save`. The body is always the envelope's last
#: member and is stored as the exact bytes its digest covers, so a load
#: can (a) parse just the meta prefix to reject a mismatched or stale
#: snapshot without decoding megabytes of payload, and (b) verify
#: integrity by hashing the raw slice instead of re-encoding the parsed
#: body. Files not written this way (hand-edited, older layouts) fall
#: back to a whole-envelope parse.
_BODY_MARKER = b',"body":'


class CheckpointError(ReproError):
    """A checkpoint operation failed unrecoverably (I/O, bad root)."""


@dataclass
class LoadedSnapshot:
    """A verified snapshot, ready for the builder to apply.

    ``payload`` is still in its serialized (plain-JSON) form — the
    builder decodes it with :func:`repro.core.serialize.
    stage_payload_from_dict`; ``scopes`` / ``notes`` are the absolute
    post-stage fault-scope states and note lists the stage recorded.
    """

    stage: str
    payload: object
    scopes: Dict[str, Dict]
    notes: Dict[str, List[str]]
    #: The snapshot body's SHA-256 — downstream stages chain it into
    #: their own input digests (delta builds).
    digest: str = ""


@dataclass
class CheckpointLineage:
    """What a checkpointed build reused, recomputed and quarantined.

    Feeds the :class:`repro.obs.RunManifest` ``checkpoint`` section;
    ``validate_manifest`` holds ``len(stages_reused) +
    len(stages_recomputed) == stages_total``.
    """

    checkpoint_dir: str
    resumed: bool
    stages_total: int = 0
    stages_reused: List[str] = field(default_factory=list)
    stages_recomputed: List[str] = field(default_factory=list)
    quarantined: List[Dict[str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the manifest section verbatim)."""
        return dataclasses.asdict(self)


class CheckpointStore:
    """Atomic, verified stage snapshots under one checkpoint directory.

    The three digests pin snapshot compatibility: a snapshot satisfies a
    resume only if the scenario config, the fault plan (crash schedule
    excluded — see :func:`repro.obs.manifest.fault_plan_digest`) and the
    builder options all match the run that wrote it.
    """

    def __init__(self, root, *, config_digest: str,
                 fault_plan_digest: str, options_digest: str,
                 recorder: Optional[Recorder] = None) -> None:
        self.root = Path(root)
        self.snapshot_dir = self.root / "snapshots"
        self.quarantine_dir = self.root / "quarantine"
        self.config_digest = config_digest
        self.fault_plan_digest = fault_plan_digest
        self.options_digest = options_digest
        #: Body digest of the most recent :meth:`save` (delta chaining).
        self.last_saved_digest: Optional[str] = None
        self._recorder = recorder or NULL_RECORDER
        try:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint dir {self.root}: {exc}") \
                from None

    # -- digests ----------------------------------------------------------

    @staticmethod
    def _body_bytes(body: Dict[str, object]) -> bytes:
        # Compact, order-preserving: dict insertion order is meaningful
        # (see repro.core.serialize) so the body is NOT key-sorted. The
        # digest therefore covers the exact order a resume will see.
        return _body_encode(body)

    @classmethod
    def body_digest(cls, body: Dict[str, object]) -> str:
        """SHA-256 hex digest of a snapshot body."""
        return hashlib.sha256(cls._body_bytes(body)).hexdigest()

    # -- paths ------------------------------------------------------------

    def snapshot_paths(self, stage: str) -> List[Path]:
        """Existing snapshot files for a stage (normally zero or one)."""
        return sorted(self.snapshot_dir.glob(f"{stage}.*.json"))

    # -- save -------------------------------------------------------------

    def save(self, stage: str, payload: object,
             scopes: Dict[str, Dict],
             notes: Dict[str, List[str]],
             input_digest: Optional[str] = None) -> Path:
        """Atomically persist one stage's snapshot; returns its path.

        Any older snapshot of the same stage is removed after the new
        one is durably in place, so a reader never sees zero snapshots
        where one existed. ``input_digest`` (when the builder computed
        one) records what the stage's inputs hashed to at save time;
        delta builds compare it on load. The saved body's digest is
        exposed as :attr:`last_saved_digest`.
        """
        rec = self._recorder
        with rec.span("ckpt.save"):
            body = {"payload": payload, "scopes": scopes, "notes": notes}
            body_bytes = self._body_bytes(body)
            digest = hashlib.sha256(body_bytes).hexdigest()
            self.last_saved_digest = digest
            meta = {
                "format_version": CKPT_FORMAT_VERSION,
                "stage": stage,
                "config_digest": self.config_digest,
                "fault_plan_digest": self.fault_plan_digest,
                "options_digest": self.options_digest,
                "payload_sha256": digest,
                "created_unix": time.time(),
            }
            if input_digest is not None:
                meta["input_digest"] = input_digest
            final = self.snapshot_dir / (
                f"{stage}.{digest[:_NAME_DIGEST_LEN]}.json")
            tmp = self.snapshot_dir / f".{final.name}.tmp"
            try:
                # Snapshots are megabytes; the body is encoded exactly
                # once (the same bytes the digest covers) and spliced
                # into the envelope as its *last* member, so a load can
                # verify and stale-check the small meta prefix without
                # decoding the body at all. Compact on purpose — the
                # pretty-printed incremental dump this replaces cost
                # ~20x the wall time and a third more disk.
                meta_bytes = json.dumps(
                    meta, separators=(",", ":")).encode()
                with open(tmp, "wb") as handle:
                    handle.write(meta_bytes[:-1])
                    handle.write(_BODY_MARKER)
                    handle.write(body_bytes)
                    handle.write(b"}\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, final)
            except OSError as exc:
                raise CheckpointError(
                    f"cannot write snapshot for stage {stage!r}: {exc}") \
                    from None
            for stale in self.snapshot_paths(stage):
                if stale != final:
                    stale.unlink(missing_ok=True)
            rec.count("ckpt.saves")
        return final

    # -- load -------------------------------------------------------------

    def load(self, stage: str,
             lineage: Optional[CheckpointLineage] = None,
             input_digest: Optional[str] = None
             ) -> Optional[LoadedSnapshot]:
        """Verified snapshot for a stage, or None (miss / quarantined).

        A missing snapshot is a plain miss. A snapshot that fails
        verification is moved to ``quarantine/`` (reason recorded on
        ``lineage``) and also reported as a miss, so the caller
        recomputes.

        With ``input_digest`` (delta builds) a verified snapshot is
        additionally required to carry the same recorded input digest.
        A mismatch — or a snapshot written before input digests existed
        — is *stale*, not corrupt: it is left in place (the recompute
        will overwrite it) and reported as a miss.
        """
        rec = self._recorder
        paths = self.snapshot_paths(stage)
        if not paths:
            rec.count("ckpt.misses")
            return None
        # Newest (and normally only) candidate last; older leftovers are
        # quarantined rather than silently ignored.
        for path in paths[:-1]:
            self._quarantine(path, stage, "superseded duplicate snapshot",
                             lineage)
        path = paths[-1]
        with rec.span("ckpt.verify"):
            rec.count("ckpt.verifies")
            reason, stale, body = self._read_verified(
                path, stage, input_digest)
        if reason is not None:
            self._quarantine(path, stage, reason, lineage)
            rec.count("ckpt.misses")
            return None
        if stale:
            rec.count("ckpt.stale")
            rec.count("ckpt.misses")
            return None
        digest, body_obj = body
        with rec.span("ckpt.load"):
            rec.count("ckpt.loads")
            return LoadedSnapshot(
                stage=stage,
                payload=body_obj["payload"],
                scopes=body_obj.get("scopes", {}),
                notes=body_obj.get("notes", {}),
                digest=digest)

    def _read_verified(self, path: Path, stage: str,
                       input_digest: Optional[str]):
        """Read + verify one snapshot file.

        Returns ``(quarantine_reason, is_stale, (digest, body))`` with
        exactly one of the three "set": a reason string (quarantine),
        ``is_stale`` True (input-digest mismatch — leave in place), or
        the verified body. Snapshots written by :meth:`save` take a
        fast path: the meta prefix (everything before ``_BODY_MARKER``)
        is parsed alone, so compatibility and staleness are decided
        before the megabytes of body are ever decoded, and integrity is
        a hash of the raw body slice — the exact bytes :meth:`save`
        digested. Anything else (hand-edited, foreign layout) is parsed
        whole and its body digest recomputed from a re-encode.
        """
        try:
            raw = path.read_bytes()
        except OSError as exc:
            return f"unreadable snapshot: {exc}", False, None

        marker = raw.find(_BODY_MARKER)
        trimmed = raw.rstrip()
        if marker != -1 and trimmed.endswith(b"}"):
            try:
                meta = _json_loads(raw[:marker] + b"}")
            except ValueError as exc:
                return f"unreadable snapshot: {exc}", False, None
            reason = self._verify_meta(stage, meta)
            if reason is not None:
                return reason, False, None
            if (input_digest is not None
                    and meta.get("input_digest") != input_digest):
                return None, True, None
            body_bytes = trimmed[marker + len(_BODY_MARKER):-1]
            digest = hashlib.sha256(body_bytes).hexdigest()
            if digest != meta.get("payload_sha256"):
                return ("payload digest mismatch (corrupt snapshot)",
                        False, None)
            try:
                body = _json_loads(body_bytes)
            except ValueError as exc:
                return f"unreadable snapshot body: {exc}", False, None
            if not isinstance(body, dict) or "payload" not in body:
                return "snapshot body is missing", False, None
            return None, False, (digest, body)

        # Foreign layout: whole-envelope parse, body digest re-encoded.
        try:
            envelope = _json_loads(raw)
        except ValueError as exc:
            return f"unreadable snapshot: {exc}", False, None
        if not isinstance(envelope, dict):
            return "snapshot is not a JSON object", False, None
        reason = self._verify_meta(stage, envelope)
        if reason is not None:
            return reason, False, None
        body = envelope.get("body")
        if not isinstance(body, dict) or "payload" not in body:
            return "snapshot body is missing", False, None
        if self.body_digest(body) != envelope.get("payload_sha256"):
            return ("payload digest mismatch (corrupt snapshot)",
                    False, None)
        if (input_digest is not None
                and envelope.get("input_digest") != input_digest):
            return None, True, None
        return None, False, (envelope["payload_sha256"], body)

    def _verify_meta(self, stage: str, meta: object) -> Optional[str]:
        """Reason the envelope meta is unusable, or None if compatible."""
        if not isinstance(meta, dict):
            return "snapshot is not a JSON object"
        if meta.get("format_version") != CKPT_FORMAT_VERSION:
            return (f"schema version "
                    f"{meta.get('format_version')!r} != "
                    f"{CKPT_FORMAT_VERSION}")
        if meta.get("stage") != stage:
            return f"stage mismatch: {meta.get('stage')!r}"
        for key, want in (("config_digest", self.config_digest),
                          ("fault_plan_digest", self.fault_plan_digest),
                          ("options_digest", self.options_digest)):
            if meta.get(key) != want:
                return (f"{key} mismatch: snapshot "
                        f"{meta.get(key)!r} != current {want!r}")
        return None

    # -- quarantine -------------------------------------------------------

    def _quarantine(self, path: Path, stage: str, reason: str,
                    lineage: Optional[CheckpointLineage]) -> None:
        """Move a bad snapshot aside and record why."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        n = 0
        while target.exists():
            n += 1
            target = self.quarantine_dir / f"{n}-{path.name}"
        try:
            os.replace(path, target)
        except OSError:
            # Losing the post-mortem copy is acceptable; trusting the
            # snapshot is not. Best effort removal instead.
            try:
                path.unlink()
            except OSError:
                pass
            target = path
        self._recorder.count("ckpt.quarantined")
        if lineage is not None:
            lineage.quarantined.append({
                "stage": stage,
                "reason": reason,
                "path": str(target),
            })
