"""Route collectors: the *public* view of the AS topology.

Public BGP feeds (RouteViews / RIPE RIS style) see paths through the lens
of their vantage ASes — mostly transit providers and research networks.
This systematically hides peering links low in the hierarchy: a peering
link (a, b) only appears on a collector path if some vantage point sits
inside the customer cone of ``a`` or ``b`` (the announcement must climb
from one cone, cross the link, and descend into the other — and the
vantage must be on that path). Hypergiant-to-eyeball peering links, whose
cones contain no vantage points, are therefore invisible — the paper's
§3.3.1 motivation ("available vantage points cannot uncover most peering
links for large content providers [4, 48, 63]"; the 2012 IXP paper found
>90% of peerings missing from public topologies).

``build_public_view`` derives the collector-visible topology from the
actual one using exactly that cone rule (plus a small sampling loss on
c2p links — collectors miss some backup transit links too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from ..errors import ConfigError
from .ases import ASRegistry, ASType
from .relationships import ASGraph, Relationship

# Probability a c2p link appears in the public view (transit links are
# well announced; a few backup links never carry best paths).
C2P_VISIBILITY = 0.96
# Probability a peer link satisfying the cone rule is actually captured
# (path selection does not always cross it at a vantage).
P2P_CAPTURE = 0.90


@dataclass
class PublicTopologyView:
    """What a researcher can download: topology + vantage points."""

    graph: ASGraph                       # collector-visible AS graph
    vantage_asns: Tuple[int, ...]        # ASes feeding the collectors
    visible_links: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)

    def missing_links(self, actual: ASGraph) -> FrozenSet[Tuple[int, int]]:
        return actual.link_set() - self.graph.link_set()

    def visibility_of_links(self, links: Sequence[Tuple[int, int]]) -> float:
        """Fraction of the given (unordered) links present in the view."""
        if not links:
            raise ConfigError("no links given")
        present = self.graph.link_set()
        hits = sum(1 for a, b in links if (min(a, b), max(a, b)) in present)
        return hits / len(links)


def pick_vantage_asns(registry: ASRegistry, rng: np.random.Generator,
                      count: int = 30) -> List[int]:
    """Choose collector-feeding ASes: transit-heavy, plus research nets.

    Mirrors the real collector ecosystem: big transit networks and NRENs
    feed collectors; hypergiants and most eyeballs do not.
    """
    transits = [a.asn for a in registry
                if a.as_type in (ASType.TIER1, ASType.TRANSIT)]
    research = [a.asn for a in registry.of_type(ASType.RESEARCH)]
    n_transit = min(len(transits), max(1, int(count * 0.7)))
    n_research = min(len(research), count - n_transit)
    chosen: List[int] = []
    if n_transit:
        idx = rng.choice(len(transits), size=n_transit, replace=False)
        chosen.extend(sorted(transits[int(i)] for i in idx))
    if n_research:
        idx = rng.choice(len(research), size=n_research, replace=False)
        chosen.extend(sorted(research[int(i)] for i in idx))
    return chosen


def build_public_view(actual: ASGraph, registry: ASRegistry,
                      rng: np.random.Generator,
                      vantage_count: int = 30) -> PublicTopologyView:
    """Derive the collector-visible topology (see module docstring)."""
    vantages = pick_vantage_asns(registry, rng, vantage_count)
    vantage_set = set(vantages)

    # An AS's customer cone contains a vantage point iff the AS is
    # reachable from some vantage by climbing provider links.
    cone_has_vp: Set[int] = set()
    frontier = list(vantage_set)
    cone_has_vp.update(frontier)
    seen = set(frontier)
    while frontier:
        nxt: List[int] = []
        for asn in frontier:
            for provider in actual.providers_of(asn):
                if provider not in seen:
                    seen.add(provider)
                    nxt.append(provider)
        cone_has_vp.update(nxt)
        frontier = nxt

    public = ASGraph()
    for asn in actual.asns:
        public.add_as(asn)
    visible: Set[Tuple[int, int]] = set()
    for a, b, rel in sorted(actual.edges()):
        if rel is Relationship.C2P:
            if rng.random() < C2P_VISIBILITY:
                public.add_c2p(a, b)
                visible.add((min(a, b), max(a, b)))
        else:
            if (a in cone_has_vp or b in cone_has_vp) and \
                    rng.random() < P2P_CAPTURE:
                public.add_p2p(a, b)
                visible.add((min(a, b), max(a, b)))
    return PublicTopologyView(
        graph=public, vantage_asns=tuple(vantages),
        visible_links=frozenset(visible))
