"""Geography: countries, cities, distances and timezones.

The atlas is a fixed, embedded catalogue of real-world countries and cities.
It gives the simulation plausible geography — user populations concentrated
in populous countries, serving sites in major metros, great-circle distances
for latency and anycast-optimality studies — without any external data
dependency.

Coordinates are approximate city centres; ``utc_offset`` is the standard
(non-DST) offset used to drive diurnal activity curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

EARTH_RADIUS_KM = 6371.0


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two WGS84 points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def haversine_km_matrix(lats1: np.ndarray, lons1: np.ndarray,
                        lats2: np.ndarray, lons2: np.ndarray) -> np.ndarray:
    """Vectorised pairwise distances: result[i, j] = distance between
    point i of the first set and point j of the second set (km)."""
    phi1 = np.radians(np.asarray(lats1, dtype=float))[:, None]
    phi2 = np.radians(np.asarray(lats2, dtype=float))[None, :]
    dphi = phi2 - phi1
    dlmb = (np.radians(np.asarray(lons2, dtype=float))[None, :]
            - np.radians(np.asarray(lons1, dtype=float))[:, None])
    a = (np.sin(dphi / 2) ** 2
         + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2) ** 2)
    return 2 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


@dataclass(frozen=True)
class City:
    """A city where ASes, facilities, serving sites or users may be placed."""

    name: str
    country_code: str
    lat: float
    lon: float
    utc_offset: float

    def distance_km(self, other: "City") -> float:
        """Great-circle distance to another city."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


@dataclass(frozen=True)
class Country:
    """A country with an Internet-user weight used to size populations.

    ``internet_users_m`` is an approximate number of Internet users in
    millions; it only sets *relative* country sizes in the simulation.
    ``region`` groups countries into continental regions used when building
    the transit hierarchy.
    """

    code: str
    name: str
    region: str
    internet_users_m: float
    cities: Tuple[City, ...] = field(default=())

    @property
    def capital(self) -> City:
        """The first (largest) city of the country."""
        return self.cities[0]


def _mk(code: str, name: str, region: str, users_m: float,
        cities: Sequence[Tuple[str, float, float, float]]) -> Country:
    return Country(
        code=code,
        name=name,
        region=region,
        internet_users_m=users_m,
        cities=tuple(City(n, code, lat, lon, off) for n, lat, lon, off in cities),
    )


# Approximate Internet-user counts (millions, circa 2021) and city centres.
_COUNTRIES: Tuple[Country, ...] = (
    _mk("US", "United States", "NA", 300.0, [
        ("New York", 40.71, -74.01, -5), ("Los Angeles", 34.05, -118.24, -8),
        ("Chicago", 41.88, -87.63, -6), ("Dallas", 32.78, -96.80, -6),
        ("Seattle", 47.61, -122.33, -8), ("Miami", 25.76, -80.19, -5),
        ("Ashburn", 39.04, -77.49, -5)]),
    _mk("CA", "Canada", "NA", 35.0, [
        ("Toronto", 43.65, -79.38, -5), ("Vancouver", 49.28, -123.12, -8),
        ("Montreal", 45.50, -73.57, -5)]),
    _mk("MX", "Mexico", "NA", 92.0, [
        ("Mexico City", 19.43, -99.13, -6), ("Guadalajara", 20.66, -103.35, -6)]),
    _mk("BR", "Brazil", "SA", 160.0, [
        ("Sao Paulo", -23.55, -46.63, -3), ("Rio de Janeiro", -22.91, -43.17, -3),
        ("Fortaleza", -3.73, -38.52, -3)]),
    _mk("AR", "Argentina", "SA", 36.0, [
        ("Buenos Aires", -34.60, -58.38, -3)]),
    _mk("CL", "Chile", "SA", 15.0, [
        ("Santiago", -33.45, -70.67, -4)]),
    _mk("CO", "Colombia", "SA", 35.0, [
        ("Bogota", 4.71, -74.07, -5)]),
    _mk("GB", "United Kingdom", "EU", 65.0, [
        ("London", 51.51, -0.13, 0), ("Manchester", 53.48, -2.24, 0)]),
    _mk("FR", "France", "EU", 60.0, [
        ("Paris", 48.86, 2.35, 1), ("Marseille", 43.30, 5.37, 1),
        ("Lyon", 45.76, 4.84, 1)]),
    _mk("DE", "Germany", "EU", 78.0, [
        ("Frankfurt", 50.11, 8.68, 1), ("Berlin", 52.52, 13.41, 1),
        ("Munich", 48.14, 11.58, 1)]),
    _mk("NL", "Netherlands", "EU", 16.0, [
        ("Amsterdam", 52.37, 4.90, 1)]),
    _mk("ES", "Spain", "EU", 43.0, [
        ("Madrid", 40.42, -3.70, 1), ("Barcelona", 41.39, 2.17, 1)]),
    _mk("IT", "Italy", "EU", 51.0, [
        ("Milan", 45.46, 9.19, 1), ("Rome", 41.90, 12.50, 1)]),
    _mk("PL", "Poland", "EU", 33.0, [
        ("Warsaw", 52.23, 21.01, 1)]),
    _mk("SE", "Sweden", "EU", 10.0, [
        ("Stockholm", 59.33, 18.06, 1)]),
    _mk("RU", "Russia", "EU", 124.0, [
        ("Moscow", 55.76, 37.62, 3), ("Saint Petersburg", 59.93, 30.34, 3)]),
    _mk("TR", "Turkey", "EU", 70.0, [
        ("Istanbul", 41.01, 28.98, 3)]),
    _mk("EG", "Egypt", "AF", 57.0, [
        ("Cairo", 30.04, 31.24, 2)]),
    _mk("NG", "Nigeria", "AF", 109.0, [
        ("Lagos", 6.52, 3.38, 1)]),
    _mk("ZA", "South Africa", "AF", 38.0, [
        ("Johannesburg", -26.20, 28.05, 2), ("Cape Town", -33.92, 18.42, 2)]),
    _mk("KE", "Kenya", "AF", 21.0, [
        ("Nairobi", -1.29, 36.82, 3)]),
    _mk("SA", "Saudi Arabia", "ME", 31.0, [
        ("Riyadh", 24.71, 46.68, 3)]),
    _mk("AE", "United Arab Emirates", "ME", 9.0, [
        ("Dubai", 25.20, 55.27, 4)]),
    _mk("IL", "Israel", "ME", 8.0, [
        ("Tel Aviv", 32.09, 34.78, 2)]),
    _mk("IN", "India", "AS", 624.0, [
        ("Mumbai", 19.08, 72.88, 5.5), ("Delhi", 28.70, 77.10, 5.5),
        ("Chennai", 13.08, 80.27, 5.5)]),
    _mk("CN", "China", "AS", 989.0, [
        ("Beijing", 39.90, 116.41, 8), ("Shanghai", 31.23, 121.47, 8),
        ("Guangzhou", 23.13, 113.26, 8)]),
    _mk("JP", "Japan", "AS", 118.0, [
        ("Tokyo", 35.68, 139.69, 9), ("Osaka", 34.69, 135.50, 9)]),
    _mk("KR", "South Korea", "AS", 50.0, [
        ("Seoul", 37.57, 126.98, 9)]),
    _mk("TW", "Taiwan", "AS", 21.0, [
        ("Taipei", 25.03, 121.57, 8)]),
    _mk("SG", "Singapore", "AS", 5.3, [
        ("Singapore", 1.35, 103.82, 8)]),
    _mk("ID", "Indonesia", "AS", 196.0, [
        ("Jakarta", -6.21, 106.85, 7)]),
    _mk("TH", "Thailand", "AS", 54.0, [
        ("Bangkok", 13.76, 100.50, 7)]),
    _mk("VN", "Vietnam", "AS", 69.0, [
        ("Hanoi", 21.03, 105.85, 7)]),
    _mk("PH", "Philippines", "AS", 74.0, [
        ("Manila", 14.60, 120.98, 8)]),
    _mk("PK", "Pakistan", "AS", 100.0, [
        ("Karachi", 24.86, 67.01, 5)]),
    _mk("BD", "Bangladesh", "AS", 47.0, [
        ("Dhaka", 23.81, 90.41, 6)]),
    _mk("AU", "Australia", "OC", 22.0, [
        ("Sydney", -33.87, 151.21, 10), ("Melbourne", -37.81, 144.96, 10)]),
    _mk("NZ", "New Zealand", "OC", 4.4, [
        ("Auckland", -36.85, 174.76, 12)]),
)


class WorldAtlas:
    """Lookup structure over the embedded country/city catalogue.

    Scenarios may restrict the atlas to a subset of countries (small test
    worlds) via :meth:`subset`.
    """

    def __init__(self, countries: Iterable[Country]):
        self._countries: Dict[str, Country] = {}
        self._cities: Dict[Tuple[str, str], City] = {}
        for country in countries:
            if country.code in self._countries:
                raise ConfigError(f"duplicate country code {country.code!r}")
            if not country.cities:
                raise ConfigError(f"country {country.code!r} has no cities")
            self._countries[country.code] = country
            for city in country.cities:
                self._cities[(country.code, city.name)] = city

    @classmethod
    def default(cls) -> "WorldAtlas":
        """The full embedded atlas (38 countries, ~70 cities)."""
        return cls(_COUNTRIES)

    def subset(self, codes: Sequence[str]) -> "WorldAtlas":
        """A smaller atlas containing only ``codes`` (order preserved)."""
        missing = [c for c in codes if c not in self._countries]
        if missing:
            raise ConfigError(f"unknown country codes: {missing}")
        return WorldAtlas(self._countries[c] for c in codes)

    @property
    def countries(self) -> List[Country]:
        return list(self._countries.values())

    @property
    def country_codes(self) -> List[str]:
        return list(self._countries.keys())

    def country(self, code: str) -> Country:
        try:
            return self._countries[code]
        except KeyError:
            raise ConfigError(f"unknown country code {code!r}") from None

    def city(self, country_code: str, name: str) -> City:
        try:
            return self._cities[(country_code, name)]
        except KeyError:
            raise ConfigError(f"unknown city {name!r} in {country_code!r}") from None

    @property
    def cities(self) -> List[City]:
        return list(self._cities.values())

    def cities_in_region(self, region: str) -> List[City]:
        return [city for country in self.countries if country.region == region
                for city in country.cities]

    @property
    def regions(self) -> List[str]:
        seen: Dict[str, None] = {}
        for country in self.countries:
            seen.setdefault(country.region, None)
        return list(seen.keys())

    def total_internet_users_m(self) -> float:
        return sum(c.internet_users_m for c in self.countries)

    def nearest_city(self, lat: float, lon: float,
                     candidates: Optional[Sequence[City]] = None) -> City:
        """The candidate city closest to the given point (default: all)."""
        pool = list(candidates) if candidates is not None else self.cities
        if not pool:
            raise ConfigError("no candidate cities")
        return min(pool, key=lambda c: haversine_km(lat, lon, c.lat, c.lon))
