"""Prefix table: the /24-granularity address space of the simulated Internet.

The paper's measurement techniques operate on /24 prefixes ("iterating over
all routable prefixes", §3.1.2), so the /24 is our atomic addressing unit.
Each prefix records its originating AS, its kind (access, server, infra,
scanner, hosting) and the city where its hosts sit.

The table is built incrementally while the scenario is generated, then
frozen; after freezing, numpy column views enable vectorised analysis over
tens of thousands of prefixes.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import TopologyError
from .geography import City


class PrefixKind(enum.IntEnum):
    """What a /24 is used for (ground truth; not directly observable)."""

    ACCESS = 0        # end-user access network (has subscribers)
    SERVER_ONNET = 1  # hypergiant serving prefix inside its own AS
    SERVER_OFFNET = 2 # hypergiant cache prefix inside another AS
    HOSTING = 3       # third-party hosting/server space in stub ASes
    INFRA = 4         # router interconnects, loopbacks
    SCANNER = 5       # bots/automation: DNS-active but not human users


class PrefixTable:
    """Append-then-freeze registry of every routable /24."""

    def __init__(self) -> None:
        self._asn: List[int] = []
        self._kind: List[int] = []
        self._city_index: List[int] = []
        self._cities: List[City] = []
        self._city_ids: Dict[City, int] = {}
        self._by_as: Dict[int, List[int]] = {}
        self._frozen = False
        self._asn_arr: Optional[np.ndarray] = None
        self._kind_arr: Optional[np.ndarray] = None
        self._city_arr: Optional[np.ndarray] = None

    # -- construction -------------------------------------------------------

    def add(self, asn: int, kind: PrefixKind, city: City) -> int:
        """Allocate a new /24; returns its prefix id."""
        if self._frozen:
            raise TopologyError("prefix table is frozen")
        pid = len(self._asn)
        self._asn.append(asn)
        self._kind.append(int(kind))
        city_id = self._city_ids.get(city)
        if city_id is None:
            city_id = len(self._cities)
            self._cities.append(city)
            self._city_ids[city] = city_id
        self._city_index.append(city_id)
        self._by_as.setdefault(asn, []).append(pid)
        return pid

    def add_many(self, asn: int, kind: PrefixKind, city: City,
                 count: int) -> List[int]:
        """Allocate ``count`` /24s with identical attributes."""
        return [self.add(asn, kind, city) for __ in range(count)]

    def freeze(self) -> None:
        """Seal the table and materialise numpy column views."""
        self._frozen = True
        self._asn_arr = np.asarray(self._asn, dtype=np.int64)
        self._kind_arr = np.asarray(self._kind, dtype=np.int8)
        self._city_arr = np.asarray(self._city_index, dtype=np.int32)

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- scalar accessors ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._asn)

    def _check(self, pid: int) -> None:
        if not 0 <= pid < len(self._asn):
            raise TopologyError(f"unknown prefix id {pid}")

    def asn_of(self, pid: int) -> int:
        self._check(pid)
        return self._asn[pid]

    def kind_of(self, pid: int) -> PrefixKind:
        self._check(pid)
        return PrefixKind(self._kind[pid])

    def city_of(self, pid: int) -> City:
        self._check(pid)
        return self._cities[self._city_index[pid]]

    def address_of(self, pid: int) -> str:
        """Synthetic dotted-quad rendering, e.g. ``10.3.17.0/24``."""
        self._check(pid)
        return f"{10 + (pid >> 16)}.{(pid >> 8) & 255}.{pid & 255}.0/24"

    # -- collection accessors -------------------------------------------------------

    def prefixes_of_as(self, asn: int) -> List[int]:
        return list(self._by_as.get(asn, []))

    def ids(self) -> Iterator[int]:
        return iter(range(len(self._asn)))

    def of_kind(self, *kinds: PrefixKind) -> np.ndarray:
        """Prefix ids matching any of ``kinds`` (requires frozen table)."""
        arr = self.kind_array
        mask = np.isin(arr, np.asarray([int(k) for k in kinds], dtype=np.int8))
        return np.flatnonzero(mask)

    def ases_with_prefixes(self) -> List[int]:
        return list(self._by_as.keys())

    # -- numpy views -----------------------------------------------------------------

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise TopologyError("freeze() the prefix table first")

    @property
    def asn_array(self) -> np.ndarray:
        self._require_frozen()
        assert self._asn_arr is not None
        return self._asn_arr

    @property
    def kind_array(self) -> np.ndarray:
        self._require_frozen()
        assert self._kind_arr is not None
        return self._kind_arr

    @property
    def city_index_array(self) -> np.ndarray:
        self._require_frozen()
        assert self._city_arr is not None
        return self._city_arr

    @property
    def cities(self) -> Sequence[City]:
        """Distinct cities referenced by the table, index-aligned with
        :attr:`city_index_array`."""
        return tuple(self._cities)

    def group_by_as(self, values: np.ndarray) -> Dict[int, float]:
        """Sum a per-prefix vector into a per-AS dict."""
        self._require_frozen()
        if len(values) != len(self):
            raise TopologyError("value vector length mismatch")
        totals: Dict[int, float] = {}
        if len(self) == 0:
            return totals
        asns = self.asn_array
        order = np.argsort(asns, kind="stable")
        sorted_asns = asns[order]
        sorted_vals = np.asarray(values, dtype=float)[order]
        boundaries = np.flatnonzero(np.diff(sorted_asns)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_asns)]))
        for start, end in zip(starts, ends):
            totals[int(sorted_asns[start])] = float(sorted_vals[start:end].sum())
        return totals
