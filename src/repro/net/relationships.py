"""AS business relationships and the annotated AS-level graph.

The graph stores customer-to-provider (``C2P``) and settlement-free peering
(``P2P``) edges, the two relationship kinds that Gao-Rexford routing policy
distinguishes. It is the single source of truth for the *actual* topology;
the public view observed at route collectors is derived from it in
:mod:`repro.net.collectors` and is incomplete by construction (§3.3.1).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..errors import TopologyError


class Relationship(enum.Enum):
    """Business relationship between two adjacent ASes."""

    C2P = "c2p"   # stored as (customer, provider)
    P2P = "p2p"   # symmetric


class ASGraph:
    """AS-level graph annotated with business relationships.

    Edges are stored per-AS in three role sets (providers, customers, peers)
    for O(1) policy checks during route propagation. The graph is
    deliberately mutable — topology generation adds links incrementally, and
    experiments hide/reveal links (e.g. holding out peering links for the
    link-recommendation evaluation of §3.3.3).
    """

    def __init__(self) -> None:
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Mutation counter: bumps whenever the topology changes.

        Consumers that cache graph-derived structures (routing indices,
        route tables) key them on the epoch, so stale caches become
        unreachable automatically after any mutation.
        """
        return self._epoch

    # -- node management -------------------------------------------------

    def add_as(self, asn: int) -> None:
        """Register an AS with no links (idempotent)."""
        if asn in self._providers:
            return
        self._providers[asn] = set()
        self._customers[asn] = set()
        self._peers[asn] = set()
        self._epoch += 1

    def __contains__(self, asn: int) -> bool:
        return asn in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    @property
    def asns(self) -> List[int]:
        return list(self._providers.keys())

    def _require(self, asn: int) -> None:
        if asn not in self._providers:
            raise TopologyError(f"ASN {asn} not in graph")

    # -- edge management --------------------------------------------------

    def add_c2p(self, customer: int, provider: int) -> None:
        """Add a customer-to-provider link."""
        self._check_new_edge(customer, provider)
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)
        self._epoch += 1

    def add_p2p(self, a: int, b: int) -> None:
        """Add a settlement-free peering link."""
        self._check_new_edge(a, b)
        self._peers[a].add(b)
        self._peers[b].add(a)
        self._epoch += 1

    def _check_new_edge(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError(f"self-link on ASN {a}")
        self._require(a)
        self._require(b)
        if self.relationship_of(a, b) is not None:
            raise TopologyError(f"link {a}-{b} already exists")

    def remove_link(self, a: int, b: int) -> Relationship:
        """Remove the link between ``a`` and ``b``; return what it was."""
        rel = self.relationship_of(a, b)
        if rel is None:
            raise TopologyError(f"no link {a}-{b}")
        if rel is Relationship.P2P:
            self._peers[a].discard(b)
            self._peers[b].discard(a)
        elif b in self._providers[a]:
            self._providers[a].discard(b)
            self._customers[b].discard(a)
        else:
            self._providers[b].discard(a)
            self._customers[a].discard(b)
        self._epoch += 1
        return rel

    # -- queries ----------------------------------------------------------

    def providers_of(self, asn: int) -> Set[int]:
        self._require(asn)
        return set(self._providers[asn])

    def customers_of(self, asn: int) -> Set[int]:
        self._require(asn)
        return set(self._customers[asn])

    def peers_of(self, asn: int) -> Set[int]:
        self._require(asn)
        return set(self._peers[asn])

    def adjacency(self) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]],
                                 Dict[int, Set[int]]]:
        """Zero-copy bulk view ``(providers, customers, peers)`` by ASN.

        The returned dicts are the graph's internal state — treat them as
        strictly read-only. Intended for whole-graph consumers (the dense
        routing index) that would otherwise pay a per-AS set copy.
        """
        return self._providers, self._customers, self._peers

    def neighbors_of(self, asn: int) -> Set[int]:
        self._require(asn)
        return self._providers[asn] | self._customers[asn] | self._peers[asn]

    def degree(self, asn: int) -> int:
        return len(self.neighbors_of(asn))

    def relationship_of(self, a: int, b: int) -> "Relationship | None":
        """Relationship on the ``a``-``b`` link, or None if not adjacent.

        For ``C2P`` the orientation is *not* encoded in the return value;
        use :meth:`is_provider_of` when orientation matters.
        """
        self._require(a)
        self._require(b)
        if b in self._peers[a]:
            return Relationship.P2P
        if b in self._providers[a] or b in self._customers[a]:
            return Relationship.C2P
        return None

    def is_provider_of(self, provider: int, customer: int) -> bool:
        self._require(provider)
        return customer in self._customers[provider]

    def edges(self) -> Iterator[Tuple[int, int, Relationship]]:
        """Yield every link once.

        ``C2P`` edges are yielded as ``(customer, provider, C2P)``;
        ``P2P`` edges as ``(min_asn, max_asn, P2P)``.
        """
        for customer, providers in self._providers.items():
            for provider in providers:
                yield (customer, provider, Relationship.C2P)
        for a, peers in self._peers.items():
            for b in peers:
                if a < b:
                    yield (a, b, Relationship.P2P)

    def edge_count(self) -> int:
        c2p = sum(len(p) for p in self._providers.values())
        p2p = sum(len(p) for p in self._peers.values()) // 2
        return c2p + p2p

    # -- derived structures -------------------------------------------------

    def customer_cone(self, asn: int) -> Set[int]:
        """All ASes reachable from ``asn`` by walking provider→customer
        links, including ``asn`` itself (CAIDA-style customer cone)."""
        self._require(asn)
        cone: Set[int] = {asn}
        frontier = [asn]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for customer in self._customers[node]:
                    if customer not in cone:
                        cone.add(customer)
                        nxt.append(customer)
            frontier = nxt
        return cone

    def transit_free(self) -> List[int]:
        """ASes with no providers (tier-1-like)."""
        return [asn for asn, providers in self._providers.items() if not providers]

    def copy(self) -> "ASGraph":
        """Deep copy (used to derive public/held-out variants)."""
        dup = ASGraph()
        for asn in self._providers:
            dup.add_as(asn)
        for customer, providers in self._providers.items():
            for provider in providers:
                dup._providers[customer].add(provider)
                dup._customers[provider].add(customer)
        for a, peers in self._peers.items():
            dup._peers[a] = set(peers)
        return dup

    def validate(self) -> None:
        """Check internal consistency; raise :class:`TopologyError` if broken."""
        for asn, providers in self._providers.items():
            for provider in providers:
                if asn not in self._customers.get(provider, set()):
                    raise TopologyError(f"dangling c2p {asn}->{provider}")
            if asn in self._peers[asn]:
                raise TopologyError(f"self peering on {asn}")
        for a, peers in self._peers.items():
            for b in peers:
                if a not in self._peers.get(b, set()):
                    raise TopologyError(f"asymmetric p2p {a}-{b}")
                if b in self._providers[a] or b in self._customers[a]:
                    raise TopologyError(f"link {a}-{b} is both p2p and c2p")

    def link_set(self) -> FrozenSet[Tuple[int, int]]:
        """Unordered adjacency pairs, for set arithmetic on topologies."""
        return frozenset((min(a, b), max(a, b)) for a, b, _ in self.edges())
