"""Internet substrate: geography, ASes, relationships, topology, routing,
prefixes, routers and the public route-collector view."""
