"""Valley-free (Gao-Rexford) route computation over the AS graph.

Routes are computed per destination with the standard three-phase
propagation model:

1. **Customer routes** — the origin's route propagates upward over
   customer→provider links any number of times.
2. **Peer routes** — a route held via a customer (or by the origin) crosses
   at most one peering link.
3. **Provider routes** — after crossing a peer link or turning downhill,
   routes propagate only downward over provider→customer links.

Route selection follows BGP decision logic restricted to the attributes the
model carries: prefer customer over peer over provider routes (local
preference mirrors economics), then shortest AS path, then lowest next-hop
ASN as the deterministic tie-break.

The simulator also supports *anycast* destinations — several origin ASes
announcing the same prefix — by seeding phase 1 with every origin; the
winning origin at each AS is its catchment.

**Implementation.** The kernel runs over a dense integer index of the
graph (one contiguous index per ASN, CSR adjacency as sorted numpy
arrays), propagating parallel per-node arrays (``kind``, ``path_len``,
``next hop/parent``, ``origin``) level-by-level instead of pushing
tuple-carrying heap entries. Because every phase processes path lengths
in increasing order and breaks ties by lowest next-hop ASN, the dense
kernel selects *bit-identical* routes to the tuple-based reference
implementation (kept as :func:`_compute_routes_reference` for the
equivalence tests). Full ``path`` tuples are materialized lazily from
parent pointers only when a caller asks for them; bulk consumers use
:meth:`RouteTable.paths_for` and friends.

Results are cached per (graph epoch, origin set) in a bounded LRU
(:class:`BgpSimulator`); mutating the graph bumps its epoch, which makes
stale cache entries unreachable automatically.
"""

from __future__ import annotations

import enum
import heapq
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)
from weakref import WeakKeyDictionary

import numpy as np

from ..errors import TopologyError
from ..lru import BoundedLru, CacheStats
from ..obs.recorder import resolve_recorder as _resolve_recorder
from .relationships import ASGraph


class RouteKind(enum.Enum):
    """How the best route at an AS was learned (BGP local-pref classes)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


_KIND_NONE = -1
_KINDS = (RouteKind.ORIGIN, RouteKind.CUSTOMER, RouteKind.PEER,
          RouteKind.PROVIDER)


class Route:
    """Best route from one AS toward a destination.

    ``path`` lists ASNs from the route holder to the origin, inclusive:
    ``path[0]`` is the holder, ``path[-1]`` the (anycast) origin reached.

    Routes handed out by :class:`RouteTable` are *lazy*: they carry only a
    pointer into the table's dense arrays, and the ``path`` tuple is
    materialized by walking parent pointers the first time it is read.
    ``holder``/``origin``/``kind``/``as_path_length`` never materialize
    the path.
    """

    __slots__ = ("_path", "_kind", "_table", "_idx")

    def __init__(self, path: Optional[Tuple[int, ...]] = None,
                 kind: Optional[RouteKind] = None, *,
                 _table: "Optional[RouteTable]" = None,
                 _idx: int = -1) -> None:
        if _table is None and (path is None or kind is None):
            raise ValueError("eager Route needs both path and kind")
        self._path = path
        self._kind = kind
        self._table = _table
        self._idx = _idx

    @property
    def path(self) -> Tuple[int, ...]:
        """Full ASN path, holder first (materialized on first access)."""
        if self._path is None:
            self._path = self._table._materialize(self._idx)
        return self._path

    @property
    def kind(self) -> RouteKind:
        """Local-preference class of the route."""
        if self._kind is None:
            self._kind = _KINDS[int(self._table._kind[self._idx])]
        return self._kind

    @property
    def holder(self) -> int:
        """The AS holding this route (``path[0]``)."""
        if self._table is not None:
            return int(self._table._index.asns[self._idx])
        return self._path[0]

    @property
    def origin(self) -> int:
        """The (anycast) origin the route reaches (``path[-1]``)."""
        if self._table is not None:
            return int(self._table._index.asns[
                self._table._origin[self._idx]])
        return self._path[-1]

    @property
    def as_path_length(self) -> int:
        """Number of AS hops (edges) on the path."""
        if self._table is not None:
            return int(self._table._path_len[self._idx])
        return len(self._path) - 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Route):
            return NotImplemented
        return self.path == other.path and self.kind is other.kind

    def __hash__(self) -> int:
        return hash((self.path, self.kind))

    def __repr__(self) -> str:
        return f"Route(path={self.path!r}, kind={self.kind!r})"


# ---------------------------------------------------------------------------
# Dense graph index (cached per ASGraph epoch)
# ---------------------------------------------------------------------------

class _GraphIndex:
    """Dense integer view of one :class:`ASGraph` epoch.

    ASNs are mapped to contiguous indices in ascending ASN order, so
    comparing indices is equivalent to comparing ASNs (the routing
    tie-break). Each relationship class is stored as CSR adjacency with
    neighbor indices sorted ascending.
    """

    __slots__ = ("epoch", "n", "asns", "index_of",
                 "prov_indptr", "prov_indices",
                 "peer_indptr", "peer_indices",
                 "cust_indptr", "cust_indices")

    def __init__(self, graph: ASGraph) -> None:
        providers, customers, peers = graph.adjacency()
        self.epoch = graph.epoch
        asn_list = sorted(providers)
        self.n = len(asn_list)
        self.asns = np.asarray(asn_list, dtype=np.int64)
        self.index_of = {asn: i for i, asn in enumerate(asn_list)}
        self.prov_indptr, self.prov_indices = self._csr(providers, asn_list)
        self.cust_indptr, self.cust_indices = self._csr(customers, asn_list)
        self.peer_indptr, self.peer_indices = self._csr(peers, asn_list)

    def _csr(self, adjacency: Dict[int, Set[int]], asn_list: List[int]
             ) -> Tuple[np.ndarray, np.ndarray]:
        index_of = self.index_of
        indptr = np.zeros(len(asn_list) + 1, dtype=np.int64)
        chunks: List[np.ndarray] = []
        total = 0
        for i, asn in enumerate(asn_list):
            neighbors = adjacency[asn]
            if neighbors:
                row = np.fromiter((index_of[b] for b in neighbors),
                                  dtype=np.int64, count=len(neighbors))
                row.sort()
                chunks.append(row)
                total += row.size
            indptr[i + 1] = total
        indices = (np.concatenate(chunks) if chunks
                   else np.empty(0, dtype=np.int64))
        return indptr, indices


_INDEX_CACHE: "WeakKeyDictionary[ASGraph, _GraphIndex]" = WeakKeyDictionary()


def _graph_index(graph: ASGraph) -> _GraphIndex:
    """The dense index for the graph's current epoch (cached)."""
    index = _INDEX_CACHE.get(graph)
    if index is None or index.epoch != graph.epoch:
        index = _GraphIndex(graph)
        _INDEX_CACHE[graph] = index
    return index


# ---------------------------------------------------------------------------
# Dense three-phase propagation
# ---------------------------------------------------------------------------

def _expand_frontier(indptr: np.ndarray, indices: np.ndarray,
                     frontier: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """All (target, parent) edge endpoints leaving ``frontier`` nodes."""
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    parents = np.repeat(frontier, counts)
    starts = np.repeat(indptr[frontier], counts)
    offsets = np.arange(total, dtype=np.int64) \
        - np.repeat(np.cumsum(counts) - counts, counts)
    return indices[starts + offsets], parents


def _best_per_target(targets: np.ndarray, parents: np.ndarray,
                     lens: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, np.ndarray,
                                Optional[np.ndarray]]:
    """Per target, the candidate with (lowest length,) lowest parent ASN.

    Index order equals ASN order, so selecting the minimal parent index
    reproduces the reference's lowest-next-hop-ASN tie-break exactly.
    """
    if lens is None:
        order = np.lexsort((parents, targets))
    else:
        order = np.lexsort((parents, lens, targets))
    t_sorted = targets[order]
    keep = np.ones(t_sorted.size, dtype=bool)
    keep[1:] = t_sorted[1:] != t_sorted[:-1]
    best_targets = t_sorted[keep]
    best_parents = parents[order][keep]
    best_lens = lens[order][keep] if lens is not None else None
    return best_targets, best_parents, best_lens


def _propagate(index: _GraphIndex, origin_idxs: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run the three valley-free phases over dense per-node arrays.

    Returns ``(kind, path_len, parent, origin)`` arrays of length ``n``;
    ``parent[i]`` is the index of the next hop toward the origin (``-1``
    for origins and unreached nodes), and ``origin[i]`` the index of the
    winning anycast origin. Because each phase assigns routes in strictly
    increasing path-length order and resolves same-length ties by lowest
    parent index (== lowest next-hop ASN), the per-node winners — and the
    paths recovered by walking ``parent`` — are identical to the
    tuple-based reference implementation.
    """
    n = index.n
    kind = np.full(n, _KIND_NONE, dtype=np.int8)
    path_len = np.full(n, -1, dtype=np.int32)
    parent = np.full(n, -1, dtype=np.int64)
    origin = np.full(n, -1, dtype=np.int64)

    kind[origin_idxs] = RouteKind.ORIGIN.value
    path_len[origin_idxs] = 0
    origin[origin_idxs] = origin_idxs

    # Phase 1: customer routes, level-synchronous BFS over c2p links.
    frontier = origin_idxs
    length = 0
    while frontier.size:
        targets, parents = _expand_frontier(
            index.prov_indptr, index.prov_indices, frontier)
        targets, parents, __ = _best_per_target(targets, parents)
        fresh = kind[targets] == _KIND_NONE
        targets, parents = targets[fresh], parents[fresh]
        length += 1
        kind[targets] = RouteKind.CUSTOMER.value
        path_len[targets] = length
        parent[targets] = parents
        origin[targets] = origin[parents]
        frontier = targets

    # Phase 2: peer routes — cross one peering link from any AS holding
    # an origin or customer route. All candidates are materialized at
    # once, so phase-2 routes never chain across two peer links.
    uphill = np.flatnonzero((kind == RouteKind.ORIGIN.value)
                            | (kind == RouteKind.CUSTOMER.value))
    if uphill.size:
        targets, parents = _expand_frontier(
            index.peer_indptr, index.peer_indices, uphill)
        if targets.size:
            lens = path_len[parents].astype(np.int64) + 1
            targets, parents, lens = _best_per_target(targets, parents,
                                                      lens)
            fresh = kind[targets] == _KIND_NONE
            targets, parents, lens = (targets[fresh], parents[fresh],
                                      lens[fresh])
            kind[targets] = RouteKind.PEER.value
            path_len[targets] = lens
            parent[targets] = parents
            origin[targets] = origin[parents]

    # Phase 3: provider routes, BFS downward from every route holder,
    # processed in increasing path-length order so shorter provider
    # routes win before longer ones are considered.
    holders = np.flatnonzero(kind != _KIND_NONE)
    buckets: Dict[int, List[np.ndarray]] = {}
    for level in np.unique(path_len[holders]):
        members = holders[path_len[holders] == level]
        buckets[int(level)] = [members]
    length = 0
    max_length = max(buckets) if buckets else -1
    while length <= max_length:
        parts = buckets.pop(length, None)
        if parts:
            frontier = parts[0] if len(parts) == 1 else \
                np.unique(np.concatenate(parts))
            targets, parents = _expand_frontier(
                index.cust_indptr, index.cust_indices, frontier)
            targets, parents, __ = _best_per_target(targets, parents)
            fresh = kind[targets] == _KIND_NONE
            targets, parents = targets[fresh], parents[fresh]
            if targets.size:
                kind[targets] = RouteKind.PROVIDER.value
                path_len[targets] = length + 1
                parent[targets] = parents
                origin[targets] = origin[parents]
                buckets.setdefault(length + 1, []).append(targets)
                max_length = max(max_length, length + 1)
        length += 1

    return kind, path_len, parent, origin


# ---------------------------------------------------------------------------
# RouteTable: the dense, dict-like result object
# ---------------------------------------------------------------------------

class RouteTable:
    """Best routes from every AS toward one origin set.

    Backed by the dense per-node arrays of :func:`_propagate`; behaves
    like the ``Dict[int, Route]`` the old API returned (``in``, ``len``,
    iteration over holder ASNs, ``get``/``[]``, ``keys``/``values``/
    ``items``) while adding cheap scalar accessors (:meth:`origin_of`,
    :meth:`path_of`, :meth:`kind_of`, :meth:`length_of`,
    :meth:`penultimate_of`) and bulk APIs (:meth:`paths_for`,
    :meth:`holders`) that avoid per-route object creation. Path tuples
    are materialized lazily from parent pointers and memoized.
    """

    __slots__ = ("_index", "_kind", "_path_len", "_parent", "_origin",
                 "_holder_idxs", "_memo")

    def __init__(self, index: _GraphIndex, kind: np.ndarray,
                 path_len: np.ndarray, parent: np.ndarray,
                 origin: np.ndarray) -> None:
        self._index = index
        self._kind = kind
        self._path_len = path_len
        self._parent = parent
        self._origin = origin
        self._holder_idxs = np.flatnonzero(kind != _KIND_NONE)
        self._memo: Dict[int, Tuple[int, ...]] = {}

    # -- internal ---------------------------------------------------------

    def _idx_of(self, asn: int) -> int:
        """Dense index of ``asn`` if it holds a route, else ``-1``."""
        i = self._index.index_of.get(asn, -1)
        if i < 0 or self._kind[i] == _KIND_NONE:
            return -1
        return i

    def _materialize(self, i: int) -> Tuple[int, ...]:
        """Path tuple for holder index ``i`` (memoized, suffix-shared)."""
        memo = self._memo
        asns = self._index.asns
        parent = self._parent
        stack: List[int] = []
        j = i
        while j >= 0 and j not in memo:
            stack.append(j)
            j = int(parent[j])
        suffix = memo[j] if j >= 0 else ()
        for k in reversed(stack):
            suffix = (int(asns[k]),) + suffix
            memo[k] = suffix
        return suffix

    @property
    def nbytes(self) -> int:
        """Resident bytes of this table's dense arrays (memo excluded).

        The memoized path tuples are deliberately left out: they are a
        demand-paged cache whose size tracks the caller's access
        pattern, not the table itself.
        """
        return int(self._kind.nbytes + self._path_len.nbytes
                   + self._parent.nbytes + self._origin.nbytes
                   + self._holder_idxs.nbytes)

    # -- dict-like interface ----------------------------------------------

    def __len__(self) -> int:
        return int(self._holder_idxs.size)

    def __iter__(self) -> Iterator[int]:
        asns = self._index.asns
        for i in self._holder_idxs:
            yield int(asns[i])

    def __contains__(self, asn: object) -> bool:
        try:
            return self._idx_of(asn) >= 0  # type: ignore[arg-type]
        except TypeError:
            return False

    def __getitem__(self, asn: int) -> Route:
        i = self._idx_of(asn)
        if i < 0:
            raise KeyError(asn)
        return Route(_table=self, _idx=i)

    def get(self, asn: int, default: Optional[Route] = None
            ) -> Optional[Route]:
        """Route held by ``asn``, or ``default`` if unreachable."""
        i = self._idx_of(asn)
        return Route(_table=self, _idx=i) if i >= 0 else default

    def keys(self) -> Iterator[int]:
        """Holder ASNs (ascending)."""
        return iter(self)

    def values(self) -> Iterator[Route]:
        """Routes, in ascending holder-ASN order."""
        for i in self._holder_idxs:
            yield Route(_table=self, _idx=int(i))

    def items(self) -> Iterator[Tuple[int, Route]]:
        """(holder ASN, route) pairs, in ascending holder-ASN order."""
        asns = self._index.asns
        for i in self._holder_idxs:
            yield int(asns[i]), Route(_table=self, _idx=int(i))

    # -- scalar accessors (no Route object, no path materialization) ------

    def origin_of(self, asn: int) -> Optional[int]:
        """Winning (anycast) origin for ``asn``, or None if unreachable."""
        i = self._idx_of(asn)
        return int(self._index.asns[self._origin[i]]) if i >= 0 else None

    def kind_of(self, asn: int) -> Optional[RouteKind]:
        """Local-pref class of ``asn``'s route, or None if unreachable."""
        i = self._idx_of(asn)
        return _KINDS[int(self._kind[i])] if i >= 0 else None

    def length_of(self, asn: int) -> Optional[int]:
        """AS-hop count of ``asn``'s route, or None if unreachable."""
        i = self._idx_of(asn)
        return int(self._path_len[i]) if i >= 0 else None

    def path_of(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to its origin, or None if unreachable."""
        i = self._idx_of(asn)
        return self._materialize(i) if i >= 0 else None

    def penultimate_of(self, asn: int) -> Optional[int]:
        """``path[-2]`` — the AS handing traffic to the origin.

        None when the holder is unreachable or is itself the origin.
        Walks parent pointers without materializing the path tuple.
        """
        i = self._idx_of(asn)
        if i < 0:
            return None
        parent = self._parent
        if parent[i] < 0:
            return None  # the holder is an origin: no handoff AS
        j = i
        while parent[parent[j]] >= 0:
            j = int(parent[j])
        return int(self._index.asns[j])

    # -- bulk APIs ---------------------------------------------------------

    def paths_for(self, srcs: Iterable[int]
                  ) -> Dict[int, Optional[Tuple[int, ...]]]:
        """AS paths for many sources at once (None for unreachable)."""
        out: Dict[int, Optional[Tuple[int, ...]]] = {}
        for asn in srcs:
            i = self._idx_of(asn)
            out[asn] = self._materialize(i) if i >= 0 else None
        return out

    def holders(self) -> np.ndarray:
        """ASNs holding a route, ascending (dense bulk view)."""
        return self._index.asns[self._holder_idxs]

    def holder_set(self) -> Set[int]:
        """ASNs holding a route, as a plain set of ints."""
        return {int(a) for a in self._index.asns[self._holder_idxs]}


def compute_routes(graph: ASGraph, origins: Sequence[int]) -> RouteTable:
    """Best route from every AS that can reach any of ``origins``.

    Unreachable ASes are absent from the result. With multiple origins
    the announcement is anycast: each AS reaches exactly one winning
    origin.

    Returns a :class:`RouteTable` — a lazy mapping view over dense
    parent/origin arrays, not a plain dict of :class:`Route` objects.
    It supports the read-only mapping protocol (``table[asn]``,
    ``.get``, ``in``, ``len``, iteration) plus cheap accessors that skip
    :class:`Route` construction: ``path_of(asn)`` / ``origin_of(asn)`` /
    ``length_of(asn)`` per AS, ``paths_for(asns)`` for bulk path dicts,
    and ``holders()`` / ``holder_set()`` for the reachable set. Paths
    are materialized only when asked for. Route selection is
    bit-identical to :func:`_compute_routes_reference`.
    """
    if not origins:
        raise TopologyError("need at least one origin")
    index = _graph_index(graph)
    origin_idxs = []
    for asn in sorted(set(origins)):
        i = index.index_of.get(asn)
        if i is None:
            raise TopologyError(f"origin ASN {asn} not in graph")
        origin_idxs.append(i)
    arrays = _propagate(index, np.asarray(origin_idxs, dtype=np.int64))
    return RouteTable(index, *arrays)


# ---------------------------------------------------------------------------
# Reference implementation (tuple-carrying heaps) — kept for equivalence
# tests only; see tests/test_routing.py.
# ---------------------------------------------------------------------------

def _better(candidate: Route, incumbent: Optional[Route]) -> bool:
    """BGP decision: kind (local pref), then path length, then next hop."""
    if incumbent is None:
        return True
    if candidate.kind.value != incumbent.kind.value:
        return candidate.kind.value < incumbent.kind.value
    if candidate.as_path_length != incumbent.as_path_length:
        return candidate.as_path_length < incumbent.as_path_length
    cand_next = candidate.path[1] if len(candidate.path) > 1 else -1
    inc_next = incumbent.path[1] if len(incumbent.path) > 1 else -1
    return cand_next < inc_next


def _compute_routes_reference(graph: ASGraph, origins: Sequence[int]
                              ) -> Dict[int, Route]:
    """Pre-optimization tuple-based route computation (test oracle).

    Semantics are frozen: the dense kernel must select exactly the routes
    this implementation selects.
    """
    if not origins:
        raise TopologyError("need at least one origin")
    for origin in origins:
        if origin not in graph:
            raise TopologyError(f"origin ASN {origin} not in graph")

    best: Dict[int, Route] = {}

    # Phase 1: customer routes, BFS upward. A heap ordered by
    # (path_len, next_hop) makes selection deterministic and shortest-first.
    heap: List[Tuple[int, int, Tuple[int, ...]]] = []
    for origin in sorted(set(origins)):
        route = Route(path=(origin,), kind=RouteKind.ORIGIN)
        best[origin] = route
        heapq.heappush(heap, (0, -1, route.path))
    while heap:
        path_len, __, path = heapq.heappop(heap)
        holder = path[0]
        current = best.get(holder)
        if current is None or current.path != path:
            continue  # superseded by a better route
        for provider in sorted(graph.providers_of(holder)):
            candidate = Route(path=(provider,) + path,
                              kind=RouteKind.CUSTOMER)
            if _better(candidate, best.get(provider)):
                best[provider] = candidate
                heapq.heappush(
                    heap, (candidate.as_path_length, path[0], candidate.path))

    # Phase 2: peer routes — cross one peering link from any AS holding an
    # origin or customer route. Collect candidates first so that phase-2
    # routes never chain across two peer links.
    uphill_holders = [r for r in best.values()
                      if r.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER)]
    for route in sorted(uphill_holders, key=lambda r: (r.as_path_length,
                                                       r.path)):
        for peer in sorted(graph.peers_of(route.holder)):
            candidate = Route(path=(peer,) + route.path, kind=RouteKind.PEER)
            if _better(candidate, best.get(peer)):
                best[peer] = candidate

    # Phase 3: provider routes, BFS downward from every route holder.
    heap = []
    for route in best.values():
        heapq.heappush(heap, (route.as_path_length, -1, route.path))
    while heap:
        path_len, __, path = heapq.heappop(heap)
        holder = path[0]
        current = best.get(holder)
        if current is None or current.path != path:
            continue
        for customer in sorted(graph.customers_of(holder)):
            candidate = Route(path=(customer,) + path,
                              kind=RouteKind.PROVIDER)
            if _better(candidate, best.get(customer)):
                best[customer] = candidate
                heapq.heappush(
                    heap, (candidate.as_path_length, path[0], candidate.path))

    return best


# ---------------------------------------------------------------------------
# Simulator with a bounded, instrumented route cache
# ---------------------------------------------------------------------------


class BgpSimulator:
    """Per-origin-set route cache over a (mostly static) AS graph.

    The cache is a bounded LRU: at most ``max_cache_entries`` origin sets
    are kept, so long anycast sweeps no longer grow memory without limit.
    Entries are implicitly keyed on the graph's mutation epoch — editing
    the topology makes every cached table unreachable without any caller
    having to remember to :meth:`invalidate`.
    """

    def __init__(self, graph: ASGraph, max_cache_entries: int = 256,
                 recorder=None) -> None:
        if max_cache_entries < 1:
            raise TopologyError("max_cache_entries must be >= 1")
        self._graph = graph
        self._recorder = _resolve_recorder(recorder)
        self._cache: "BoundedLru[FrozenSet[int], RouteTable]" = BoundedLru(
            max_cache_entries, recorder=self._recorder,
            counter_prefix="routing.cache")
        self._cache_epoch = graph.epoch

    def attach_recorder(self, recorder) -> None:
        """Mirror cache hit/miss/eviction and route-computation counters
        onto a :class:`repro.obs.Recorder` (observation only)."""
        self._recorder = _resolve_recorder(recorder)
        self._cache.attach_recorder(self._recorder)

    @property
    def graph(self) -> ASGraph:
        return self._graph

    def invalidate(self) -> None:
        """Drop cached routes explicitly.

        Not required for correctness — graph mutations bump the epoch and
        orphan stale entries automatically — but frees memory immediately.
        """
        self._cache.clear()

    def cache_stats(self) -> CacheStats:
        """Current cache counters (entries, hits, misses, evictions)."""
        return self._cache.cache_stats()

    def cache_memory_bytes(self) -> int:
        """Resident bytes of all cached route tables' dense arrays.

        Feeds the ``mem.routing.cache.resident_bytes`` gauge of
        memory-profiled builds (``BuilderOptions.profile_memory``).
        """
        return sum(table.nbytes for table in self._cache.values())

    def routes_to(self, origins: Iterable[int]) -> RouteTable:
        """Best routes from every AS toward the origin set (cached)."""
        epoch = self._graph.epoch
        if epoch != self._cache_epoch:
            self._cache.clear()  # stale epoch: nothing can hit again
            self._cache_epoch = epoch
        key = frozenset(origins)
        table = self._cache.get(key)
        if table is not None:
            return table
        table = compute_routes(self._graph, sorted(key))
        self._recorder.count("routing.routes_computed")
        self._recorder.count("routing.ases_visited", len(table))
        self._cache.put(key, table)
        return table

    def route(self, src: int, dst: int) -> Optional[Route]:
        """Best route from ``src`` to ``dst`` (None if unreachable)."""
        return self.routes_to([dst]).get(src)

    def path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``src`` to ``dst`` (None if unreachable)."""
        return self.routes_to([dst]).path_of(src)

    def paths_from(self, src: int, dsts: Sequence[int]
                   ) -> Dict[int, Optional[Tuple[int, ...]]]:
        """AS path from ``src`` to each destination (None = unreachable).

        Each destination is its own origin set, so this is a convenience
        loop over the per-destination cache — useful for traceroute-style
        campaigns measuring out from one vantage point.
        """
        return {dst: self.routes_to([dst]).path_of(src) for dst in dsts}

    def catchment(self, src: int, origins: Iterable[int]) -> Optional[int]:
        """Which anycast origin ``src``'s best route reaches."""
        return self.routes_to(origins).origin_of(src)
