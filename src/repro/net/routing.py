"""Valley-free (Gao-Rexford) route computation over the AS graph.

Routes are computed per destination with the standard three-phase
propagation model:

1. **Customer routes** — the origin's route propagates upward over
   customer→provider links any number of times.
2. **Peer routes** — a route held via a customer (or by the origin) crosses
   at most one peering link.
3. **Provider routes** — after crossing a peer link or turning downhill,
   routes propagate only downward over provider→customer links.

Route selection follows BGP decision logic restricted to the attributes the
model carries: prefer customer over peer over provider routes (local
preference mirrors economics), then shortest AS path, then lowest next-hop
ASN as the deterministic tie-break.

The simulator also supports *anycast* destinations — several origin ASes
announcing the same prefix — by seeding phase 1 with every origin; the
winning origin at each AS is its catchment.

Results are cached per (graph epoch, origin set); mutating the graph via
the provided ``invalidate`` hook clears the cache.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from .relationships import ASGraph


class RouteKind(enum.Enum):
    """How the best route at an AS was learned (BGP local-pref classes)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """Best route from one AS toward a destination.

    ``path`` lists ASNs from the route holder to the origin, inclusive:
    ``path[0]`` is the holder, ``path[-1]`` the (anycast) origin reached.
    """

    path: Tuple[int, ...]
    kind: RouteKind

    @property
    def holder(self) -> int:
        return self.path[0]

    @property
    def origin(self) -> int:
        return self.path[-1]

    @property
    def as_path_length(self) -> int:
        """Number of AS hops (edges) on the path."""
        return len(self.path) - 1


def _better(candidate: Route, incumbent: Optional[Route]) -> bool:
    """BGP decision: kind (local pref), then path length, then next hop."""
    if incumbent is None:
        return True
    if candidate.kind.value != incumbent.kind.value:
        return candidate.kind.value < incumbent.kind.value
    if candidate.as_path_length != incumbent.as_path_length:
        return candidate.as_path_length < incumbent.as_path_length
    cand_next = candidate.path[1] if len(candidate.path) > 1 else -1
    inc_next = incumbent.path[1] if len(incumbent.path) > 1 else -1
    return cand_next < inc_next


def compute_routes(graph: ASGraph, origins: Sequence[int]
                   ) -> Dict[int, Route]:
    """Best route from every AS that can reach any of ``origins``.

    Unreachable ASes are absent from the result. With multiple origins the
    announcement is anycast: each AS reaches exactly one winning origin.
    """
    if not origins:
        raise TopologyError("need at least one origin")
    for origin in origins:
        if origin not in graph:
            raise TopologyError(f"origin ASN {origin} not in graph")

    best: Dict[int, Route] = {}

    # Phase 1: customer routes, BFS upward. A heap ordered by
    # (path_len, next_hop) makes selection deterministic and shortest-first.
    heap: List[Tuple[int, int, Tuple[int, ...]]] = []
    for origin in sorted(set(origins)):
        route = Route(path=(origin,), kind=RouteKind.ORIGIN)
        best[origin] = route
        heapq.heappush(heap, (0, -1, route.path))
    while heap:
        path_len, __, path = heapq.heappop(heap)
        holder = path[0]
        current = best.get(holder)
        if current is None or current.path != path:
            continue  # superseded by a better route
        for provider in sorted(graph.providers_of(holder)):
            candidate = Route(path=(provider,) + path,
                              kind=RouteKind.CUSTOMER)
            if _better(candidate, best.get(provider)):
                best[provider] = candidate
                heapq.heappush(
                    heap, (candidate.as_path_length, path[0], candidate.path))

    # Phase 2: peer routes — cross one peering link from any AS holding an
    # origin or customer route. Collect candidates first so that phase-2
    # routes never chain across two peer links.
    uphill_holders = [r for r in best.values()
                      if r.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER)]
    for route in sorted(uphill_holders, key=lambda r: (r.as_path_length,
                                                       r.path)):
        for peer in sorted(graph.peers_of(route.holder)):
            candidate = Route(path=(peer,) + route.path, kind=RouteKind.PEER)
            if _better(candidate, best.get(peer)):
                best[peer] = candidate

    # Phase 3: provider routes, BFS downward from every route holder.
    heap = []
    for route in best.values():
        heapq.heappush(heap, (route.as_path_length, -1, route.path))
    while heap:
        path_len, __, path = heapq.heappop(heap)
        holder = path[0]
        current = best.get(holder)
        if current is None or current.path != path:
            continue
        for customer in sorted(graph.customers_of(holder)):
            candidate = Route(path=(customer,) + path,
                              kind=RouteKind.PROVIDER)
            if _better(candidate, best.get(customer)):
                best[customer] = candidate
                heapq.heappush(
                    heap, (candidate.as_path_length, path[0], candidate.path))

    return best


class BgpSimulator:
    """Per-origin-set route cache over a (mostly static) AS graph."""

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._cache: Dict[FrozenSet[int], Dict[int, Route]] = {}

    @property
    def graph(self) -> ASGraph:
        return self._graph

    def invalidate(self) -> None:
        """Drop cached routes after a topology change."""
        self._cache.clear()

    def routes_to(self, origins: Iterable[int]) -> Dict[int, Route]:
        """Best routes from every AS toward the origin set (cached)."""
        key = frozenset(origins)
        if key not in self._cache:
            self._cache[key] = compute_routes(self._graph, sorted(key))
        return self._cache[key]

    def route(self, src: int, dst: int) -> Optional[Route]:
        """Best route from ``src`` to ``dst`` (None if unreachable)."""
        return self.routes_to([dst]).get(src)

    def path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``src`` to ``dst`` (None if unreachable)."""
        route = self.route(src, dst)
        return route.path if route is not None else None

    def catchment(self, src: int, origins: Iterable[int]) -> Optional[int]:
        """Which anycast origin ``src``'s best route reaches."""
        route = self.routes_to(origins).get(src)
        return route.origin if route is not None else None
