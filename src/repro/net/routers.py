"""Router interfaces with incrementing IP ID counters (§3.1.3).

"Every packet must include an IP ID value, and many routers source the IP
ID values from an incrementing counter. ... We have observed that the IP ID
values of most routers display diurnal patterns, suggesting that the rate
at which the routers source packets may be proportional to the rate at
which they forward traffic."

Each simulated router belongs to an AS and sources packets (flow exports,
ICMP, keepalives) at a rate proportional to the AS's forwarded traffic
volume, modulated by the local diurnal curve. The counter wraps at 2^16
like the real 16-bit IP ID field, so measurement code must unwrap it.

Not every router is measurable: some use randomised IP IDs (per-flow
counters or RFC 6864-style randomisation), in which case pings see noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigError
from ..population.activity import DiurnalCurve
from .ases import ASRegistry, ASType
from .geography import City

IPID_MODULUS = 65_536


@dataclass(frozen=True)
class RouterInterface:
    """One pingable router interface."""

    address: str
    asn: int
    city: City
    base_rate_pps: float        # mean packets/second sourced by the router
    counter_offset: int
    uses_random_ipid: bool
    curve: DiurnalCurve

    def ipid_at(self, t_seconds: float,
                rng: Optional[np.random.Generator] = None) -> int:
        """IP ID value observed in a reply sent at ``t_seconds``.

        Randomised-ID routers return uniform noise (requires ``rng``).
        """
        if self.uses_random_ipid:
            if rng is None:
                raise ConfigError("random-IPID router needs an rng")
            return int(rng.integers(0, IPID_MODULUS))
        sourced = self.base_rate_pps * self.curve.integral(
            0.0, t_seconds, self.city.utc_offset)
        return int(self.counter_offset + round(sourced)) % IPID_MODULUS

    def expected_rate_at(self, t_seconds: float) -> float:
        """Instantaneous sourcing rate (packets/second) — ground truth."""
        if self.uses_random_ipid:
            return 0.0
        return self.base_rate_pps * self.curve.value_at(
            t_seconds, self.city.utc_offset)


class RouterPopulation:
    """All pingable router interfaces, indexed by AS."""

    def __init__(self, routers: List[RouterInterface]) -> None:
        self._routers = list(routers)
        self._by_as: Dict[int, List[RouterInterface]] = {}
        for router in routers:
            self._by_as.setdefault(router.asn, []).append(router)

    def __len__(self) -> int:
        return len(self._routers)

    def __iter__(self):
        return iter(self._routers)

    def in_as(self, asn: int) -> List[RouterInterface]:
        return list(self._by_as.get(asn, []))

    def by_address(self, address: str) -> Optional[RouterInterface]:
        for router in self._routers:
            if router.address == address:
                return router
        return None

    def countable(self) -> List[RouterInterface]:
        return [r for r in self._routers if not r.uses_random_ipid]


def build_routers(registry: ASRegistry, volume_by_as: Dict[int, float],
                  curve: DiurnalCurve, rng: np.random.Generator,
                  random_ipid_fraction: float = 0.25,
                  pps_per_volume_unit: float = 125.0) -> RouterPopulation:
    """Create router interfaces for transit-like and eyeball ASes.

    ``volume_by_as`` is the flow assignment's per-AS forwarded volume (in
    relative byte units summing to ~path-length); the sourcing rate is
    proportional to it.
    """
    routers: List[RouterInterface] = []
    for asys in registry:
        if asys.as_type not in (ASType.TIER1, ASType.TRANSIT,
                                ASType.EYEBALL, ASType.HYPERGIANT):
            continue
        volume = volume_by_as.get(asys.asn, 0.0)
        if volume <= 0:
            continue
        n_interfaces = 2 if asys.as_type in (ASType.TIER1,
                                             ASType.TRANSIT) else 1
        for k in range(n_interfaces):
            jitter = float(rng.lognormal(0.0, 0.4))
            routers.append(RouterInterface(
                address=f"rtr{k}.as{asys.asn}.example",
                asn=asys.asn,
                city=asys.home_city,
                base_rate_pps=max(0.05, volume * pps_per_volume_unit
                                  * jitter / n_interfaces),
                counter_offset=int(rng.integers(0, IPID_MODULUS)),
                uses_random_ipid=bool(rng.random() < random_ipid_fraction),
                curve=curve,
            ))
    return RouterPopulation(routers)
