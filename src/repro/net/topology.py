"""Flattened-Internet topology generation.

Builds the *actual* AS-level topology of the simulated Internet:

* a tier-1 clique at the top of the transit hierarchy,
* regional transit providers buying from tier-1s,
* eyeball ISPs multi-homed to regional transit,
* stub enterprise/hosting ASes at the edge,
* research networks (which later host vantage points and root servers), and
* hypergiants that, in line with the Internet-flattening literature the
  paper builds on (§3.3.2, [7, 19]), peer *directly* with most transit and
  eyeball networks — the links that route collectors largely cannot see.

The generator also populates a PeeringDB-like :class:`PeeringRegistry` with
facility presences, and wires IXP-style peering between co-located networks.

Ground-truth "size weights" for eyeball ASes are drawn here (Zipf within
each country) so that both the population model and the hypergiants'
peering strategies (which target large eyeballs first) agree on which
networks are big.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..config import TopologyConfig
from ..errors import ConfigError
from ..rand import zipf_weights
from .ases import (ASRegistry, ASType, AutonomousSystem, PeeringPolicy,
                   TrafficProfile)
from .facilities import Facility, PeeringRegistry
from .geography import City, WorldAtlas
from .relationships import ASGraph

# ASN ranges per role keep identities readable in debug output. The
# constants are *floors*: scaled worlds whose role counts overflow a
# range push the next base up (see :func:`asn_bases`), while every
# paper-scale preset keeps the historical numbering bit-for-bit.
TIER1_BASE = 1
TRANSIT_BASE = 100
EYEBALL_BASE = 1000
STUB_BASE = 5000
RESEARCH_BASE = 10_000
HYPERGIANT_BASE = 20_000


def asn_bases(config: TopologyConfig) -> Dict[str, int]:
    """Per-role ASN bases, stretched so ranges never collide.

    Each role starts at its historical base unless the previous role's
    count overflows into it, in which case it shifts just past the
    previous range (with the same headroom ratio the defaults have).
    """
    transit = max(TRANSIT_BASE, TIER1_BASE + config.n_tier1)
    eyeball = max(EYEBALL_BASE, transit + config.n_transit)
    stub = max(STUB_BASE, eyeball + config.n_eyeball)
    research = max(RESEARCH_BASE, stub + config.n_stub)
    hypergiant = max(HYPERGIANT_BASE, research + config.n_research)
    return {"tier1": TIER1_BASE, "transit": transit, "eyeball": eyeball,
            "stub": stub, "research": research, "hypergiant": hypergiant}

# Named "focus" eyeball ISPs reproduce Figure 2: large ISPs in France,
# Japan, South Korea, the UK and the US with ground-truth subscriber counts
# (millions). The French ISPs are the paper's case study. Values are
# loosely modelled on public subscriber figures; only ordering matters.
FOCUS_ISPS: Mapping[str, Tuple[Tuple[str, float], ...]] = {
    "FR": (("Orange", 21.0), ("SFR", 15.0), ("Free", 11.5),
           ("Bouygues", 9.0), ("Free_M", 6.0), ("El_tele", 2.5)),
    "JP": (("NTT_Com", 68.0), ("KDDI_Net", 52.0), ("SoftBranch", 40.0)),
    "KR": (("SK_Band", 28.0), ("KT_Net", 21.0), ("LG_Plus", 14.0)),
    "GB": (("BT_Net", 27.0), ("VirginM", 15.0), ("SkyNet", 12.0),
           ("TalkTalk", 4.2)),
    "US": (("Comstream", 112.0), ("Charta", 96.0), ("ATT_Net", 81.0),
           ("Verzon", 69.0)),
}


@dataclass
class TopologyBuild:
    """Everything the topology generator produces.

    ``eyeball_size_weight`` maps eyeball ASN -> relative size (country-local
    Zipf weight scaled by country Internet users); the population model
    turns it into absolute subscriber counts. ``focus_subscribers_m`` holds
    the fixed ground-truth subscriber counts (millions) of the named focus
    ISPs keyed by ASN.
    """

    registry: ASRegistry
    graph: ASGraph
    peeringdb: PeeringRegistry
    hypergiant_asns: Dict[str, int] = field(default_factory=dict)
    eyeball_size_weight: Dict[int, float] = field(default_factory=dict)
    focus_subscribers_m: Dict[int, float] = field(default_factory=dict)
    focus_isp_names: Dict[int, str] = field(default_factory=dict)
    # Per-country hypergiant infrastructure presence (0..1): how deeply
    # the big providers have invested locally. Scales both direct peering
    # with the country's eyeballs and off-net cache deployment — "the
    # amount of traffic from these services varies greatly across user
    # networks" (§1) in part because presence does.
    hg_country_presence: Dict[str, float] = field(default_factory=dict)


def _country_counts(atlas: WorldAtlas, total: int,
                    rng: np.random.Generator) -> Dict[str, int]:
    """Distribute ``total`` ASes over countries ∝ sqrt(Internet users)."""
    codes = atlas.country_codes
    weights = np.array(
        [max(atlas.country(c).internet_users_m, 0.1) ** 0.5 for c in codes])
    weights = weights / weights.sum()
    counts = np.floor(weights * total).astype(int)
    counts = np.maximum(counts, 1)
    # Hand out any remainder to the largest countries, deterministically.
    remainder = total - int(counts.sum())
    order = np.argsort(-weights)
    i = 0
    while remainder > 0:
        counts[order[i % len(codes)]] += 1
        remainder -= 1
        i += 1
    while remainder < 0:
        j = order[i % len(codes)]
        if counts[j] > 1:
            counts[j] -= 1
            remainder += 1
        i += 1
    return dict(zip(codes, (int(c) for c in counts)))


def _pick_city(atlas: WorldAtlas, code: str, rng: np.random.Generator) -> City:
    cities = atlas.country(code).cities
    # Capital city hosts most networks; secondary cities the rest.
    weights = np.array([2.0] + [1.0] * (len(cities) - 1))
    idx = rng.choice(len(cities), p=weights / weights.sum())
    return cities[int(idx)]


class TopologyBuilder:
    """Stateful builder; call :meth:`build` once."""

    def __init__(self, config: TopologyConfig, atlas: WorldAtlas,
                 hypergiant_names: Sequence[str],
                 rng: np.random.Generator,
                 open_peering_names: "Sequence[str]" = ()) -> None:
        config.validate()
        if not hypergiant_names:
            raise ConfigError("need at least one hypergiant")
        self._cfg = config
        self._atlas = atlas
        self._hg_names = list(hypergiant_names)
        self._open_peering = set(open_peering_names)
        self._rng = rng
        self._bases = asn_bases(config)
        self._registry = ASRegistry()
        self._graph = ASGraph()
        self._pdb = PeeringRegistry()
        self._build_out = TopologyBuild(
            registry=self._registry, graph=self._graph, peeringdb=self._pdb)

    # -- public entry point -------------------------------------------------

    def build(self) -> TopologyBuild:
        self._make_facilities()
        tier1 = self._make_tier1()
        transit = self._make_transit(tier1)
        eyeballs = self._make_eyeballs(transit)
        self._make_stubs(transit, eyeballs)
        self._make_research(transit)
        self._make_hypergiants(tier1, transit, eyeballs)
        self._wire_colo_peering()
        self._graph.validate()
        return self._build_out

    # -- helpers --------------------------------------------------------------

    def _add_as(self, asys: AutonomousSystem) -> AutonomousSystem:
        self._registry.add(asys)
        self._graph.add_as(asys.asn)
        return asys

    def _join_facilities(self, asn: int, cities: Sequence[City],
                         count: int) -> None:
        """Register ``asn`` at up to ``count`` facilities near ``cities``."""
        fids: List[int] = []
        for city in cities:
            fids.extend(self._city_fids.get((city.country_code, city.name), []))
        if not fids:
            return
        unique = sorted(set(fids))
        take = min(count, len(unique))
        chosen = self._rng.choice(len(unique), size=take, replace=False)
        for idx in chosen:
            self._pdb.register(asn, unique[int(idx)])

    def _make_facilities(self) -> None:
        self._city_fids: Dict[Tuple[str, str], List[int]] = {}
        fid = 0
        for country in self._atlas.countries:
            for pos, city in enumerate(country.cities):
                n_fac = self._cfg.facilities_per_major_city if pos == 0 else 1
                for k in range(n_fac):
                    facility = Facility(
                        fid=fid, name=f"{city.name}-IX{k + 1}", city=city)
                    self._pdb.add_facility(facility)
                    self._city_fids.setdefault(
                        (country.code, city.name), []).append(fid)
                    fid += 1

    # -- tier1 ---------------------------------------------------------------

    def _make_tier1(self) -> List[AutonomousSystem]:
        tier1: List[AutonomousSystem] = []
        # Spread tier-1s over the largest countries of each region.
        regions = self._atlas.regions
        big_countries = sorted(self._atlas.countries,
                               key=lambda c: -c.internet_users_m)
        homes: List[str] = []
        for region in regions:
            in_region = [c for c in big_countries if c.region == region]
            if in_region:
                homes.append(in_region[0].code)
        i = 0
        while len(homes) < self._cfg.n_tier1:
            homes.append(big_countries[i % len(big_countries)].code)
            i += 1
        for idx in range(self._cfg.n_tier1):
            code = homes[idx]
            asys = self._add_as(AutonomousSystem(
                asn=self._bases["tier1"] + idx,
                name=f"Tier1-{idx + 1}",
                as_type=ASType.TIER1,
                country_code=code,
                home_city=self._atlas.country(code).capital,
                peering_policy=PeeringPolicy.RESTRICTIVE,
                traffic_profile=TrafficProfile.BALANCED,
            ))
            tier1.append(asys)
            # Tier-1s are present in major facilities worldwide.
            capitals = [c.capital for c in self._atlas.countries]
            self._join_facilities(asys.asn, capitals,
                                  count=max(6, len(capitals) // 2))
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                self._graph.add_p2p(a.asn, b.asn)
        return tier1

    # -- transit --------------------------------------------------------------

    def _make_transit(self, tier1: List[AutonomousSystem]
                      ) -> List[AutonomousSystem]:
        counts = _country_counts(self._atlas, self._cfg.n_transit, self._rng)
        transit: List[AutonomousSystem] = []
        asn = self._bases["transit"]
        for code, n in counts.items():
            for k in range(n):
                home = _pick_city(self._atlas, code, self._rng)
                asys = self._add_as(AutonomousSystem(
                    asn=asn,
                    name=f"Transit-{code}-{k + 1}",
                    as_type=ASType.TRANSIT,
                    country_code=code,
                    home_city=home,
                    peering_policy=PeeringPolicy.SELECTIVE,
                    traffic_profile=TrafficProfile.BALANCED,
                ))
                transit.append(asys)
                asn += 1
                # Providers: 2-3 tier-1s, preferring same-region ones.
                region = self._atlas.country(code).region
                same = [t for t in tier1
                        if self._atlas.country(t.country_code).region == region]
                pool = same if same else tier1
                n_prov = int(self._rng.integers(2, 4))
                chosen = set()
                for __ in range(n_prov):
                    pick = pool[int(self._rng.integers(len(pool)))] \
                        if self._rng.random() < 0.7 else \
                        tier1[int(self._rng.integers(len(tier1)))]
                    chosen.add(pick.asn)
                for provider in sorted(chosen):
                    self._graph.add_c2p(asys.asn, provider)
                # Facility presence around the region.
                region_cities = self._atlas.cities_in_region(region)
                n_fac = 1 + int(self._rng.poisson(self._cfg.facility_join_mean))
                self._join_facilities(asys.asn, region_cities, n_fac)
        if self._cfg.transit_region_ring:
            self._wire_transit_rings(transit)
        return transit

    def _wire_transit_rings(self, transit: List[AutonomousSystem]) -> None:
        """Chain each region's transit ASes into a lateral p2p ring.

        At 10-50x scale a region holds hundreds of transit networks whose
        only mutual connectivity would otherwise run through the tier-1
        clique; the ring (seed-emulator style) keeps intra-region paths
        short without altering any random draws (purely deterministic)."""
        by_region: Dict[str, List[AutonomousSystem]] = {}
        for t in transit:
            region = self._atlas.country(t.country_code).region
            by_region.setdefault(region, []).append(t)
        for region in sorted(by_region):
            ring = by_region[region]
            if len(ring) < 3:
                continue
            for a, b in zip(ring, ring[1:] + ring[:1]):
                if self._graph.relationship_of(a.asn, b.asn) is None:
                    self._graph.add_p2p(a.asn, b.asn)

    # -- eyeballs --------------------------------------------------------------

    def _make_eyeballs(self, transit: List[AutonomousSystem]
                       ) -> List[AutonomousSystem]:
        counts = _country_counts(self._atlas, self._cfg.n_eyeball, self._rng)
        eyeballs: List[AutonomousSystem] = []
        asn = self._bases["eyeball"]
        for code, n in counts.items():
            focus = FOCUS_ISPS.get(code, ())
            n = max(n, len(focus))
            country_users = self._atlas.country(code).internet_users_m
            # Zipf size weights within the country, scaled by country size.
            local = zipf_weights(n, 1.1) * country_users
            for k in range(n):
                if k < len(focus):
                    name, subscribers_m = focus[k]
                else:
                    name, subscribers_m = f"ISP-{code}-{k + 1}", None
                home = _pick_city(self._atlas, code, self._rng)
                asys = self._add_as(AutonomousSystem(
                    asn=asn,
                    name=name,
                    as_type=ASType.EYEBALL,
                    country_code=code,
                    home_city=home,
                    peering_policy=PeeringPolicy.SELECTIVE,
                    traffic_profile=TrafficProfile.HEAVY_INBOUND,
                ))
                eyeballs.append(asys)
                if subscribers_m is not None:
                    self._build_out.focus_subscribers_m[asn] = subscribers_m
                    self._build_out.focus_isp_names[asn] = name
                    self._build_out.eyeball_size_weight[asn] = subscribers_m
                else:
                    self._build_out.eyeball_size_weight[asn] = float(local[k])
                asn += 1
                # Providers: 1-3 transit networks, same country preferred.
                local_transit = [t for t in transit if t.country_code == code]
                region = self._atlas.country(code).region
                regional_transit = [
                    t for t in transit
                    if self._atlas.country(t.country_code).region == region]
                pool = local_transit or regional_transit or transit
                n_prov = max(1, int(self._rng.poisson(
                    self._cfg.eyeball_provider_mean - 1) + 1))
                chosen = set()
                for __ in range(n_prov):
                    source = pool if self._rng.random() < 0.8 else transit
                    chosen.add(source[int(self._rng.integers(len(source)))].asn)
                for provider in sorted(chosen):
                    self._graph.add_c2p(asys.asn, provider)
                # Facility presence in own country.
                own_cities = self._atlas.country(code).cities
                n_fac = 1 + int(self._rng.poisson(
                    self._cfg.facility_join_mean / 2))
                self._join_facilities(asys.asn, own_cities, n_fac)
        return eyeballs

    # -- stubs -----------------------------------------------------------------

    def _make_stubs(self, transit: List[AutonomousSystem],
                    eyeballs: List[AutonomousSystem]) -> None:
        counts = _country_counts(self._atlas, self._cfg.n_stub, self._rng)
        asn = self._bases["stub"]
        for code, n in counts.items():
            local_upstreams = ([t for t in transit if t.country_code == code] +
                               [e for e in eyeballs if e.country_code == code])
            pool = local_upstreams or transit
            if not local_upstreams and self._cfg.regional_subtrees:
                # Region subtree: countries without local upstreams hang
                # off their region's transit layer instead of the global
                # pool, keeping the scaled hierarchy geographic.
                region = self._atlas.country(code).region
                regional = [t for t in transit
                            if self._atlas.country(t.country_code).region
                            == region]
                pool = regional or transit
            for k in range(n):
                home = _pick_city(self._atlas, code, self._rng)
                asys = self._add_as(AutonomousSystem(
                    asn=asn,
                    name=f"Stub-{code}-{k + 1}",
                    as_type=ASType.STUB,
                    country_code=code,
                    home_city=home,
                    peering_policy=PeeringPolicy.OPEN,
                    traffic_profile=TrafficProfile.BALANCED,
                ))
                asn += 1
                n_prov = 1 if self._rng.random() < 0.75 else 2
                chosen = set()
                for __ in range(n_prov):
                    chosen.add(pool[int(self._rng.integers(len(pool)))].asn)
                for provider in sorted(chosen):
                    self._graph.add_c2p(asys.asn, provider)
                if self._rng.random() < 0.10:
                    self._join_facilities(
                        asys.asn, self._atlas.country(code).cities, 1)

    # -- research networks ------------------------------------------------------

    def _make_research(self, transit: List[AutonomousSystem]) -> None:
        research: List[AutonomousSystem] = []
        codes = self._atlas.country_codes
        for idx in range(self._cfg.n_research):
            code = codes[idx % len(codes)]
            home = self._atlas.country(code).capital
            asys = self._add_as(AutonomousSystem(
                asn=self._bases["research"] + idx,
                name=f"NREN-{code}-{idx + 1}",
                as_type=ASType.RESEARCH,
                country_code=code,
                home_city=home,
                peering_policy=PeeringPolicy.OPEN,
                traffic_profile=TrafficProfile.BALANCED,
            ))
            research.append(asys)
            local = [t for t in transit if t.country_code == code] or transit
            self._graph.add_c2p(asys.asn, local[int(
                self._rng.integers(len(local)))].asn)
            # Root-server operators and NRENs peer openly and worldwide
            # (root letters are anycast from hundreds of exchanges) —
            # that is why real paths to the roots are short and hard to
            # predict from public data (§3.3.1).
            all_cities = self._atlas.cities
            n_fac = 22 + int(self._rng.poisson(10))
            self._join_facilities(asys.asn, all_cities, n_fac)
        # Research networks form a loose peering mesh (NREN fabric).
        for i, a in enumerate(research):
            for b in research[i + 1:]:
                if self._rng.random() < 0.3:
                    self._graph.add_p2p(a.asn, b.asn)

    # -- hypergiants --------------------------------------------------------------

    def _make_hypergiants(self, tier1: List[AutonomousSystem],
                          transit: List[AutonomousSystem],
                          eyeballs: List[AutonomousSystem]) -> None:
        # Per-country presence: hypergiants invest unevenly across
        # countries; in low-presence countries even large eyeballs reach
        # them through transit.
        presence = {code: float(self._rng.uniform(0.25, 1.0))
                    for code in self._atlas.country_codes}
        self._build_out.hg_country_presence = presence
        for idx, name in enumerate(self._hg_names):
            asn = self._bases["hypergiant"] + idx
            home = self._atlas.country("US").capital
            asys = self._add_as(AutonomousSystem(
                asn=asn,
                name=name,
                as_type=ASType.HYPERGIANT,
                country_code="US",
                home_city=home,
                peering_policy=PeeringPolicy.OPEN,
                traffic_profile=TrafficProfile.HEAVY_OUTBOUND,
            ))
            self._build_out.hypergiant_asns[name] = asn
            # Hypergiants keep a little transit for reachability of last
            # resort, but serve nearly everything over direct peering.
            providers = sorted(
                {tier1[int(self._rng.integers(len(tier1)))].asn
                 for __ in range(2)})
            for provider in providers:
                self._graph.add_c2p(asn, provider)
            # Global facility presence (open peering everywhere).
            all_cities = self._atlas.cities
            self._join_facilities(asn, all_cities,
                                  count=max(8, int(len(all_cities) * 0.8)))
            # Direct peering with transit networks.
            for t in transit:
                if self._rng.random() < self._cfg.hypergiant_transit_peering:
                    if self._graph.relationship_of(asn, t.asn) is None:
                        self._graph.add_p2p(asn, t.asn)
            # Direct peering with eyeballs, biased toward the big ones and
            # scaled by local presence. Open-peering (anycast) hypergiants
            # interconnect with nearly everyone, everywhere.
            weights = self._build_out.eyeball_size_weight
            ranked = sorted(eyeballs, key=lambda e: -weights[e.asn])
            if name in self._open_peering:
                base, local = 0.85, {c: 1.0 for c in presence}
            else:
                base, local = self._cfg.hypergiant_eyeball_peering, presence
            for rank, eye in enumerate(ranked):
                quantile = rank / max(1, len(ranked) - 1)
                prob = (base * (1.6 - 1.2 * quantile)
                        * local[eye.country_code])
                if self._rng.random() < min(0.98, max(0.02, prob)):
                    if self._graph.relationship_of(asn, eye.asn) is None:
                        self._graph.add_p2p(asn, eye.asn)
        # Hypergiants all interconnect with each other.
        hg_asns = sorted(self._build_out.hypergiant_asns.values())
        for i, a in enumerate(hg_asns):
            for b in hg_asns[i + 1:]:
                self._graph.add_p2p(a, b)

    # -- IXP-style colocation peering ------------------------------------------------

    def _wire_colo_peering(self) -> None:
        """Peer co-located non-stub networks with configured probability.

        Research networks (root operators, NRENs) peer much more readily —
        their open policies keep paths toward them short (§3.3.1)."""
        eligible = {ASType.TRANSIT, ASType.EYEBALL, ASType.RESEARCH}
        for facility in self._pdb.facilities:
            members = sorted(self._pdb.members_at(facility.fid))
            types = {m: self._registry.get(m).as_type for m in members}
            for i, a in enumerate(members):
                type_a = types[a]
                if type_a not in eligible:
                    continue
                for b in members[i + 1:]:
                    type_b = types[b]
                    if type_b not in eligible:
                        continue
                    if self._graph.relationship_of(a, b) is not None:
                        continue
                    if ASType.RESEARCH in (type_a, type_b):
                        prob = self._cfg.research_colo_peering_prob
                    else:
                        prob = self._cfg.colo_peering_prob
                    if self._rng.random() < prob:
                        self._graph.add_p2p(a, b)


def build_topology(config: TopologyConfig, atlas: WorldAtlas,
                   hypergiant_names: Sequence[str],
                   rng: np.random.Generator,
                   open_peering_names: Sequence[str] = ()) -> TopologyBuild:
    """Generate the full AS topology. See module docstring."""
    return TopologyBuilder(config, atlas, hypergiant_names, rng,
                           open_peering_names=open_peering_names).build()
