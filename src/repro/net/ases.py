"""Autonomous systems: the actors of the simulated Internet.

Each AS carries the attributes a real operator would publish (or that can be
inferred from public data): its type, home country/city, PeeringDB-style
peering policy and traffic profile. These public attributes feed the
link-recommendation technique of §3.3.3; private attributes (true subscriber
counts, true traffic) live elsewhere in the scenario and are only exposed to
ground-truth validation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import TopologyError
from .geography import City


class ASType(enum.Enum):
    """Coarse role of an AS in the Internet ecosystem."""

    TIER1 = "tier1"              # global transit-free backbone
    TRANSIT = "transit"          # regional / national transit provider
    EYEBALL = "eyeball"          # access ISP hosting end users
    HYPERGIANT = "hypergiant"    # large content/cloud provider
    STUB = "stub"                # enterprise, university, small hoster
    RESEARCH = "research"        # NREN / research network (hosts VPs, roots)


class PeeringPolicy(enum.Enum):
    """PeeringDB-style interconnection policy."""

    OPEN = "open"
    SELECTIVE = "selective"
    RESTRICTIVE = "restrictive"


class TrafficProfile(enum.Enum):
    """PeeringDB-style traffic ratio."""

    HEAVY_INBOUND = "heavy_inbound"      # eyeballs
    BALANCED = "balanced"
    HEAVY_OUTBOUND = "heavy_outbound"    # content


@dataclass(frozen=True)
class AutonomousSystem:
    """A single AS and its publicly-observable attributes."""

    asn: int
    name: str
    as_type: ASType
    country_code: str
    home_city: City
    peering_policy: PeeringPolicy
    traffic_profile: TrafficProfile

    @property
    def is_transit_like(self) -> bool:
        return self.as_type in (ASType.TIER1, ASType.TRANSIT)

    @property
    def is_content(self) -> bool:
        return self.as_type is ASType.HYPERGIANT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AS{self.asn}({self.name})"


class ASRegistry:
    """Container mapping ASN -> :class:`AutonomousSystem`.

    Iteration order is insertion order, which topology generation keeps
    deterministic.
    """

    def __init__(self, ases: Iterable[AutonomousSystem] = ()):  # noqa: D401
        self._by_asn: Dict[int, AutonomousSystem] = {}
        for asys in ases:
            self.add(asys)

    def add(self, asys: AutonomousSystem) -> None:
        if asys.asn in self._by_asn:
            raise TopologyError(f"duplicate ASN {asys.asn}")
        self._by_asn[asys.asn] = asys

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self):
        return iter(self._by_asn.values())

    def get(self, asn: int) -> AutonomousSystem:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise TopologyError(f"unknown ASN {asn}") from None

    def maybe(self, asn: int) -> Optional[AutonomousSystem]:
        return self._by_asn.get(asn)

    @property
    def asns(self) -> List[int]:
        return list(self._by_asn.keys())

    def of_type(self, as_type: ASType) -> List[AutonomousSystem]:
        return [a for a in self if a.as_type is as_type]

    def in_country(self, country_code: str) -> List[AutonomousSystem]:
        return [a for a in self if a.country_code == country_code]

    def eyeballs(self) -> List[AutonomousSystem]:
        return self.of_type(ASType.EYEBALL)

    def hypergiants(self) -> List[AutonomousSystem]:
        return self.of_type(ASType.HYPERGIANT)
