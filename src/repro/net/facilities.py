"""Colocation facilities and the PeeringDB-like public registry.

Increasingly many networks list the facilities where they maintain a peering
presence (§3.3.3). The registry here plays that role: it is *public* input
to the link-recommendation technique, while the actual peering links remain
hidden in the AS graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..errors import TopologyError
from .geography import City


@dataclass(frozen=True)
class Facility:
    """A colocation facility (an interconnection building) in a city."""

    fid: int
    name: str
    city: City

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.city.name})"


class PeeringRegistry:
    """Public registry of which ASes are present at which facilities."""

    def __init__(self, facilities: Iterable[Facility] = ()):  # noqa: D401
        self._facilities: Dict[int, Facility] = {}
        self._members: Dict[int, Set[int]] = {}       # fid -> {asn}
        self._presence: Dict[int, Set[int]] = {}      # asn -> {fid}
        for facility in facilities:
            self.add_facility(facility)

    def add_facility(self, facility: Facility) -> None:
        if facility.fid in self._facilities:
            raise TopologyError(f"duplicate facility id {facility.fid}")
        self._facilities[facility.fid] = facility
        self._members[facility.fid] = set()

    def register(self, asn: int, fid: int) -> None:
        """Record that ``asn`` has presence at facility ``fid``."""
        if fid not in self._facilities:
            raise TopologyError(f"unknown facility {fid}")
        self._members[fid].add(asn)
        self._presence.setdefault(asn, set()).add(fid)

    # -- queries ----------------------------------------------------------

    def facility(self, fid: int) -> Facility:
        try:
            return self._facilities[fid]
        except KeyError:
            raise TopologyError(f"unknown facility {fid}") from None

    @property
    def facilities(self) -> List[Facility]:
        return list(self._facilities.values())

    def facilities_of(self, asn: int) -> Set[int]:
        """Facility ids where ``asn`` is present (empty if unlisted)."""
        return set(self._presence.get(asn, set()))

    def members_at(self, fid: int) -> Set[int]:
        if fid not in self._members:
            raise TopologyError(f"unknown facility {fid}")
        return set(self._members[fid])

    def common_facilities(self, a: int, b: int) -> Set[int]:
        """Facilities where both ASes are present — peering is only
        *possible* between co-located networks."""
        return self.facilities_of(a) & self.facilities_of(b)

    def colocated(self, a: int, b: int) -> bool:
        return bool(self.common_facilities(a, b))

    def colocated_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """All unordered AS pairs sharing at least one facility."""
        pairs: Set[Tuple[int, int]] = set()
        for members in self._members.values():
            ordered = sorted(members)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1:]:
                    pairs.add((a, b))
        return frozenset(pairs)

    def facility_cities(self, asn: int) -> List[City]:
        """Cities where ``asn`` has facility presence."""
        return [self._facilities[fid].city for fid in self.facilities_of(asn)]
