"""Apply a mutation plan to a built scenario and re-derive its surfaces.

:func:`apply_mutation_plan` is the single entry point: it performs every
raw substrate edit in plan order, then rebuilds exactly the derived
public surfaces the touched aspects feed — using the *same* named seed
substreams :func:`repro.scenario.build_scenario` drew from, in the same
relative order. That discipline is what makes mutation application
deterministic and *path-independent*: a scenario mutated after
generation is bit-identical to what generation would have produced for
the mutated substrate, and applying a plan followed by its inverse
restores every surface bit-for-bit (the round-trip property locked in
``tests/test_delta.py``).

Aspect -> re-derived surfaces:

* ``routing`` — collector public view, anycast catchment models,
  ground-truth mapping (+ authoritative DNS), flows, routers;
* ``activity`` — GDNS cache oracle (+ temporal oracle), flows, routers;
* ``serving`` — active deployment (filtered from the pristine one),
  TLS certificate store, anycast models, mapping (+ authoritative),
  flows, routers.

Serving-site turnover never rebuilds the deployment: the active
deployment is *filtered* from the pristine (as-generated) one, site ids
renumbered to stay index-aligned with the per-hypergiant site lists the
mapping and catchment code index into. Reviving every retired site
yields the pristine deployment object itself.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Set, Tuple

import numpy as np

from ..net.collectors import build_public_view
from ..net.routers import build_routers
from ..rand import substream
from ..services.anycast import AnycastModel
from ..services.cdn import CdnDeployment, SiteKind
from ..services.dnsinfra import (AuthoritativeDns, CacheOracle,
                                 TemporalCacheOracle)
from ..services.mapping import GroundTruthMapping
from ..services.tls import issue_certificates
from .mutations import MutationPlan


def filtered_deployment(pristine: CdnDeployment,
                        retired: Set[Tuple[str, int]]) -> CdnDeployment:
    """The active deployment: pristine sites minus the retired set.

    Site ids are renumbered to list positions (mapping assignments and
    catchment answers index per-hypergiant site lists by ``site_id``),
    preserving the pristine order so the filtering is deterministic and
    exactly reversible. With nothing retired the pristine deployment is
    returned as-is.
    """
    if not retired:
        return pristine
    active = CdnDeployment()
    active.stub_hosting = dict(pristine.stub_hosting)
    for key, sites in pristine.sites_by_hypergiant.items():
        kept = []
        for site in sites:
            if (key, site.site_id) in retired:
                continue
            renumbered = replace(site, site_id=len(kept))
            kept.append(renumbered)
            for pid in renumbered.prefix_ids:
                active.site_of_prefix[pid] = (key, renumbered)
            if renumbered.kind is SiteKind.OFFNET:
                active.offnet_index.setdefault(
                    renumbered.host_asn, {})[key] = renumbered
        active.sites_by_hypergiant[key] = kept
    return active


def apply_mutation_plan(scenario, plan: MutationPlan) -> Tuple[str, ...]:
    """Mutate a built scenario in place; returns the dirtied aspects.

    Applies every step in plan order (validating each against the
    current substrate — a bad step raises :class:`ValidationError`
    after earlier steps already applied, so validate plans against a
    scratch scenario when atomicity matters), then re-derives the
    affected public surfaces. An empty plan is a no-op.
    """
    plan.validate()
    if not plan.mutations:
        return ()
    if scenario.pristine_deployment is None:
        scenario.pristine_deployment = scenario.deployment
    for mutation in plan.mutations:
        mutation.apply(scenario)
    aspects = plan.aspects()
    _rederive(scenario, frozenset(aspects))
    return aspects


def _rederive(scenario, aspects: "frozenset[str]") -> None:
    """Rebuild the derived surfaces the dirtied aspects feed.

    Mirrors the tail of :func:`repro.scenario.build_scenario`: the same
    constructors, the same named substreams, the same relative order —
    in particular the mapping is rebuilt *immediately before* the flow
    assignment, whose per-service assignment calls are the mapping
    RNG's first consumers, exactly as during generation.
    """
    seed = scenario.config.seed
    topo = scenario.topology
    catalog = scenario.catalog
    serving = "serving" in aspects
    routing = "routing" in aspects
    activity = "activity" in aspects

    if serving:
        scenario.deployment = filtered_deployment(
            scenario.pristine_deployment, scenario.retired_sites)
        scenario.certstore = issue_certificates(
            catalog, scenario.deployment, scenario.prefixes,
            substream(seed, "tls"))

    if serving or routing:
        models = {}
        for key, spec in catalog.hypergiants.items():
            if spec.uses_anycast:
                models[key] = AnycastModel(
                    hypergiant_key=key,
                    hg_asn=topo.hypergiant_asns[spec.display_name],
                    sites=scenario.deployment.sites(key),
                    graph=topo.graph, registry=topo.registry,
                    peeringdb=topo.peeringdb, bgp=scenario.bgp)
        scenario.anycast_models = models
        scenario.mapping = GroundTruthMapping(
            prefix_table=scenario.prefixes, registry=topo.registry,
            deployment=scenario.deployment, catalog=catalog,
            anycast_models=scenario.anycast_models,
            users_per_prefix=scenario.population.users_per_prefix,
            rng=substream(seed, "mapping"))
        scenario.authoritative = AuthoritativeDns(catalog,
                                                  scenario.mapping)

    if activity:
        cfg = scenario.config
        gdns_rate = (scenario.traffic.queries_per_day
                     * scenario.gdns.gdns_share[None, :])
        ttls = [s.dns_ttl for s in catalog.services]
        probe_sids = [s.sid for s in catalog.top_by_popularity(
            cfg.measurement.probe_top_k_domains)]
        scenario.cache_oracle = CacheOracle.calibrated(
            gdns_rate, ttls, probe_sids,
            scenario.population.prefixes_with_users())
        city_offsets = np.array([c.utc_offset
                                 for c in scenario.prefixes.cities])
        scenario.temporal_oracle = TemporalCacheOracle.from_oracle(
            scenario.cache_oracle,
            utc_offsets=city_offsets[
                scenario.prefixes.city_index_array],
            curve=scenario.diurnal)

    # Flows fold traffic x mapping x deployment over BGP routes, and the
    # router population scales with per-AS flow volume — any dirty
    # aspect reaches them.
    from ..traffic.flows import assign_flows
    scenario.flows = assign_flows(scenario.traffic, scenario.mapping,
                                  scenario.deployment, scenario.bgp)
    scenario.routers = build_routers(topo.registry,
                                     scenario.flows.volume_by_as,
                                     scenario.diurnal,
                                     substream(seed, "routers"))

    if routing:
        scenario.public_view = build_public_view(
            topo.graph, topo.registry, substream(seed, "collectors"))
