"""Substrate aspect digests and per-stage input digests.

Dirty-stage selection needs to answer one question per builder stage:
*did anything this stage reads change since the snapshot was written?*
The substrate is carved into four **aspects** — independent surfaces a
:class:`repro.delta.mutations.WorldMutation` can dirty:

* ``routing`` — the actual AS graph's annotated link set (and with it
  every routing-derived surface: collector view, catchments, paths);
* ``activity`` — the ground-truth traffic matrix (queries and bytes);
* ``population`` — per-prefix user counts (no current mutation touches
  it, but the digest keeps the wiring honest);
* ``serving`` — the CDN deployment: site list, host ASes, serving
  prefixes and stub hosting.

:class:`SubstrateDigests` hashes each aspect's *content* (never object
identity or epoch counters, which differ between a mutated world and a
freshly-generated equal one). :data:`STAGE_INPUTS` maps every builder
stage to the aspects it reads plus its upstream stages;
:func:`stage_input_digest` chains the aspect digests with the upstream
stages' snapshot *body* digests, so a change anywhere upstream — in the
substrate or in a recomputed predecessor — cascades, and an unchanged
input set short-circuits to snapshot reuse (early cutoff).

The stage tables here are cross-checked against
``repro.core.builder.PRIMARY_STAGES``/``AUX_STAGES`` in
``tests/test_delta.py``; the guarantee that they capture *everything*
each stage reads is locked end-to-end by the churn identity matrix in
``tests/test_delta_identity.py``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Tuple

import numpy as np

from ..errors import ValidationError

#: The substrate aspects, in canonical order.
ASPECTS = ("routing", "activity", "population", "serving")

#: stage -> (substrate aspects read, upstream stages read).
#: Keys mirror repro.core.builder.PRIMARY_STAGES + AUX_STAGES.
STAGE_INPUTS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    # Cache probing reads the GDNS cache oracle (calibrated from the
    # traffic matrix over the user-prefix set).
    "cache-probing": (("activity", "population"), ()),
    # The root-log archive derives from per-prefix user counts.
    "root-logs": (("population",), ()),
    # Fusion is a pure function of the two §3.1.2 stage outputs.
    "users": ((), ("cache-probing", "root-logs")),
    # TLS/SNI scan the certstore (serving), ECS answers come from the
    # ground-truth mapping (serving + routing + population quantiles),
    # Verfploeter catchments ride the actual graph (routing).
    "services": (("routing", "population", "serving"), ()),
    # Path prediction runs over the collector view (routing) between
    # the users component's top ASes and the TLS footprints' home ASes.
    "routes": (("routing",), ("users", "services")),
    # Auxiliary campaigns (manifest-only; never feed the map).
    "aux-atlas": (("routing",), ()),
    "aux-reverse-traceroute": (("routing",), ("aux-atlas",)),
    "aux-cloud-vantage": (("routing",), ()),
    # IP-ID monitors routers built from the flow assignment, which
    # folds traffic, mapping and deployment over BGP routes.
    "aux-ipid": (("routing", "activity", "serving"), ()),
    # Resolver association samples page views from the traffic matrix.
    "aux-resolver-assoc": (("activity",), ()),
}


def _sha256(*chunks: bytes) -> str:
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(chunk)
    return digest.hexdigest()


class SubstrateDigests:
    """Content digests of a scenario's mutable substrate aspects.

    Computed lazily and memoised per aspect: a builder hashes each
    aspect at most once per build (the substrate is immutable while a
    build runs). Two scenarios with equal substrate *content* — however
    they got there, generation or mutation round-trip — produce equal
    digests.
    """

    def __init__(self, scenario) -> None:
        self._scenario = scenario
        self._cache: Dict[str, str] = {}

    def aspect(self, name: str) -> str:
        """The named aspect's content digest (memoised)."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        if name == "routing":
            value = self._routing()
        elif name == "activity":
            value = self._activity()
        elif name == "population":
            value = self._population()
        elif name == "serving":
            value = self._serving()
        else:
            raise ValidationError(f"unknown substrate aspect {name!r}")
        self._cache[name] = value
        return value

    def all(self) -> Dict[str, str]:
        """Every aspect digest, in canonical order."""
        return {name: self.aspect(name) for name in ASPECTS}

    # -- per-aspect content hashes ----------------------------------------

    def _routing(self) -> str:
        graph = self._scenario.graph
        lines = sorted(f"{a} {b} {rel.value}"
                       for a, b, rel in graph.edges())
        return _sha256("\n".join(lines).encode())

    def _activity(self) -> str:
        traffic = self._scenario.traffic
        return _sha256(
            np.ascontiguousarray(traffic.queries_per_day).tobytes(),
            np.ascontiguousarray(traffic.bytes_per_day).tobytes())

    def _population(self) -> str:
        users = self._scenario.population.users_per_prefix
        return _sha256(np.ascontiguousarray(users).tobytes())

    def _serving(self) -> str:
        deployment = self._scenario.deployment
        record = {
            key: [[site.site_id, site.kind.value, site.host_asn,
                   site.city.country_code, site.city.name,
                   list(site.prefix_ids)]
                  for site in sites]
            for key, sites in sorted(
                deployment.sites_by_hypergiant.items())
        }
        record["__stub_hosting__"] = sorted(
            deployment.stub_hosting.items())
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":"))
        return _sha256(payload.encode())


def stage_input_digest(stage: str, substrate: SubstrateDigests,
                       upstream_digests: Mapping[str, str]) -> str:
    """One stage's input digest: aspects + upstream snapshot digests.

    ``upstream_digests`` maps already-processed stage names to their
    snapshot *body* digests (reused or freshly saved — either way the
    digest covers the exact payload the downstream stage consumes).
    Raises :class:`ValidationError` for an unknown stage or a missing
    upstream digest — stages must be processed in builder order.
    """
    inputs = STAGE_INPUTS.get(stage)
    if inputs is None:
        raise ValidationError(f"no input-digest table for stage "
                              f"{stage!r}")
    aspects, upstream = inputs
    parts = [f"stage={stage}"]
    for aspect in aspects:
        parts.append(f"{aspect}={substrate.aspect(aspect)}")
    for name in upstream:
        digest = upstream_digests.get(name)
        if digest is None:
            raise ValidationError(
                f"stage {stage!r} needs upstream {name!r} digest "
                f"before its own (builder order violated)")
        parts.append(f"{name}={digest}")
    return _sha256("\n".join(parts).encode())
