"""Incremental delta builds: mutate the substrate, rebuild only what moved.

The paper frames the traffic map as a *living* artifact tracking a
changing Internet (§5) — BGP links churn, activity swings diurnally,
serving sites come and go. This package makes those changes first-class:

* :mod:`repro.delta.mutations` — the :class:`WorldMutation` operations
  (:class:`LinkChurn`, :class:`ActivitySwing`, :class:`SiteTurnover`)
  and the JSON-serializable :class:`MutationPlan` composing them, every
  one exactly invertible;
* :mod:`repro.delta.world` — :func:`apply_mutation_plan`, which applies
  the raw substrate edits to a built :class:`repro.scenario.Scenario`
  and deterministically re-derives every affected public surface
  (collector view, anycast catchments, ground-truth mapping, TLS store,
  flows, routers, cache oracles) from the same named seed substreams
  :func:`repro.scenario.build_scenario` used, so a mutated world is
  bit-identical to one generated mutated;
* :mod:`repro.delta.digests` — per-aspect substrate digests and the
  per-stage *input digests* the delta-aware
  :class:`repro.core.builder.MapBuilder` compares against checkpoint
  snapshots to decide which stages are dirty.

The hard guarantee, regression-locked by ``tests/test_delta_identity.py``:
``delta_build(mutations)`` is bit-identical — map JSON, campaign
records, coverage provenance — to ``fresh_build(mutated_world)``.
See ``docs/delta.md``.
"""

from .digests import (ASPECTS, STAGE_INPUTS, SubstrateDigests,
                      stage_input_digest)
from .mutations import (MUTATION_KINDS, ActivitySwing, LinkChurn,
                        MutationPlan, SiteTurnover, WorldMutation,
                        mutation_from_dict)
from .world import apply_mutation_plan

__all__ = [
    "ASPECTS",
    "MUTATION_KINDS",
    "STAGE_INPUTS",
    "ActivitySwing",
    "LinkChurn",
    "MutationPlan",
    "SiteTurnover",
    "SubstrateDigests",
    "WorldMutation",
    "apply_mutation_plan",
    "mutation_from_dict",
    "stage_input_digest",
]
