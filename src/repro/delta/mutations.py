"""Substrate mutations: typed, validated, exactly invertible world edits.

Three mutation kinds cover the churn the paper's continuously-rebuilt
map must absorb (§5): BGP link churn, per-prefix activity swings and
serving-site turnover. Each is a frozen dataclass with a JSON form, and
each has an *exact* inverse — applying a mutation and then its inverse
restores the substrate bit-for-bit, a property the delta-build identity
tests lean on:

* :class:`LinkChurn` adds or removes one annotated AS link; the inverse
  flips the operation (the relationship annotation rides along, so
  removing a link remembers what to put back).
* :class:`ActivitySwing` scales the demand of a prefix set by a
  **power of two**. Restricting factors to exact binary scales makes
  ``x * f * (1/f) == x`` hold exactly in IEEE-754 (only the exponent
  moves), which is what makes the swing invertible bit-for-bit.
* :class:`SiteTurnover` retires or revives one serving site. Retirement
  is modelled as *filtering* the pristine deployment (never rebuilding
  it), so a revive restores the original site objects exactly.

A :class:`MutationPlan` strings mutations into an ordered sequence with
a canonical JSON encoding and a content digest; ``plan.inverse()``
reverses the sequence with every step inverted. The JSON schema is
documented in ``docs/delta.md``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple, Type

from ..errors import ValidationError

#: Substrate aspects a mutation can touch (see repro.delta.digests).
_ROUTING = "routing"
_ACTIVITY = "activity"
_SERVING = "serving"


class WorldMutation:
    """Base class of all substrate mutations.

    Subclasses are frozen dataclasses carrying a ``kind`` class
    attribute (the JSON discriminator) and implementing
    :meth:`validate`, :meth:`aspects`, :meth:`apply` and
    :meth:`inverse`. ``apply`` performs only the *raw* substrate edit;
    re-deriving the public surfaces that depend on it is
    :func:`repro.delta.world.apply_mutation_plan`'s job.
    """

    kind: str = ""

    def validate(self) -> None:
        """Raise :class:`ValidationError` if the mutation is malformed."""
        raise NotImplementedError

    def aspects(self) -> Tuple[str, ...]:
        """The substrate aspects this mutation dirties."""
        raise NotImplementedError

    def apply(self, scenario) -> None:
        """Perform the raw substrate edit on a built scenario."""
        raise NotImplementedError

    def inverse(self) -> "WorldMutation":
        """The mutation that exactly undoes this one."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form, ``kind`` discriminator included."""
        raise NotImplementedError


@dataclass(frozen=True)
class LinkChurn(WorldMutation):
    """Add or remove one AS-graph link (BGP churn).

    For ``relationship="c2p"`` the orientation is ``a`` = customer,
    ``b`` = provider; ``"p2p"`` is symmetric. Removing a link requires
    it to exist *with this exact relationship and orientation* — the
    annotation is what lets :meth:`inverse` re-add it faithfully.
    """

    op: str                    # "add" | "remove"
    a: int
    b: int
    relationship: str          # "c2p" | "p2p"

    kind = "link-churn"

    def validate(self) -> None:
        """Check operation, relationship and endpoint sanity."""
        if self.op not in ("add", "remove"):
            raise ValidationError(f"link-churn op must be add/remove, "
                                  f"got {self.op!r}")
        if self.relationship not in ("c2p", "p2p"):
            raise ValidationError(
                f"link-churn relationship must be c2p/p2p, "
                f"got {self.relationship!r}")
        if self.a == self.b:
            raise ValidationError(f"link-churn self-link on ASN {self.a}")

    def aspects(self) -> Tuple[str, ...]:
        """Link churn dirties routing only."""
        return (_ROUTING,)

    def apply(self, scenario) -> None:
        """Edit the actual AS graph (epoch bumps automatically)."""
        from ..net.relationships import Relationship
        graph = scenario.graph
        for asn in (self.a, self.b):
            if asn not in graph:
                raise ValidationError(
                    f"link-churn references unknown ASN {asn}")
        existing = graph.relationship_of(self.a, self.b)
        if self.op == "add":
            if existing is not None:
                raise ValidationError(
                    f"link-churn add: link {self.a}-{self.b} already "
                    f"exists ({existing.value})")
            if self.relationship == "c2p":
                graph.add_c2p(self.a, self.b)
            else:
                graph.add_p2p(self.a, self.b)
            return
        want = (Relationship.C2P if self.relationship == "c2p"
                else Relationship.P2P)
        if existing is not want:
            raise ValidationError(
                f"link-churn remove: link {self.a}-{self.b} is "
                f"{existing.value if existing else 'absent'}, "
                f"expected {self.relationship}")
        if want is Relationship.C2P \
                and not graph.is_provider_of(self.b, self.a):
            raise ValidationError(
                f"link-churn remove: {self.b} is not a provider of "
                f"{self.a}")
        graph.remove_link(self.a, self.b)

    def inverse(self) -> "LinkChurn":
        """Adding undoes removing and vice versa."""
        flipped = "remove" if self.op == "add" else "add"
        return LinkChurn(op=flipped, a=self.a, b=self.b,
                         relationship=self.relationship)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {"kind": self.kind, "op": self.op, "a": self.a,
                "b": self.b, "relationship": self.relationship}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LinkChurn":
        """Decode the JSON form (schema errors raise ValidationError)."""
        try:
            return cls(op=str(payload["op"]), a=int(payload["a"]),
                       b=int(payload["b"]),
                       relationship=str(payload["relationship"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"bad link-churn entry: {exc}") from None


def _is_power_of_two(value: float) -> bool:
    """True iff ``value`` is a positive power of two (exact float)."""
    if not isinstance(value, (int, float)) or value <= 0 \
            or not math.isfinite(value):
        return False
    mantissa, _ = math.frexp(float(value))
    return mantissa == 0.5


@dataclass(frozen=True)
class ActivitySwing(WorldMutation):
    """Scale the demand of a prefix set by an exact power of two.

    Scales both ``queries_per_day`` and ``bytes_per_day`` columns of the
    ground-truth traffic matrix — a diurnal swing moves resolutions and
    bytes together. The power-of-two restriction keeps the scaling
    exact (exponent-only), so ``inverse()`` restores the matrix
    bit-for-bit.
    """

    prefix_ids: Tuple[int, ...]
    factor: float

    kind = "activity-swing"

    def validate(self) -> None:
        """Check the factor is a power of two and the prefix set sane."""
        if not _is_power_of_two(self.factor):
            raise ValidationError(
                f"activity-swing factor must be a positive power of two "
                f"(exactly invertible), got {self.factor!r}")
        if not self.prefix_ids:
            raise ValidationError("activity-swing needs >= 1 prefix id")
        if len(set(self.prefix_ids)) != len(self.prefix_ids):
            raise ValidationError("activity-swing prefix ids must be "
                                  "unique")
        if any(int(p) < 0 for p in self.prefix_ids):
            raise ValidationError("activity-swing prefix ids must be "
                                  ">= 0")

    def aspects(self) -> Tuple[str, ...]:
        """Activity swings dirty the demand aspect only."""
        return (_ACTIVITY,)

    def apply(self, scenario) -> None:
        """Scale the traffic-matrix columns of the chosen prefixes."""
        traffic = scenario.traffic
        n = traffic.queries_per_day.shape[1]
        bad = [p for p in self.prefix_ids if p >= n]
        if bad:
            raise ValidationError(
                f"activity-swing references prefix ids {bad} outside "
                f"the table (size {n})")
        ids = list(self.prefix_ids)
        traffic.queries_per_day[:, ids] *= self.factor
        traffic.bytes_per_day[:, ids] *= self.factor

    def inverse(self) -> "ActivitySwing":
        """Scale back by the reciprocal power of two (exact)."""
        return ActivitySwing(prefix_ids=self.prefix_ids,
                             factor=1.0 / self.factor)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {"kind": self.kind,
                "prefix_ids": list(self.prefix_ids),
                "factor": self.factor}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ActivitySwing":
        """Decode the JSON form (schema errors raise ValidationError)."""
        try:
            return cls(prefix_ids=tuple(int(p)
                                        for p in payload["prefix_ids"]),
                       factor=float(payload["factor"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"bad activity-swing entry: {exc}") from None


@dataclass(frozen=True)
class SiteTurnover(WorldMutation):
    """Retire or revive one serving site of a hypergiant.

    ``site_id`` names the site in the *pristine* (as-generated)
    deployment — a stable handle that survives any retire/revive
    sequence. The active deployment is always re-filtered from the
    pristine one (see :func:`repro.delta.world.filtered_deployment`),
    so reviving restores the original site exactly. A hypergiant must
    keep at least one active site (anycast catchments and the
    ground-truth mapping need a non-empty site list).
    """

    hypergiant_key: str
    site_id: int
    op: str                    # "retire" | "revive"

    kind = "site-turnover"

    def validate(self) -> None:
        """Check the operation and handle shape."""
        if self.op not in ("retire", "revive"):
            raise ValidationError(
                f"site-turnover op must be retire/revive, got "
                f"{self.op!r}")
        if self.site_id < 0:
            raise ValidationError("site-turnover site_id must be >= 0")
        if not self.hypergiant_key:
            raise ValidationError("site-turnover needs a hypergiant key")

    def aspects(self) -> Tuple[str, ...]:
        """Site turnover dirties the serving aspect only."""
        return (_SERVING,)

    def apply(self, scenario) -> None:
        """Flip the site's membership in the retired set.

        The caller (:func:`repro.delta.world.apply_mutation_plan`) has
        already stashed the pristine deployment; this only edits
        ``scenario.retired_sites`` — the deployment itself is
        re-filtered once, after the whole plan applied.
        """
        pristine = scenario.pristine_deployment or scenario.deployment
        sites = pristine.sites_by_hypergiant.get(self.hypergiant_key)
        if sites is None:
            raise ValidationError(
                f"site-turnover references unknown hypergiant "
                f"{self.hypergiant_key!r}")
        if self.site_id >= len(sites):
            raise ValidationError(
                f"site-turnover: {self.hypergiant_key!r} has no site "
                f"{self.site_id} (only {len(sites)})")
        handle = (self.hypergiant_key, self.site_id)
        retired = scenario.retired_sites
        if self.op == "retire":
            if handle in retired:
                raise ValidationError(
                    f"site-turnover: site {handle} is already retired")
            active = sum(1 for s in sites
                         if (self.hypergiant_key, s.site_id)
                         not in retired)
            if active <= 1:
                raise ValidationError(
                    f"site-turnover: cannot retire the last active "
                    f"site of {self.hypergiant_key!r}")
            retired.add(handle)
        else:
            if handle not in retired:
                raise ValidationError(
                    f"site-turnover: site {handle} is not retired")
            retired.discard(handle)

    def inverse(self) -> "SiteTurnover":
        """Reviving undoes retiring and vice versa."""
        flipped = "revive" if self.op == "retire" else "retire"
        return SiteTurnover(hypergiant_key=self.hypergiant_key,
                            site_id=self.site_id, op=flipped)

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form."""
        return {"kind": self.kind,
                "hypergiant_key": self.hypergiant_key,
                "site_id": self.site_id, "op": self.op}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SiteTurnover":
        """Decode the JSON form (schema errors raise ValidationError)."""
        try:
            return cls(hypergiant_key=str(payload["hypergiant_key"]),
                       site_id=int(payload["site_id"]),
                       op=str(payload["op"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"bad site-turnover entry: {exc}") from None


_MUTATION_TYPES: Dict[str, Type[WorldMutation]] = {
    LinkChurn.kind: LinkChurn,
    ActivitySwing.kind: ActivitySwing,
    SiteTurnover.kind: SiteTurnover,
}

#: Every mutation kind, in canonical order (the JSON discriminators).
MUTATION_KINDS = tuple(_MUTATION_TYPES)


def mutation_from_dict(payload: Dict[str, object]) -> WorldMutation:
    """Decode one mutation from its JSON form via the ``kind`` field."""
    if not isinstance(payload, dict):
        raise ValidationError("mutation entry must be an object")
    kind = payload.get("kind")
    mutation_type = _MUTATION_TYPES.get(kind)
    if mutation_type is None:
        raise ValidationError(
            f"unknown mutation kind {kind!r} (known: "
            f"{', '.join(MUTATION_KINDS)})")
    mutation = mutation_type.from_dict(payload)
    mutation.validate()
    return mutation


@dataclass(frozen=True)
class MutationPlan:
    """An ordered, JSON-serializable sequence of substrate mutations.

    The canonical JSON form is ``{"format_version": 1, "mutations":
    [...]}`` (see ``docs/delta.md`` for the per-kind schemas);
    :meth:`digest` hashes that canonical form, giving every plan a
    stable identity that the delta-lineage manifest section records.
    """

    mutations: Tuple[WorldMutation, ...] = ()

    #: Plan JSON schema version.
    FORMAT_VERSION = 1

    def __len__(self) -> int:
        return len(self.mutations)

    def __iter__(self) -> Iterator[WorldMutation]:
        return iter(self.mutations)

    def validate(self) -> None:
        """Validate every step (shape only — apply-time checks are
        scenario-dependent)."""
        for mutation in self.mutations:
            mutation.validate()

    def aspects(self) -> Tuple[str, ...]:
        """Union of the aspects the steps dirty, in canonical order."""
        touched = {a for m in self.mutations for a in m.aspects()}
        from .digests import ASPECTS
        return tuple(a for a in ASPECTS if a in touched)

    def kinds(self) -> Tuple[str, ...]:
        """Distinct mutation kinds in the plan, in canonical order."""
        present = {m.kind for m in self.mutations}
        return tuple(k for k in MUTATION_KINDS if k in present)

    def inverse(self) -> "MutationPlan":
        """The plan that exactly undoes this one (reversed inverses)."""
        return MutationPlan(tuple(m.inverse()
                                  for m in reversed(self.mutations)))

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Canonical plain-JSON form."""
        return {"format_version": self.FORMAT_VERSION,
                "mutations": [m.to_dict() for m in self.mutations]}

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        """Stable content hash of the canonical JSON form."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MutationPlan":
        """Decode and validate a plan from its JSON form."""
        if not isinstance(payload, dict):
            raise ValidationError("mutation plan must be a JSON object")
        version = payload.get("format_version")
        if version != cls.FORMAT_VERSION:
            raise ValidationError(
                f"mutation plan format_version must be "
                f"{cls.FORMAT_VERSION}, got {version!r}")
        entries = payload.get("mutations")
        if not isinstance(entries, list):
            raise ValidationError("mutation plan needs a mutations list")
        return cls(tuple(mutation_from_dict(e) for e in entries))

    @classmethod
    def from_json(cls, text: str) -> "MutationPlan":
        """Decode a plan from JSON text."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"mutation plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path) -> "MutationPlan":
        """Read and decode a plan file."""
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise ValidationError(
                f"cannot read mutation plan {path}: {exc}") from None
        return cls.from_json(text)

    def save(self, path) -> None:
        """Write the canonical JSON form to a file."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
