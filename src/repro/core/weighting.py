"""Weighted CDFs: the tool the paper wants every analysis to use.

"Let today be the first step towards banishing unweighted CDFs to the
dustbins of SIGCOMM history and towards a brighter future full of CDFs
(and research!) that reflect the traffic patterns of the Internet." (§1)

:class:`WeightedCDF` is a small, well-tested empirical-distribution helper
that accepts per-sample weights (user counts, traffic volumes, query
rates). :func:`weighting_contrast` packages the paper's core rhetorical
move — show a metric's distribution unweighted *and* traffic-weighted side
by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError


class WeightedCDF:
    """Empirical CDF with non-negative sample weights."""

    def __init__(self, values: Sequence[float],
                 weights: Optional[Sequence[float]] = None) -> None:
        vals = np.asarray(list(values), dtype=float)
        if vals.size == 0:
            raise ValidationError("empty sample")
        if weights is None:
            wts = np.ones_like(vals)
        else:
            wts = np.asarray(list(weights), dtype=float)
            if wts.shape != vals.shape:
                raise ValidationError("weights shape mismatch")
            if (wts < 0).any():
                raise ValidationError("negative weights")
        total = wts.sum()
        if total <= 0:
            raise ValidationError("weights sum to zero")
        order = np.argsort(vals, kind="stable")
        self._values = vals[order]
        cumulative = np.minimum(np.cumsum(wts[order]) / total, 1.0)
        cumulative[-1] = 1.0  # guard against float round-off
        self._cum = cumulative
        self._weights = wts[order]

    def cdf(self, x: float) -> float:
        """P(value <= x)."""
        idx = np.searchsorted(self._values, x, side="right")
        if idx == 0:
            return 0.0
        return float(self._cum[idx - 1])

    def quantile(self, q: float) -> float:
        """Smallest value v with cdf(v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError("quantile must be in [0, 1]")
        if q == 0.0:
            return float(self._values[0])
        idx = np.searchsorted(self._cum, q, side="left")
        idx = min(idx, len(self._values) - 1)
        return float(self._values[idx])

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def mean(self) -> float:
        return float((self._values * self._weights).sum()
                     / self._weights.sum())

    def points(self) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) step points for plotting."""
        return [(float(v), float(c))
                for v, c in zip(self._values, self._cum)]

    def fraction_at_most(self, x: float) -> float:
        return self.cdf(x)

    def __len__(self) -> int:
        return len(self._values)


@dataclass(frozen=True)
class WeightingContrast:
    """Side-by-side unweighted vs traffic-weighted view of one metric."""

    metric_name: str
    unweighted: WeightedCDF
    weighted: WeightedCDF
    weight_name: str

    def divergence_at(self, x: float) -> float:
        """How much weighting moves the CDF at a threshold — the size of
        the mistake an unweighted analysis would make."""
        return self.weighted.cdf(x) - self.unweighted.cdf(x)

    def median_shift(self) -> float:
        return self.weighted.median - self.unweighted.median


def weighting_contrast(metric_name: str, values: Sequence[float],
                       weights: Sequence[float],
                       weight_name: str = "traffic") -> WeightingContrast:
    """Build the unweighted-vs-weighted comparison for one metric."""
    return WeightingContrast(
        metric_name=metric_name,
        unweighted=WeightedCDF(values),
        weighted=WeightedCDF(values, weights),
        weight_name=weight_name)
