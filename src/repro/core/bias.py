"""Bias correction for activity estimates (§3.1.3).

"Usage of both Google Public DNS and Chromium may be skewed. ... It is
possible that (one-off or periodic) logs from organizations (e.g., CDNs)
can help understand biases in Chromium usage and/or Google Public DNS
usage."

Cache-probing hit counts are proportional to *GDNS-visible* query volume,
so a country with 15% public-DNS adoption looks ~3x less active than an
equally-sized country at 45% — the structural skew the paper worries
about. The corrector consumes a **one-off, coarse** partner snapshot
(per-country traffic aggregates — the kind of thing a CDN can publish
once without exposing anything sensitive) and learns per-country
multipliers that calibrate the map's activity weights. The map stays
public-data-driven day to day; the partner data is a one-time calibration
constant, exactly the §4 "large content providers can help validate it"
role.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import ValidationError
from ..net.ases import ASRegistry
from .activity import ActivityEstimate


@dataclass(frozen=True)
class PartnerSnapshot:
    """One-off per-country traffic aggregates from a partner CDN.

    ``traffic_share_by_country`` must sum to ~1 over the countries the
    partner serves. Coarse by design: no ASes, no prefixes, no time
    series.
    """

    traffic_share_by_country: Dict[str, float]
    partner_name: str = "partner-cdn"

    def __post_init__(self) -> None:
        total = sum(self.traffic_share_by_country.values())
        if not self.traffic_share_by_country:
            raise ValidationError("empty partner snapshot")
        if not 0.98 <= total <= 1.02:
            raise ValidationError(
                f"partner shares sum to {total:.3f}, expected ~1")


@dataclass
class BiasCorrection:
    """Learned per-country multipliers and the corrected estimate."""

    factor_by_country: Dict[str, float]
    corrected: ActivityEstimate
    uncorrectable_weight: float    # weight in countries the partner lacks


def estimate_country_shares(estimate: ActivityEstimate,
                            registry: ASRegistry) -> Dict[str, float]:
    """The map's own per-country activity shares (public side)."""
    shares: Dict[str, float] = {}
    for asn, weight in estimate.by_as.items():
        asys = registry.maybe(asn)
        if asys is None:
            continue
        shares[asys.country_code] = shares.get(asys.country_code, 0.0) \
            + weight
    return shares


def correct_country_bias(estimate: ActivityEstimate,
                         registry: ASRegistry,
                         snapshot: PartnerSnapshot,
                         prefix_asn: Optional[Mapping[int, int]] = None,
                         max_factor: float = 10.0) -> BiasCorrection:
    """Rescale per-country activity to match the partner's aggregates.

    Within a country, relative AS ordering is untouched (the within-
    country signal — Figure 2 — is unbiased because adoption is country-
    level); only cross-country mass moves. Countries absent from the
    snapshot keep factor 1 and are reported as uncorrectable.

    ``prefix_asn`` (pid -> ASN) lets prefix-level weights follow their
    AS's correction; omit it to correct only the AS level.
    """
    if max_factor <= 1.0:
        raise ValidationError("max_factor must exceed 1")
    measured = estimate_country_shares(estimate, registry)
    factors: Dict[str, float] = {}
    uncorrectable = 0.0
    for code, measured_share in measured.items():
        partner_share = snapshot.traffic_share_by_country.get(code)
        if partner_share is None or measured_share <= 0:
            factors[code] = 1.0
            uncorrectable += measured_share
            continue
        raw = partner_share / measured_share
        factors[code] = float(min(max_factor, max(1.0 / max_factor, raw)))

    def factor_for(asn: int) -> float:
        asys = registry.maybe(asn)
        if asys is None:
            return 1.0
        return factors.get(asys.country_code, 1.0)

    by_as = {asn: weight * factor_for(asn)
             for asn, weight in estimate.by_as.items()}
    as_total = sum(by_as.values())
    by_as = {asn: w / as_total for asn, w in by_as.items()}

    by_prefix: Dict[int, float] = {}
    if prefix_asn is not None:
        for pid, weight in estimate.by_prefix.items():
            asn = prefix_asn.get(pid)
            by_prefix[pid] = weight * (factor_for(asn)
                                       if asn is not None else 1.0)
        prefix_total = sum(by_prefix.values())
        if prefix_total > 0:
            by_prefix = {pid: w / prefix_total
                         for pid, w in by_prefix.items()}
    else:
        by_prefix = dict(estimate.by_prefix)

    corrected = ActivityEstimate(
        by_prefix=by_prefix,
        by_as=by_as,
        techniques=estimate.techniques + ("country-bias-corrected",),
        scale_factor=estimate.scale_factor)
    return BiasCorrection(factor_by_country=factors,
                          corrected=corrected,
                          uncorrectable_weight=uncorrectable)
