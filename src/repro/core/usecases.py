"""The §2.1 use cases: what an Internet Traffic Map is *for*.

* :func:`path_length_study` — the iPlane-vs-Google contrast: unweighted,
  almost no paths are short (~2% two ASes long); query-weighted, most
  queries come from ASes that host a server or sit one hop away (~73%).
* :func:`mapping_optimality_study` — the [38]-style CDN optimality view:
  ~31% of routes to the closest site yet ~60% of users mapped optimally,
  plus the anycast "within 500 km" distribution.
* :class:`OutageImpactAnalyzer` — "to assess the impact of an outage in a
  <region, AS>, the map can tell us which popular services are affected,
  which prefixes are affected for those services, what fraction of traffic
  or users are affected, and where the prefixes may be routed instead."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..net.geography import haversine_km
from ..net.prefixes import PrefixTable
from ..net.relationships import ASGraph
from ..net.routing import BgpSimulator
from ..services.catalog import Service
from ..services.hypergiants import RedirectionScheme
from ..services.mapping import SchemeAssignment
from .traffic_map import InternetTrafficMap, MappedSite
from .weighting import WeightedCDF, WeightingContrast, weighting_contrast


# ---------------------------------------------------------------------------
# Path-length study
# ---------------------------------------------------------------------------

@dataclass
class PathLengthStudy:
    """Unweighted vs activity-weighted AS-path-length distributions."""

    contrast: WeightingContrast
    unweighted_short_fraction: float   # paths <= 1 AS hop, each AS equal
    weighted_short_fraction: float     # same, weighted by activity
    offnet_or_adjacent_weighted: float # "host a server or connect directly"

    def divergence(self) -> float:
        return (self.offnet_or_adjacent_weighted
                - self.unweighted_short_fraction)


def iplane_short_fraction(bgp: BgpSimulator, vp_asns: Sequence[int],
                          dst_asns: Sequence[int],
                          max_hops: int = 1) -> float:
    """The traditional-topology baseline of §2.1.

    "When considering iPlane's paths from PlanetLab to all prefixes — a
    traditional academic Internet topology — only 2% of Internet paths
    were two ASes long." Computes the fraction of (vantage, destination)
    paths that are at most ``max_hops`` AS hops (two ASes = one hop),
    counting every destination equally — the unweighted view the paper
    wants retired.
    """
    if not vp_asns or not dst_asns:
        raise ValidationError("need vantage and destination ASes")
    short = 0
    total = 0
    for dst in dst_asns:
        table = bgp.routes_to([dst])
        for vp in vp_asns:
            if vp == dst:
                continue
            length = table.length_of(vp)
            if length is None:
                continue
            total += 1
            if length <= max_hops:
                short += 1
    if total == 0:
        raise ValidationError("no routable pairs")
    return short / total


def path_length_study(graph: ASGraph, bgp: BgpSimulator,
                      client_asns: Sequence[int],
                      weight_by_as: Dict[int, float],
                      target_asn: int,
                      offnet_host_asns: "set[int]" = frozenset()
                      ) -> PathLengthStudy:
    """Path lengths from client ASes to a hypergiant, both ways of
    counting.

    ``offnet_host_asns`` — ASes hosting the target's off-net caches, which
    effectively serve at distance zero.
    """
    if not client_asns:
        raise ValidationError("no client ASes")
    lengths: List[float] = []
    weights: List[float] = []
    near_mass = 0.0
    total_mass = 0.0
    table = bgp.routes_to([target_asn])
    for asn in client_asns:
        weight = weight_by_as.get(asn, 0.0)
        if asn in offnet_host_asns:
            length = 0
        else:
            length = table.length_of(asn)
            if length is None:
                continue
        lengths.append(float(length))
        weights.append(weight)
        total_mass += weight
        # "host a Google server or connect directly with Google or
        # another AS hosting a Google server"
        if asn in offnet_host_asns or length <= 1 or any(
                n in offnet_host_asns for n in graph.neighbors_of(asn)):
            near_mass += weight
    if not lengths:
        raise ValidationError("no routable clients")
    if all(w == 0 for w in weights):
        raise ValidationError("no activity weight on any client")
    contrast = weighting_contrast("as_path_length", lengths, weights,
                                  weight_name="client activity")
    return PathLengthStudy(
        contrast=contrast,
        unweighted_short_fraction=contrast.unweighted.cdf(1.0),
        weighted_short_fraction=contrast.weighted.cdf(1.0),
        offnet_or_adjacent_weighted=(near_mass / total_mass
                                     if total_mass > 0 else 0.0))


# ---------------------------------------------------------------------------
# CDN / anycast mapping optimality
# ---------------------------------------------------------------------------

@dataclass
class MappingOptimalityStudy:
    """The [38]-style optimality numbers for one assignment."""

    route_optimal_fraction: float      # per-prefix, unweighted (~31%)
    user_optimal_fraction: float       # user-weighted (~60%)
    extra_distance_cdf: WeightedCDF    # km beyond the closest site
    within_500km_fraction: float       # anycast efficiency (~80%)


def mapping_optimality_study(assignment: SchemeAssignment,
                             users_per_prefix: np.ndarray,
                             client_pids: Optional[np.ndarray] = None
                             ) -> MappingOptimalityStudy:
    """Score a ground-truth or measured assignment for optimality."""
    if client_pids is None:
        client_pids = np.flatnonzero(users_per_prefix > 0)
    client_pids = np.asarray(client_pids, dtype=int)
    if client_pids.size == 0:
        raise ValidationError("no client prefixes")
    mapped = assignment.site_index[client_pids] >= 0
    pids = client_pids[mapped]
    if pids.size == 0:
        raise ValidationError("no mapped clients")
    optimal = assignment.is_optimal()[pids]
    users = users_per_prefix[pids]
    extra = assignment.extra_km()[pids]
    user_total = float(users.sum())
    return MappingOptimalityStudy(
        route_optimal_fraction=float(optimal.mean()),
        user_optimal_fraction=(float((optimal * users).sum() / user_total)
                               if user_total > 0 else 0.0),
        extra_distance_cdf=WeightedCDF(extra),
        within_500km_fraction=float((extra <= 500.0).mean()))


# ---------------------------------------------------------------------------
# Link-importance study
# ---------------------------------------------------------------------------

@dataclass
class LinkImportanceStudy:
    """The §1 congested-interconnect fallacy quantified.

    "Or each congested interconnect impacts the same amount of traffic."
    Counting links equally versus weighting them by carried volume
    produces very different views of which interconnects matter.
    """

    top_links_by_volume: List[Tuple[Tuple[int, int], float]]
    volume_share_of_top: Dict[int, float]   # k -> share carried by top-k
    volume_gini: float
    total_links: int

    def top_share(self, k: int) -> float:
        try:
            return self.volume_share_of_top[k]
        except KeyError:
            raise ValidationError(f"top-{k} share not computed") from None


def link_importance_study(volume_by_link: Dict[Tuple[int, int], float],
                          top_ks: Sequence[int] = (10, 50, 100)
                          ) -> LinkImportanceStudy:
    """Quantify how unequal interconnect importance is.

    An unweighted analysis treats all ``total_links`` links alike (each
    carries 1/N of the "impact"); the volume-weighted view shows a tiny
    fraction of links carrying most traffic.
    """
    if not volume_by_link:
        raise ValidationError("no link volumes")
    volumes = np.array(sorted(volume_by_link.values(), reverse=True))
    total = float(volumes.sum())
    if total <= 0:
        raise ValidationError("zero total volume")
    shares = {k: float(volumes[:k].sum()) / total
              for k in top_ks if k >= 1}
    # Gini over link volumes.
    ascending = volumes[::-1]
    n = len(ascending)
    ranks = np.arange(1, n + 1)
    gini = float((2 * (ranks * ascending).sum()) / (n * total)
                 - (n + 1) / n)
    ranked = sorted(volume_by_link.items(),
                    key=lambda kv: (-kv[1], kv[0]))
    return LinkImportanceStudy(
        top_links_by_volume=ranked[:max(top_ks)],
        volume_share_of_top=shares,
        volume_gini=gini,
        total_links=n)


# ---------------------------------------------------------------------------
# Outage impact
# ---------------------------------------------------------------------------

@dataclass
class OutageReport:
    """Map-derived answer to "what would an outage of this AS mean?"."""

    asn: int
    activity_share: float                  # fraction of global activity
    affected_prefix_count: int
    affected_services: Tuple[str, ...]     # services serving those users
    offnet_orgs_inside: Tuple[str, ...]    # orgs with caches in the AS
    alternate_transit: bool                # users still routable without AS
    rerouted_service_asns: Dict[str, int]  # service -> fallback host AS

    def headline(self) -> str:
        return (f"AS{self.asn}: {self.activity_share:.1%} of activity, "
                f"{self.affected_prefix_count} prefixes, "
                f"{len(self.affected_services)} services affected")


class OutageImpactAnalyzer:
    """Answers §2.1's outage question from the map alone."""

    def __init__(self, itm: InternetTrafficMap,
                 prefix_table: PrefixTable, graph: ASGraph) -> None:
        self._itm = itm
        self._prefixes = prefix_table
        self._graph = graph

    def assess_as_outage(self, asn: int) -> OutageReport:
        itm = self._itm
        activity_share = itm.users.as_weight(asn)
        affected_pids = [pid for pid in itm.users.detected_prefixes
                         if self._prefixes.asn_of(int(pid)) == asn]

        # Which mapped services serve users in this AS?
        affected_services: List[str] = []
        rerouted: Dict[str, int] = {}
        prefix_asns = self._prefixes.asn_array
        for service_key, mapping in itm.services.user_to_host.items():
            serves_here = False
            fallback: Optional[int] = None
            for client_pid, answer_pid in mapping.items():
                client_asn = int(prefix_asns[client_pid])
                answer_asn = int(prefix_asns[answer_pid])
                if client_asn == asn:
                    serves_here = True
                if answer_asn != asn and fallback is None:
                    fallback = answer_asn
            if serves_here:
                affected_services.append(service_key)
                if fallback is not None:
                    rerouted[service_key] = fallback

        offnet_orgs = tuple(sorted(
            org for org, sites in itm.services.sites_by_org.items()
            if any(site.asn == asn and site.is_offnet for site in sites)))

        # Alternate transit: do the AS's neighbors keep a path to the rest
        # of the graph if this AS disappears? Cheap proxy: the AS is not a
        # cut vertex for its customers (they have another provider/peer).
        alternate = True
        for customer in self._graph.customers_of(asn):
            others = self._graph.neighbors_of(customer) - {asn}
            if not others:
                alternate = False
                break

        return OutageReport(
            asn=asn,
            activity_share=activity_share,
            affected_prefix_count=len(affected_pids),
            affected_services=tuple(sorted(affected_services)),
            offnet_orgs_inside=offnet_orgs,
            alternate_transit=alternate,
            rerouted_service_asns=rerouted)

    def rank_by_impact(self, asns: Sequence[int],
                       k: int = 10) -> List[Tuple[int, float]]:
        """The k highest-activity ASes — where outages hurt most."""
        ranked = sorted(((asn, self._itm.users.as_weight(asn))
                         for asn in asns), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def assess_region_outage(self, asns: Sequence[int]
                             ) -> "RegionOutageReport":
        """Aggregate outage report for a <region, AS-set> (§2.1's
        "outage in a <region, AS>" question at region scope) — e.g. all
        ASes of one country."""
        if not asns:
            raise ValidationError("empty AS set")
        reports = [self.assess_as_outage(asn) for asn in asns]
        services: set = set()
        orgs: set = set()
        for report in reports:
            services.update(report.affected_services)
            orgs.update(report.offnet_orgs_inside)
        return RegionOutageReport(
            asns=tuple(sorted(asns)),
            activity_share=sum(r.activity_share for r in reports),
            affected_prefix_count=sum(r.affected_prefix_count
                                      for r in reports),
            affected_services=tuple(sorted(services)),
            offnet_orgs_inside=tuple(sorted(orgs)))


@dataclass
class RegionOutageReport:
    """Aggregate impact of losing a whole set of ASes (e.g. a country)."""

    asns: Tuple[int, ...]
    activity_share: float
    affected_prefix_count: int
    affected_services: Tuple[str, ...]
    offnet_orgs_inside: Tuple[str, ...]

    def headline(self) -> str:
        return (f"{len(self.asns)} ASes: {self.activity_share:.1%} of "
                f"activity, {self.affected_prefix_count} prefixes, "
                f"{len(self.affected_services)} services affected")


# ---------------------------------------------------------------------------
# Map-only queries (the ``repro.serve`` endpoint semantics)
# ---------------------------------------------------------------------------
#
# The query service answers from a read-optimized MapStore
# (:mod:`repro.core.mapstore`); the functions below are the *reference*
# semantics, computed straight off the dict-based map. The store is
# regression-locked to answer bit-identically to these.

def map_path_length_contrast(itm: InternetTrafficMap,
                             target_asn: int) -> WeightingContrast:
    """Unweighted vs activity-weighted AS-path-length CDFs to one
    destination AS, from the map alone (the §2.1 "weighted CDF for
    AS X" question).

    Samples are the map's routes component entries ``(src, target_asn)``
    with a predicted path; each sample's weight is ``src``'s activity
    share from the users component. Iteration order is the routes dict's
    insertion order, which the serialisation preserves — answers are
    bit-stable across round trips.
    """
    lengths: List[float] = []
    weights: List[float] = []
    for (src, dst), path in itm.routes.paths.items():
        if dst != target_asn or path is None:
            continue
        lengths.append(float(len(path) - 1))
        weights.append(itm.users.as_weight(src))
    if not lengths:
        raise ValidationError(
            f"map covers no predicted routes to AS{target_asn}")
    if all(w == 0 for w in weights):
        raise ValidationError(
            f"no activity weight on any AS routed to AS{target_asn}")
    return weighting_contrast("as_path_length", lengths, weights,
                              weight_name="client activity")


@dataclass(frozen=True)
class SiteCandidate:
    """One ranked alternative serving site for an anycast answer."""

    organization: str
    prefix_id: int
    asn: int
    distance_km: Optional[float]    # None when either city is unknown
    is_offnet: bool


@dataclass(frozen=True)
class AnycastAnswer:
    """Where a client prefix is served, and its best failover sites."""

    service_key: str
    client_pid: int
    host_pid: int
    host_asn: Optional[int]         # None when the site is unknown
    organization: Optional[str]     # org owning the serving site
    candidates: Tuple[SiteCandidate, ...]


def rank_site_candidates(serving: MappedSite,
                         pool: Sequence[MappedSite],
                         k: int) -> Tuple[SiteCandidate, ...]:
    """The k best alternative sites, nearest the current serving site.

    Sites with a known estimated city rank by great-circle distance from
    the serving site's city; city-less sites sort after them. Ties break
    on (ASN, prefix id) so the ranking is total and deterministic.
    """
    def sort_key(site: MappedSite):
        if serving.estimated_city is None or site.estimated_city is None:
            return (1, 0.0, site.asn, site.prefix_id)
        distance = haversine_km(
            serving.estimated_city.lat, serving.estimated_city.lon,
            site.estimated_city.lat, site.estimated_city.lon)
        return (0, distance, site.asn, site.prefix_id)

    ranked = sorted(pool, key=sort_key)[:max(0, k)]
    out = []
    for site in ranked:
        if serving.estimated_city is None or site.estimated_city is None:
            distance = None
        else:
            distance = haversine_km(
                serving.estimated_city.lat, serving.estimated_city.lon,
                site.estimated_city.lat, site.estimated_city.lon)
        out.append(SiteCandidate(
            organization=site.organization, prefix_id=site.prefix_id,
            asn=site.asn, distance_km=distance,
            is_offnet=site.is_offnet))
    return tuple(out)


def anycast_site_candidates(itm: InternetTrafficMap, service_key: str,
                            client_pid: int, k: int = 3
                            ) -> AnycastAnswer:
    """The §2.1 anycast-placement question, from the map alone.

    For client prefix ``client_pid`` and one mapped service: which site
    serves it today (the ECS user→host answer), and which k sites of the
    same organisation are the best alternatives — "where the prefixes
    may be routed instead". Organisations are scanned in sorted order so
    a prefix hosted by several deployments resolves deterministically.
    """
    mapping = itm.services.user_to_host.get(service_key)
    if mapping is None:
        raise ValidationError(
            f"service {service_key!r} has no user->host mapping")
    host_pid = mapping.get(int(client_pid))
    if host_pid is None:
        raise ValidationError(
            f"prefix {client_pid} is not mapped by {service_key!r}")
    serving: Optional[MappedSite] = None
    org_of: Optional[str] = None
    for org in sorted(itm.services.sites_by_org):
        for site in itm.services.sites_by_org[org]:
            if site.prefix_id == host_pid:
                serving, org_of = site, org
                break
        if serving is not None:
            break
    candidates: Tuple[SiteCandidate, ...] = ()
    if serving is not None:
        pool = [s for s in itm.services.sites_by_org[org_of]
                if s.prefix_id != host_pid]
        candidates = rank_site_candidates(serving, pool, k)
    return AnycastAnswer(
        service_key=service_key,
        client_pid=int(client_pid),
        host_pid=int(host_pid),
        host_asn=serving.asn if serving is not None else None,
        organization=org_of,
        candidates=candidates)
