"""The paper's contribution: the Internet Traffic Map (ITM) — its data
structures, the builder that fuses measurements into it, activity
estimation, path prediction, link recommendation, weighted-CDF machinery,
validation against ground truth, and the §2.1 use cases."""
