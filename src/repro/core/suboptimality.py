"""Predicting anycast suboptimality from public features (§3.2.3).

"We anticipate that the main challenge is in inferring in which cases
this optimality is likely violated and where clients with suboptimal
routing are directed."

An empirical finding of this reproduction (see the E6 benchmark): the
obvious public features — shared PeeringDB facilities, distance to the
operator's nearest site, provider count — carry almost no signal about
which networks suffer anycast inflation. The feature that *does* work is
the traffic map's own users component: **low-activity networks are the
ones operators have not engineered good paths for** (they peer with big
eyeballs first), so inverse map activity ranks inflation risk well above
chance. The map predicting where anycast goes wrong is exactly the kind
of cross-component question §2.1 says a map should answer.

The weak features are still computed and reported per AS — they document
the negative result rather than hiding it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..net.ases import ASRegistry
from ..net.facilities import PeeringRegistry
from ..net.geography import City, haversine_km
from ..net.relationships import ASGraph

# Weights: map activity dominates; the geometric features get token
# weights (they act as tie-breakers and keep the diagnostics visible).
ACTIVITY_WEIGHT = 1.0
COLOCATION_WEIGHT = 0.05
PROXIMITY_WEIGHT = 0.05


@dataclass(frozen=True)
class SuboptimalityRisk:
    """Predicted inflation risk for one client AS."""

    asn: int
    score: float                 # higher = more likely suboptimal
    activity_weight: float       # the map's estimate for this AS
    colocated_with_operator: bool
    km_to_nearest_site: float
    provider_count: int


class SuboptimalityPredictor:
    """Ranks client ASes by anycast-inflation risk from public data."""

    def __init__(self, registry: ASRegistry, peeringdb: PeeringRegistry,
                 public_graph: ASGraph, operator_asn: int,
                 site_cities: Sequence[City],
                 activity_by_as: Dict[int, float]) -> None:
        if not site_cities:
            raise ValidationError("no operator sites given")
        if not activity_by_as:
            raise ValidationError("need the map's activity weights")
        self._registry = registry
        self._pdb = peeringdb
        self._graph = public_graph
        self._operator = operator_asn
        self._sites = list(site_cities)
        self._activity = activity_by_as
        logs = [math.log10(max(w, 1e-12))
                for w in activity_by_as.values()]
        self._log_min = min(logs)
        self._log_max = max(logs)

    def _normalized_log_activity(self, asn: int) -> float:
        """Activity on a log scale in [0, 1]; 0 = quietest, 1 = busiest.
        ASes unknown to the map count as quietest."""
        weight = self._activity.get(asn, 0.0)
        if weight <= 0 or self._log_max <= self._log_min:
            return 0.0
        log_w = math.log10(max(weight, 1e-12))
        return (log_w - self._log_min) / (self._log_max - self._log_min)

    def risk_for(self, asn: int) -> SuboptimalityRisk:
        """Score one client AS (deterministic, public features only)."""
        asys = self._registry.get(asn)
        colocated = self._pdb.colocated(asn, self._operator)
        nearest = min(haversine_km(asys.home_city.lat,
                                   asys.home_city.lon,
                                   c.lat, c.lon) for c in self._sites)
        providers = len(self._graph.providers_of(asn))
        score = (ACTIVITY_WEIGHT * (1.0 - self._normalized_log_activity(asn))
                 + COLOCATION_WEIGHT * (0.0 if colocated else 1.0)
                 + PROXIMITY_WEIGHT * min(1.0, nearest / 5000.0))
        return SuboptimalityRisk(
            asn=asn, score=score,
            activity_weight=self._activity.get(asn, 0.0),
            colocated_with_operator=colocated,
            km_to_nearest_site=nearest,
            provider_count=providers)

    def rank(self, asns: Sequence[int]) -> List[SuboptimalityRisk]:
        """All client risks, highest first."""
        risks = [self.risk_for(asn) for asn in asns]
        risks.sort(key=lambda r: (-r.score, r.asn))
        return risks


def evaluate_risk_ranking(risks: Sequence[SuboptimalityRisk],
                          extra_km_by_asn: Dict[int, float],
                          inflation_threshold_km: float = 500.0
                          ) -> float:
    """AUC of the risk score against true >threshold inflation."""
    scored = [(r.score, extra_km_by_asn[r.asn]) for r in risks
              if r.asn in extra_km_by_asn]
    positives = [s for s, extra in scored
                 if extra > inflation_threshold_km]
    negatives = [s for s, extra in scored
                 if extra <= inflation_threshold_km]
    if not positives or not negatives:
        raise ValidationError("need both inflated and optimal clients")
    pos = np.asarray(positives)
    neg = np.asarray(negatives)
    wins = (pos[:, None] > neg[None, :]).sum()
    ties = (pos[:, None] == neg[None, :]).sum()
    return float((wins + 0.5 * ties) / (len(pos) * len(neg)))


def true_inflation_by_as(registry: ASRegistry, prefix_table,
                         extra_km: np.ndarray) -> Dict[int, float]:
    """Ground-truth AS-level inflation (validation side): the median
    extra distance of the AS's home-city prefixes — where the entry-point
    logic, not intra-AS geography, drives the result."""
    result: Dict[int, float] = {}
    for asys in registry.eyeballs():
        pids = [p for p in prefix_table.prefixes_of_as(asys.asn)
                if prefix_table.city_of(p) == asys.home_city]
        values = [float(extra_km[p]) for p in pids
                  if np.isfinite(extra_km[p])]
        if values:
            result[asys.asn] = float(np.median(values))
    return result
