"""Consumer facade: "use the map to weight your analysis" in one call.

The paper's ask of the community (§4): "we hope the research community
both uses and encourages others to use the Internet traffic map for
weighting analysis". This module is the adapter a downstream researcher
would import: hand it your per-AS (or per-prefix) metric, get back the
unweighted-vs-map-weighted contrast, quantiles and a rendered table —
without touching the map internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ValidationError
from .traffic_map import InternetTrafficMap
from .weighting import WeightedCDF, WeightingContrast, weighting_contrast


@dataclass
class WeightedStudy:
    """A finished weighting study over one metric."""

    metric_name: str
    contrast: WeightingContrast
    covered_weight: float      # map weight carried by the studied keys
    keys_used: int
    keys_without_weight: int

    def summary_rows(self,
                     quantiles: Tuple[float, ...] = (0.1, 0.5, 0.9)
                     ) -> List[Tuple[str, str, str]]:
        rows = []
        for q in quantiles:
            rows.append((f"p{int(q * 100)}",
                         f"{self.contrast.unweighted.quantile(q):.3g}",
                         f"{self.contrast.weighted.quantile(q):.3g}"))
        rows.append(("mean",
                     f"{self.contrast.unweighted.mean():.3g}",
                     f"{self.contrast.weighted.mean():.3g}"))
        return rows


class MapWeighter:
    """Weights arbitrary metrics with the map's activity estimates."""

    def __init__(self, itm: InternetTrafficMap) -> None:
        self._itm = itm

    # -- weights -----------------------------------------------------------

    def as_weight(self, asn: int) -> float:
        return self._itm.users.as_weight(asn)

    def prefix_weight(self, pid: int) -> float:
        return self._itm.users.prefix_weight(pid)

    # -- studies -----------------------------------------------------------

    def study_as_metric(self, metric_by_as: Mapping[int, float],
                        metric_name: str = "metric",
                        drop_zero_weight: bool = False) -> WeightedStudy:
        """Contrast a per-AS metric unweighted vs activity-weighted.

        ASes absent from the map get zero weight; by default they still
        appear in the unweighted view (that is the point of the
        contrast), unless ``drop_zero_weight``.
        """
        if not metric_by_as:
            raise ValidationError("empty metric")
        values: List[float] = []
        weights: List[float] = []
        skipped = 0
        for asn, value in sorted(metric_by_as.items()):
            weight = self.as_weight(asn)
            if weight == 0.0:
                skipped += 1
                if drop_zero_weight:
                    continue
            values.append(float(value))
            weights.append(weight)
        if not values or sum(weights) <= 0:
            raise ValidationError("no map weight on any studied AS")
        contrast = weighting_contrast(metric_name, values, weights,
                                      weight_name="map activity")
        return WeightedStudy(
            metric_name=metric_name, contrast=contrast,
            covered_weight=float(sum(weights)),
            keys_used=len(values), keys_without_weight=skipped)

    def study_prefix_metric(self, metric_by_prefix: Mapping[int, float],
                            metric_name: str = "metric") -> WeightedStudy:
        """Same contrast at /24 granularity."""
        if not metric_by_prefix:
            raise ValidationError("empty metric")
        values: List[float] = []
        weights: List[float] = []
        skipped = 0
        for pid, value in sorted(metric_by_prefix.items()):
            weight = self.prefix_weight(pid)
            if weight == 0.0:
                skipped += 1
            values.append(float(value))
            weights.append(weight)
        if sum(weights) <= 0:
            raise ValidationError("no map weight on any studied prefix")
        contrast = weighting_contrast(metric_name, values, weights,
                                      weight_name="map activity")
        return WeightedStudy(
            metric_name=metric_name, contrast=contrast,
            covered_weight=float(sum(weights)),
            keys_used=len(values), keys_without_weight=skipped)

    def study_computed_metric(self, asns: Iterable[int],
                              metric_fn: Callable[[int], Optional[float]],
                              metric_name: str = "metric"
                              ) -> WeightedStudy:
        """Compute a metric per AS on the fly (None skips the AS)."""
        metric: Dict[int, float] = {}
        for asn in asns:
            value = metric_fn(asn)
            if value is not None:
                metric[asn] = value
        return self.study_as_metric(metric, metric_name=metric_name)
