"""Commonly-used routes (§3.3).

"By trying to identify routes *commonly used* between these services and
users, rather than the exact set of routes in use at a particular point
in time, we simplify the problem considerably while still enabling
interesting use cases."

A route is *common* if it survives the Internet's churn: transient link
failures, maintenance, backup-path activations. The estimator samples the
route under random perturbations of the topology (dropping a small
fraction of non-essential links per sample) and reports the modal path
with a confidence — the fraction of samples that used it.

Run against the public topology this yields the map's routes component
with confidence attached; run against the actual topology (validation
side) it defines the ground-truth "commonly used" notion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..net.relationships import ASGraph, Relationship
from ..net.routing import BgpSimulator


@dataclass(slots=True)
class CommonRoute:
    """The modal route for one pair, with stability evidence."""

    src: int
    dst: int
    path: Optional[Tuple[int, ...]]    # None = mostly unreachable
    confidence: float                  # fraction of samples on this path
    distinct_paths: int                # path diversity under churn
    samples: int

    @property
    def is_stable(self) -> bool:
        """A route used in >2/3 of samples counts as "commonly used"."""
        return self.path is not None and self.confidence > 2 / 3


class CommonRouteEstimator:
    """Samples routes under random link churn."""

    def __init__(self, graph: ASGraph, rng: np.random.Generator,
                 churn_fraction: float = 0.03,
                 samples: int = 12) -> None:
        if not 0.0 <= churn_fraction < 0.5:
            raise ValidationError("churn_fraction must be in [0, 0.5)")
        if samples < 1:
            raise ValidationError("need at least one sample")
        self._graph = graph
        self._rng = rng
        self._churn = churn_fraction
        self._samples = samples

    def _perturbed_graph(self) -> ASGraph:
        """Copy of the graph with a random sliver of links removed.

        Only links whose removal cannot disconnect a single-homed
        customer are eligible (maintenance does not cut a stub's only
        uplink for a whole sample period, and removing it would just
        produce trivial unreachability noise).
        """
        perturbed = self._graph.copy()
        edges = sorted(perturbed.edges(), key=lambda e: (e[0], e[1]))
        n_drop = int(len(edges) * self._churn)
        if n_drop == 0:
            return perturbed
        order = self._rng.permutation(len(edges))
        dropped = 0
        for idx in order:
            if dropped >= n_drop:
                break
            a, b, rel = edges[idx]
            if rel is Relationship.C2P:
                # a is the customer; keep its last provider.
                if len(perturbed.providers_of(a)) <= 1:
                    continue
            perturbed.remove_link(a, b)
            dropped += 1
        return perturbed

    def estimate(self, pairs: Sequence[Tuple[int, int]]
                 ) -> Dict[Tuple[int, int], CommonRoute]:
        """Common route per pair over the sampled perturbations."""
        if not pairs:
            raise ValidationError("no pairs given")
        counts: Dict[Tuple[int, int], Dict[Optional[Tuple[int, ...]], int]]
        counts = {pair: {} for pair in pairs}
        for __ in range(self._samples):
            bgp = BgpSimulator(self._perturbed_graph())
            by_dst: Dict[int, List[int]] = {}
            for src, dst in pairs:
                by_dst.setdefault(dst, []).append(src)
            for dst, sources in by_dst.items():
                paths = bgp.routes_to([dst]).paths_for(sources)
                for src in sources:
                    tally = counts[(src, dst)]
                    path = paths[src]
                    tally[path] = tally.get(path, 0) + 1
        results: Dict[Tuple[int, int], CommonRoute] = {}
        for pair, tally in counts.items():
            real_paths = {p: c for p, c in tally.items() if p is not None}
            if real_paths:
                best_path = max(sorted(real_paths, key=str),
                                key=lambda p: real_paths[p])
                confidence = real_paths[best_path] / self._samples
            else:
                best_path = None
                confidence = tally.get(None, 0) / self._samples
            results[pair] = CommonRoute(
                src=pair[0], dst=pair[1], path=best_path,
                confidence=confidence,
                distinct_paths=len(real_paths),
                samples=self._samples)
        return results


def common_route_agreement(predicted: Dict[Tuple[int, int], CommonRoute],
                           actual: Dict[Tuple[int, int], CommonRoute]
                           ) -> float:
    """Fraction of pairs where the predicted common route equals the
    ground-truth common route (validation metric for the routes
    component at 'commonly used' granularity)."""
    shared = [pair for pair in predicted
              if pair in actual and actual[pair].path is not None]
    if not shared:
        raise ValidationError("no comparable pairs")
    agree = sum(1 for pair in shared
                if predicted[pair].path == actual[pair].path)
    return agree / len(shared)
