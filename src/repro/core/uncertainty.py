"""Uncertainty quantification for the users component.

The paper asks for *relative* activity levels; a responsible map should
say how certain those levels are. Probe hits are binomial draws, so the
per-AS hit totals carry quantifiable sampling noise. The bootstrap here
resamples per-(domain, prefix) hit counts and rebuilds the per-AS
activity shares, yielding confidence intervals and a
distinguishability test for AS pairs ("is prefix1 really ~2x prefix2" —
the §2 use-case phrasing — or is that within noise?).

Beyond sampling noise there is *coverage* uncertainty: a degraded build
(fault injection, failed campaigns) delivers a map whose components
simply saw less of the Internet. :func:`coverage_caveats` turns the
map's per-component coverage records into explicit caveats an analysis
should carry alongside the confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..measure.cache_probing import CacheProbingResult
from ..net.prefixes import PrefixTable
from .traffic_map import InternetTrafficMap


@dataclass
class ActivityInterval:
    """Bootstrap confidence interval on one AS's activity share."""

    asn: int
    point: float
    low: float
    high: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


@dataclass
class UncertaintyReport:
    """Per-AS intervals plus pairwise distinguishability."""

    intervals: Dict[int, ActivityInterval]
    replicates: int
    confidence: float

    def interval(self, asn: int) -> ActivityInterval:
        try:
            return self.intervals[asn]
        except KeyError:
            raise ValidationError(f"no interval for AS{asn}") from None

    def distinguishable(self, a: int, b: int) -> bool:
        """Whether two ASes' activities differ beyond sampling noise
        (disjoint confidence intervals)."""
        ia, ib = self.interval(a), self.interval(b)
        return ia.low > ib.high or ib.low > ia.high


@dataclass(frozen=True)
class CoverageCaveat:
    """One component's coverage shortfall, stated for the analyst."""

    component: str
    coverage: float
    missing_techniques: Tuple[str, ...]
    detail: str

    @property
    def severe(self) -> bool:
        """Whether the component lost most of its input."""
        return self.coverage < 0.5


def coverage_caveats(itm: InternetTrafficMap) -> List[CoverageCaveat]:
    """Caveats for every degraded component of a map (empty when clean).

    Reads the per-component :class:`ComponentCoverage` records the
    builder attaches; maps built before coverage reporting (or
    deserialised from old artefacts) yield no caveats.
    """
    caveats: List[CoverageCaveat] = []
    for name in sorted(itm.coverage):
        record = itm.coverage[name]
        if not record.degraded:
            continue
        missing = tuple(sorted(set(record.techniques_intended)
                               - set(record.techniques_delivered)))
        parts = [f"{name} component delivered "
                 f"{record.coverage:.0%} of its measurement units"]
        if missing:
            parts.append(f"techniques lost: {', '.join(missing)}")
        parts.extend(record.notes)
        caveats.append(CoverageCaveat(
            component=name,
            coverage=record.coverage,
            missing_techniques=missing,
            detail="; ".join(parts)))
    return caveats


def bootstrap_activity(result: CacheProbingResult,
                       prefix_table: PrefixTable,
                       replicates: int = 200,
                       confidence: float = 0.9,
                       rng: Optional[np.random.Generator] = None,
                       asns: Optional[Sequence[int]] = None
                       ) -> UncertaintyReport:
    """Bootstrap per-AS activity shares from a probing campaign.

    Each replicate redraws every (domain, prefix) hit count from
    Binomial(rounds, p_hat) with p_hat the observed hit fraction — the
    parametric bootstrap matching the campaign's sampling process.
    """
    if not 0.5 < confidence < 1.0:
        raise ValidationError("confidence must be in (0.5, 1)")
    if replicates < 10:
        raise ValidationError("need at least 10 replicates")
    rng = rng or np.random.default_rng(0)

    p_hat = result.hits / float(result.rounds)
    asn_of_col = prefix_table.asn_array[result.prefix_ids]
    keep = (np.isin(asn_of_col, np.asarray(list(asns), dtype=np.int64))
            if asns is not None else np.ones(len(asn_of_col), dtype=bool))
    unique_asns, inverse = np.unique(asn_of_col[keep],
                                     return_inverse=True)
    p_kept = p_hat[:, keep]

    point_hits = result.hits[:, keep].sum(axis=0).astype(float)
    point_by_as = np.bincount(inverse, weights=point_hits,
                              minlength=len(unique_asns))
    point_total = point_by_as.sum()
    if point_total <= 0:
        raise ValidationError("no hits to bootstrap")

    samples = np.empty((replicates, len(unique_asns)))
    for r in range(replicates):
        redraw = rng.binomial(result.rounds, p_kept).sum(axis=0)
        by_as = np.bincount(inverse, weights=redraw.astype(float),
                            minlength=len(unique_asns))
        total = by_as.sum()
        samples[r] = by_as / total if total > 0 else 0.0

    alpha = (1.0 - confidence) / 2.0
    lows = np.quantile(samples, alpha, axis=0)
    highs = np.quantile(samples, 1.0 - alpha, axis=0)
    intervals = {
        int(asn): ActivityInterval(
            asn=int(asn),
            point=float(point_by_as[i] / point_total),
            low=float(lows[i]), high=float(highs[i]))
        for i, asn in enumerate(unique_asns)}
    return UncertaintyReport(intervals=intervals, replicates=replicates,
                             confidence=confidence)
