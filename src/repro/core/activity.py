"""Relative-activity estimation and technique fusion (§3.1.3).

"Realizing the best Internet traffic map attainable will require combining
the techniques and designing methods to best mitigate their limitations."

Inputs:

* cache probing — per-*prefix* hit counts (proportional to query rate in
  the unsaturated regime) but only for prefixes whose queries traverse the
  probed public resolver;
* root-log crawling — per-*AS* Chromium-probe volume (a direct relative
  activity measure) but blind to public-DNS-dominant networks;
* optionally IP ID velocities — per-AS forwarded-traffic proxies.

Fusion strategy (simple, transparent, documented):

1. per-AS cache-hit totals and root-log volumes are each normalised;
2. on ASes seen by both, a robust scale factor (median ratio) aligns the
   root-log unit with the cache-hit unit;
3. the fused AS activity is the cache-hit estimate where present, the
   rescaled root-log estimate otherwise;
4. prefix-level activity distributes each AS's fused weight over its
   detected prefixes proportionally to their hit counts (uniform when the
   AS was only seen in root logs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ValidationError
from ..net.ases import ASRegistry
from ..net.prefixes import PrefixTable
from ..measure.cache_probing import CacheProbingResult, TimedProbingResult
from ..measure.rootlogs import RootLogCrawlResult


@dataclass
class ActivityEstimate:
    """Fused relative activity (each dict normalised to sum to 1)."""

    by_prefix: Dict[int, float]
    by_as: Dict[int, float]
    techniques: Tuple[str, ...]
    scale_factor: Optional[float]   # root-log unit -> cache-hit unit

    def as_weight(self, asn: int) -> float:
        return self.by_as.get(asn, 0.0)


def _normalise(d: Dict[int, float]) -> Dict[int, float]:
    total = sum(d.values())
    if total <= 0:
        return {}
    return {k: v / total for k, v in d.items()}


def fuse_activity(prefix_table: PrefixTable,
                  cache_result: Optional[CacheProbingResult] = None,
                  rootlog_result: Optional[RootLogCrawlResult] = None,
                  rootlog_attribution: Optional[Dict[int, float]] = None,
                  ipid_activity: Optional[Dict[int, float]] = None
                  ) -> ActivityEstimate:
    """Combine the available §3.1.2/§3.1.3 signals. See module docstring.

    ``rootlog_attribution`` — optional replacement for the root-log
    crawl's per-AS volumes, e.g. the output of
    :func:`repro.measure.resolver_assoc.attribute_rootlog_volume`, which
    drops the clients-in-resolver-AS assumption.

    ``ipid_activity`` — optional per-AS IP-ID-velocity estimates; used as
    a last-resort signal for ASes no DNS technique covered.
    """
    if cache_result is None and rootlog_result is None \
            and rootlog_attribution is None:
        raise ValidationError("need at least one activity signal")
    techniques = []

    cache_by_as: Dict[int, float] = {}
    prefix_hits: Dict[int, float] = {}
    if cache_result is not None:
        techniques.append("cache-probing")
        hits = cache_result.hits_per_prefix()
        for pid, count in zip(cache_result.prefix_ids, hits):
            if count > 0:
                prefix_hits[int(pid)] = float(count)
        cache_by_as = {asn: v for asn, v in
                       cache_result.hit_counts_by_as(prefix_table).items()
                       if v > 0}

    root_by_as: Dict[int, float] = {}
    if rootlog_attribution is not None:
        techniques.append("root-logs+association")
        root_by_as = {asn: vol for asn, vol in rootlog_attribution.items()
                      if vol > 0}
    elif rootlog_result is not None:
        techniques.append("root-logs")
        root_by_as = {asn: vol for asn, vol
                      in rootlog_result.volume_by_as.items()
                      if vol >= rootlog_result.min_query_threshold}

    scale: Optional[float] = None
    fused_as: Dict[int, float] = dict(cache_by_as)
    if root_by_as and cache_by_as:
        overlap = sorted(set(cache_by_as) & set(root_by_as))
        if overlap:
            ratios = np.array([cache_by_as[a] / root_by_as[a]
                               for a in overlap])
            scale = float(np.median(ratios))
        else:
            # No overlap: align total masses instead.
            scale = sum(cache_by_as.values()) / sum(root_by_as.values())
        for asn, vol in root_by_as.items():
            if asn not in fused_as:
                fused_as[asn] = vol * scale
    elif root_by_as:
        fused_as = dict(root_by_as)

    # IP ID velocities: a weak, last-resort per-AS signal for networks
    # the DNS-side techniques missed entirely.
    if ipid_activity:
        techniques.append("ipid-velocity")
        missing = {asn: v for asn, v in ipid_activity.items()
                   if asn not in fused_as and v > 0}
        if missing and fused_as:
            # Align scales: match the median covered-AS weight.
            median_known = float(np.median(list(fused_as.values())))
            median_new = float(np.median(list(missing.values())))
            factor = median_known / median_new if median_new > 0 else 0.0
            for asn, value in missing.items():
                fused_as[asn] = value * factor
        elif missing:
            fused_as = dict(missing)

    by_as = _normalise(fused_as)
    if not by_as:
        raise ValidationError("no activity detected by any technique")

    # Prefix-level: split each AS's weight over its detected prefixes.
    by_prefix: Dict[int, float] = {}
    hits_by_as_prefixes: Dict[int, Dict[int, float]] = {}
    for pid, count in prefix_hits.items():
        asn = prefix_table.asn_of(pid)
        hits_by_as_prefixes.setdefault(asn, {})[pid] = count
    for asn, weight in by_as.items():
        detected = hits_by_as_prefixes.get(asn)
        if detected:
            total = sum(detected.values())
            for pid, count in detected.items():
                by_prefix[pid] = weight * count / total
        else:
            # Root-log-only AS: spread uniformly over its prefixes.
            pids = prefix_table.prefixes_of_as(asn)
            if pids:
                share = weight / len(pids)
                for pid in pids:
                    by_prefix[pid] = share

    return ActivityEstimate(
        by_prefix=by_prefix, by_as=by_as,
        techniques=tuple(techniques), scale_factor=scale)


@dataclass
class HourlyActivityEstimate:
    """Estimated 24-hour activity profiles per country (Table 1's
    desired *hourly* temporal precision, recovered from time-sliced
    cache probing)."""

    probe_hours_utc: Tuple[float, ...]
    profile_by_country: Dict[str, np.ndarray]   # hit counts per hour

    def peak_utc_hour(self, country_code: str) -> float:
        profile = self.profile_by_country.get(country_code)
        if profile is None or profile.sum() == 0:
            raise ValidationError(
                f"no hourly signal for {country_code!r}")
        return float(self.probe_hours_utc[int(np.argmax(profile))])

    def normalised_profile(self, country_code: str) -> np.ndarray:
        profile = self.profile_by_country[country_code].astype(float)
        total = profile.sum()
        if total <= 0:
            raise ValidationError(
                f"no hourly signal for {country_code!r}")
        return profile / total


def estimate_hourly_activity(timed_result: TimedProbingResult,
                             prefix_table: PrefixTable,
                             registry: ASRegistry
                             ) -> HourlyActivityEstimate:
    """Aggregate time-sliced probing hits into per-country profiles.

    Grouping is by the origin AS's home country — public information (an
    AS registry lookup), so this stays a legal measurement-side step.
    """
    pids_by_country: Dict[str, list] = {}
    for pid in timed_result.prefix_ids:
        asys = registry.maybe(prefix_table.asn_of(int(pid)))
        if asys is None:
            continue
        pids_by_country.setdefault(asys.country_code, []).append(int(pid))
    profiles = {
        code: timed_result.hourly_profile_for(np.asarray(pids))
        for code, pids in pids_by_country.items()}
    return HourlyActivityEstimate(
        probe_hours_utc=tuple(timed_result.probe_hours_utc),
        profile_by_country=profiles)
