"""What-if engine: validate the map's outage predictions against the
world's actual reaction.

§2.1 promises the map can assess outage impact. A reproduction can do one
better: actually *take the AS down* in the simulated Internet, recompute
routing, and compare the ground-truth blast radius with what the map
predicted from public data alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ValidationError
from ..net.relationships import ASGraph
from ..net.routing import BgpSimulator, compute_routes
from ..scenario import Scenario
from .traffic_map import InternetTrafficMap
from .usecases import OutageImpactAnalyzer, OutageReport


@dataclass
class GroundTruthOutage:
    """What actually happens when an AS disappears."""

    asn: int
    true_traffic_share: float           # bytes sourced by its prefixes
    true_user_share: float              # users in the AS
    disconnected_asns: Set[int]         # ASes losing all hypergiant reach
    services_losing_local_serving: Tuple[str, ...]


@dataclass
class OutageComparison:
    """Map prediction vs ground truth for one outage."""

    report: OutageReport
    truth: GroundTruthOutage

    @property
    def activity_estimate_error(self) -> float:
        """|map activity share - true traffic share| (absolute)."""
        return abs(self.report.activity_share
                   - self.truth.true_traffic_share)

    @property
    def service_recall(self) -> float:
        """Fraction of truly-affected services the map listed."""
        truth = set(self.truth.services_losing_local_serving)
        if not truth:
            return 1.0
        predicted = set(self.report.affected_services)
        return len(truth & predicted) / len(truth)


class WhatIfEngine:
    """Applies outages to the ground-truth world."""

    def __init__(self, scenario: Scenario) -> None:
        self._scenario = scenario

    def ground_truth_outage(self, asn: int) -> GroundTruthOutage:
        """Remove the AS; measure the actual impact."""
        scenario = self._scenario
        if asn not in scenario.graph:
            raise ValidationError(f"ASN {asn} not in the topology")

        # Traffic and users actually inside the AS.
        bytes_by_as = scenario.traffic.bytes_by_as()
        total_bytes = sum(bytes_by_as.values())
        true_traffic = bytes_by_as.get(asn, 0.0) / total_bytes \
            if total_bytes else 0.0
        users_by_as = scenario.population.users_by_as()
        total_users = sum(users_by_as.values())
        true_users = users_by_as.get(asn, 0.0) / total_users \
            if total_users else 0.0

        # Rebuild the graph without the AS and check who still reaches
        # the hypergiants (reachability of content, the user-facing
        # definition of "connected").
        degraded = self._graph_without(scenario.graph, asn)
        hg_asns = [a for a in scenario.topology.hypergiant_asns.values()
                   if a != asn]
        reachable: Set[int] = set()
        if hg_asns:
            reachable = compute_routes(degraded, hg_asns).holder_set()
        disconnected = {
            candidate for candidate in scenario.graph.asns
            if candidate != asn and candidate not in reachable
            and users_by_as.get(candidate, 0.0) > 0}

        # Services that lose in-AS serving capacity (off-nets/hosting).
        losing: List[str] = []
        for service in scenario.catalog:
            if service.host_key is None:
                pid = scenario.deployment.stub_hosting.get(service.key)
                if pid is not None and \
                        scenario.prefixes.asn_of(pid) == asn:
                    losing.append(service.key)
                continue
            site = scenario.deployment.offnet_site_in_as(
                asn, service.host_key)
            if site is not None:
                losing.append(service.key)

        return GroundTruthOutage(
            asn=asn,
            true_traffic_share=true_traffic,
            true_user_share=true_users,
            disconnected_asns=disconnected,
            services_losing_local_serving=tuple(sorted(losing)))

    @staticmethod
    def _graph_without(graph: ASGraph, asn: int) -> ASGraph:
        degraded = ASGraph()
        for node in graph.asns:
            if node != asn:
                degraded.add_as(node)
        for a, b, rel in graph.edges():
            if asn in (a, b):
                continue
            if rel.name == "P2P":
                degraded.add_p2p(a, b)
            else:
                degraded.add_c2p(a, b)
        return degraded

    def compare_with_map(self, itm: InternetTrafficMap,
                         asn: int) -> OutageComparison:
        """Ground truth vs the map's public-data prediction."""
        analyzer = OutageImpactAnalyzer(itm, self._scenario.prefixes,
                                        self._scenario.graph)
        return OutageComparison(
            report=analyzer.assess_as_outage(asn),
            truth=self.ground_truth_outage(asn))
