"""Read-optimized columnar store over a built traffic map.

The dict-forest :class:`~repro.core.traffic_map.InternetTrafficMap` is
the right shape for *building* the map; it is the wrong shape for
*serving* it. :class:`MapStore` applies the dense-integer treatment PR 1
gave routing to the map itself: every component is flattened once into
sorted integer/float arrays (activity tables, per-service user→host
columns, site rows grouped by organisation, a CSR route matrix with a
per-destination group index), so the :mod:`repro.serve` endpoints answer
with array slices and binary searches instead of dict walks.

Contracts:

* **Bit-identity** — every query answers exactly what the dict-based
  reference in :mod:`repro.core.usecases` answers on the same map
  (``map_path_length_contrast``, ``OutageImpactAnalyzer``,
  ``anycast_site_candidates``). Array insertion order mirrors the dicts'
  insertion order, so even float accumulation order is preserved.
  Regression-locked by ``tests/test_mapstore.py``.
* **Immutability** — a store never mutates after :meth:`from_map`;
  concurrent readers need no locks, which is what makes the
  :class:`repro.serve.service.MapService` hot swap a single reference
  assignment.
* **Content digest** — :attr:`digest` is the SHA-256 of the map's
  canonical JSON artefact, so two stores built from bit-identical maps
  (fresh vs ``--delta``, serial vs ``--workers N``) share a digest and
  an answer cached under one is valid for the other.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..net.geography import City
from ..net.relationships import ASGraph
from .traffic_map import (ComponentCoverage, InternetTrafficMap,
                          MappedSite)
from .usecases import (AnycastAnswer, OutageReport, RegionOutageReport,
                       rank_site_candidates)
from .weighting import WeightingContrast, weighting_contrast


def _sorted_lookup(keys_sorted: np.ndarray, values: np.ndarray,
                   key: int, default: float = 0.0) -> float:
    """O(log n) point lookup in a sorted key column."""
    idx = int(np.searchsorted(keys_sorted, key))
    if idx < keys_sorted.size and int(keys_sorted[idx]) == key:
        return values[idx]
    return default


def _vectorized_lookup(keys_sorted: np.ndarray, values: np.ndarray,
                       queries: np.ndarray) -> np.ndarray:
    """Vectorized point lookups; absent keys yield 0.0."""
    out = np.zeros(queries.shape, dtype=np.float64)
    if keys_sorted.size == 0 or queries.size == 0:
        return out
    idx = np.searchsorted(keys_sorted, queries)
    idx = np.minimum(idx, keys_sorted.size - 1)
    found = keys_sorted[idx] == queries
    out[found] = values[idx[found]]
    return out


class MapStore:
    """Columnar, immutable, query-ready snapshot of one traffic map.

    Build with :meth:`from_map`; all attributes are read-only by
    convention (arrays are never mutated after construction).
    """

    def __init__(self) -> None:
        raise TypeError("use MapStore.from_map(itm, ...)")

    @classmethod
    def from_map(cls, itm: InternetTrafficMap,
                 graph: Optional[ASGraph] = None) -> "MapStore":
        """Flatten a built map (plus optional AS-graph context) into
        columnar arrays.

        ``graph`` enables the outage endpoint's alternate-transit
        answer, mirroring what :class:`~repro.core.usecases.\
OutageImpactAnalyzer` needs; without it outage queries raise. The map's
        ``prefix_asn`` metadata (attached by the builder, or re-attached
        by the artefact loader) powers the prefix→AS column; pids out of
        its bounds mean the artefact and the scenario context disagree
        and raise :class:`ValidationError` up front rather than at query
        time.
        """
        self = object.__new__(cls)

        canonical = json.dumps(_canonical_map_dict(itm), sort_keys=True,
                               separators=(",", ":"))
        self.digest = hashlib.sha256(canonical.encode()).hexdigest()
        self.format_version = 1
        self.seed = itm.metadata.get("seed")
        self.coverage: Dict[str, ComponentCoverage] = dict(itm.coverage)

        # -- users column ------------------------------------------------
        users = itm.users
        self.techniques = tuple(users.techniques)
        self.detected_pids = np.asarray(users.detected_prefixes,
                                        dtype=np.int64)
        pids = np.fromiter(users.activity_by_prefix.keys(), dtype=np.int64,
                           count=len(users.activity_by_prefix))
        pid_w = np.fromiter(users.activity_by_prefix.values(),
                            dtype=np.float64,
                            count=len(users.activity_by_prefix))
        order = np.argsort(pids, kind="stable")
        self.act_pids = pids[order]
        self.act_pid_w = pid_w[order]
        asns = np.fromiter(users.activity_by_as.keys(), dtype=np.int64,
                           count=len(users.activity_by_as))
        as_w = np.fromiter(users.activity_by_as.values(), dtype=np.float64,
                           count=len(users.activity_by_as))
        order = np.argsort(asns, kind="stable")
        self.act_asns = asns[order]
        self.act_as_w = as_w[order]

        # -- prefix -> AS ------------------------------------------------
        prefix_asn = itm.metadata.get("prefix_asn")
        self.prefix_asn = (None if prefix_asn is None
                           else np.asarray(prefix_asn, dtype=np.int64))

        # -- services: per-service user->host columns --------------------
        services = itm.services
        self.unmapped_services = tuple(services.unmapped_services)
        self.service_keys = tuple(services.user_to_host)
        self._svc_index = {key: i for i, key in
                           enumerate(self.service_keys)}
        self.svc_clients: List[np.ndarray] = []
        self.svc_answers: List[np.ndarray] = []
        self._svc_clients_sorted: List[np.ndarray] = []
        self._svc_clients_order: List[np.ndarray] = []
        self.svc_client_asns: List[Optional[np.ndarray]] = []
        self.svc_answer_asns: List[Optional[np.ndarray]] = []
        for key in self.service_keys:
            mapping = services.user_to_host[key]
            clients = np.fromiter(mapping.keys(), dtype=np.int64,
                                  count=len(mapping))
            answers = np.fromiter(mapping.values(), dtype=np.int64,
                                  count=len(mapping))
            self.svc_clients.append(clients)
            self.svc_answers.append(answers)
            order = np.argsort(clients, kind="stable")
            self._svc_clients_sorted.append(clients[order])
            self._svc_clients_order.append(order)
            if self.prefix_asn is not None:
                _check_pid_bounds(clients, self.prefix_asn.size,
                                  f"service {key!r} clients")
                _check_pid_bounds(answers, self.prefix_asn.size,
                                  f"service {key!r} answers")
                self.svc_client_asns.append(self.prefix_asn[clients])
                self.svc_answer_asns.append(self.prefix_asn[answers])
            else:
                self.svc_client_asns.append(None)
                self.svc_answer_asns.append(None)
        if self.prefix_asn is not None:
            _check_pid_bounds(self.detected_pids, self.prefix_asn.size,
                              "users detected_prefixes")

        # -- sites: rows grouped by sorted organisation ------------------
        self.organizations = tuple(sorted(services.sites_by_org))
        self._org_index = {org: i for i, org in
                           enumerate(self.organizations)}
        org_off = [0]
        site_pid: List[int] = []
        site_asn: List[int] = []
        site_offnet: List[bool] = []
        self.site_city: List[Optional[City]] = []
        for org in self.organizations:
            for site in services.sites_by_org[org]:
                site_pid.append(site.prefix_id)
                site_asn.append(site.asn)
                site_offnet.append(site.is_offnet)
                self.site_city.append(site.estimated_city)
            org_off.append(len(site_pid))
        self.site_org_off = np.asarray(org_off, dtype=np.int64)
        self.site_pid = np.asarray(site_pid, dtype=np.int64)
        self.site_asn = np.asarray(site_asn, dtype=np.int64)
        self.site_offnet = np.asarray(site_offnet, dtype=bool)
        # pid -> first row (rows are in sorted-org order, so "first"
        # matches the reference's sorted-org scan).
        if self.site_pid.size:
            order = np.argsort(self.site_pid, kind="stable")
            sorted_pids = self.site_pid[order]
            first = np.ones(sorted_pids.size, dtype=bool)
            first[1:] = sorted_pids[1:] != sorted_pids[:-1]
            self._site_pid_sorted = sorted_pids[first]
            self._site_pid_row = order[first]
        else:
            self._site_pid_sorted = np.empty(0, dtype=np.int64)
            self._site_pid_row = np.empty(0, dtype=np.int64)

        # -- routes: CSR paths + per-destination group index -------------
        routes = itm.routes
        self.predictability = float(routes.predictability)
        n = len(routes.paths)
        self.route_src = np.empty(n, dtype=np.int64)
        self.route_dst = np.empty(n, dtype=np.int64)
        self.route_hops = np.empty(n, dtype=np.int64)
        off = np.zeros(n + 1, dtype=np.int64)
        flat: List[int] = []
        for i, ((src, dst), path) in enumerate(routes.paths.items()):
            self.route_src[i] = src
            self.route_dst[i] = dst
            if path is None:
                self.route_hops[i] = -1
            else:
                self.route_hops[i] = len(path) - 1
                flat.extend(path)
            off[i + 1] = len(flat)
        self.route_path_off = off
        self.route_path_flat = np.asarray(flat, dtype=np.int64)
        dst_order = np.argsort(self.route_dst, kind="stable")
        self._route_dst_order = dst_order
        if n:
            sorted_dst = self.route_dst[dst_order]
            firsts = np.flatnonzero(
                np.concatenate(([True], sorted_dst[1:] != sorted_dst[:-1])))
            self._route_dst_unique = sorted_dst[firsts]
            self._route_dst_group_off = np.concatenate(
                (firsts, [n])).astype(np.int64)
        else:
            self._route_dst_unique = np.empty(0, dtype=np.int64)
            self._route_dst_group_off = np.zeros(1, dtype=np.int64)
        # (src, dst) point lookups via one packed 64-bit key column.
        key = (self.route_src.astype(np.uint64) << np.uint64(32)) \
            | self.route_dst.astype(np.uint64)
        order = np.argsort(key, kind="stable")
        self._route_key_sorted = key[order]
        self._route_key_row = order

        # -- AS-graph context (outage alternate-transit) -----------------
        if graph is not None:
            g_asns = np.asarray(sorted(graph.asns), dtype=np.int64)
            nbr_off = [0]
            nbr_flat: List[int] = []
            cust_off = [0]
            cust_flat: List[int] = []
            for asn in g_asns:
                nbr_flat.extend(sorted(graph.neighbors_of(int(asn))))
                nbr_off.append(len(nbr_flat))
                cust_flat.extend(sorted(graph.customers_of(int(asn))))
                cust_off.append(len(cust_flat))
            self.graph_asns: Optional[np.ndarray] = g_asns
            self._nbr_off = np.asarray(nbr_off, dtype=np.int64)
            self._nbr_flat = np.asarray(nbr_flat, dtype=np.int64)
            self._cust_off = np.asarray(cust_off, dtype=np.int64)
            self._cust_flat = np.asarray(cust_flat, dtype=np.int64)
        else:
            self.graph_asns = None
        return self

    # -- identity ---------------------------------------------------------

    @property
    def short_digest(self) -> str:
        """First 12 hex chars of :attr:`digest` (display form)."""
        return self.digest[:12]

    # -- point lookups -----------------------------------------------------

    def prefix_weight(self, pid: int) -> float:
        """Activity share of one prefix (0.0 when undetected)."""
        return float(_sorted_lookup(self.act_pids, self.act_pid_w,
                                    int(pid)))

    def as_weight(self, asn: int) -> float:
        """Activity share of one AS (0.0 when undetected)."""
        return float(_sorted_lookup(self.act_asns, self.act_as_w,
                                    int(asn)))

    def asn_of_prefix(self, pid: int) -> int:
        """Originating AS of a prefix, from the attached context."""
        if self.prefix_asn is None:
            raise ValidationError("store built without prefix_asn context")
        pid = int(pid)
        if not 0 <= pid < self.prefix_asn.size:
            raise ValidationError(f"prefix {pid} out of range")
        return int(self.prefix_asn[pid])

    def host_for_user(self, service_key: str, pid: int) -> Optional[int]:
        """The serving prefix for one (service, client prefix) pair."""
        svc = self._svc_index.get(service_key)
        if svc is None:
            return None
        clients = self._svc_clients_sorted[svc]
        idx = int(np.searchsorted(clients, int(pid)))
        if idx < clients.size and int(clients[idx]) == int(pid):
            row = int(self._svc_clients_order[svc][idx])
            return int(self.svc_answers[svc][row])
        return None

    def path_between(self, src_asn: int, dst_asn: int
                     ) -> Optional[Tuple[int, ...]]:
        """The predicted route for one (src, dst) AS pair, if covered."""
        key = np.uint64((int(src_asn) << 32) | int(dst_asn))
        idx = int(np.searchsorted(self._route_key_sorted, key))
        if idx >= self._route_key_sorted.size or \
                self._route_key_sorted[idx] != key:
            return None
        row = int(self._route_key_row[idx])
        if self.route_hops[row] < 0:
            return None
        lo, hi = self.route_path_off[row], self.route_path_off[row + 1]
        return tuple(int(a) for a in self.route_path_flat[lo:hi])

    def route_targets(self) -> np.ndarray:
        """Destination ASes the routes component covers (sorted,
        unique) — the valid ``/v1/cdf`` targets."""
        return self._route_dst_unique.copy()

    def services_mapping_prefix(self, pid: int) -> List[str]:
        """Service keys whose user→host mapping covers a prefix, in the
        map's service order."""
        return [key for i, key in enumerate(self.service_keys)
                if self.host_for_user(key, pid) is not None]

    # -- §2.1 endpoint queries --------------------------------------------

    def cdf_contrast(self, target_asn: int) -> WeightingContrast:
        """Bit-identical to :func:`repro.core.usecases.\
map_path_length_contrast` on the source map."""
        target = int(target_asn)
        idx = int(np.searchsorted(self._route_dst_unique, target))
        if idx >= self._route_dst_unique.size or \
                int(self._route_dst_unique[idx]) != target:
            raise ValidationError(
                f"map covers no predicted routes to AS{target}")
        lo = self._route_dst_group_off[idx]
        hi = self._route_dst_group_off[idx + 1]
        rows = self._route_dst_order[lo:hi]   # insertion order preserved
        rows = rows[self.route_hops[rows] >= 0]
        if rows.size == 0:
            raise ValidationError(
                f"map covers no predicted routes to AS{target}")
        lengths = self.route_hops[rows].astype(np.float64)
        weights = _vectorized_lookup(self.act_asns, self.act_as_w,
                                     self.route_src[rows])
        if not weights.any():
            raise ValidationError(
                f"no activity weight on any AS routed to AS{target}")
        return weighting_contrast("as_path_length", lengths, weights,
                                  weight_name="client activity")

    def outage_report(self, asn: int) -> OutageReport:
        """Bit-identical to :meth:`repro.core.usecases.\
OutageImpactAnalyzer.assess_as_outage` on the source map."""
        if self.prefix_asn is None:
            raise ValidationError("store built without prefix_asn context")
        if self.graph_asns is None:
            raise ValidationError("store built without AS-graph context")
        asn = int(asn)
        activity_share = self.as_weight(asn)
        affected = int((self.prefix_asn[self.detected_pids] == asn).sum())

        affected_services: List[str] = []
        rerouted: Dict[str, int] = {}
        for i, key in enumerate(self.service_keys):
            client_asns = self.svc_client_asns[i]
            answer_asns = self.svc_answer_asns[i]
            if client_asns is None or not (client_asns == asn).any():
                continue
            affected_services.append(key)
            away = answer_asns != asn
            if away.any():
                rerouted[key] = int(answer_asns[int(np.argmax(away))])

        offnet_orgs = tuple(
            org for org in self.organizations
            if bool(np.any(
                (self.site_asn[self._org_slice(org)] == asn)
                & self.site_offnet[self._org_slice(org)])))

        alternate = True
        for customer in self._customers_of(asn):
            others = self._neighbors_of(customer)
            if not np.any(others != asn):
                alternate = False
                break

        return OutageReport(
            asn=asn,
            activity_share=activity_share,
            affected_prefix_count=affected,
            affected_services=tuple(sorted(affected_services)),
            offnet_orgs_inside=offnet_orgs,
            alternate_transit=alternate,
            rerouted_service_asns=rerouted)

    def region_outage_report(self, asns: Sequence[int]
                             ) -> RegionOutageReport:
        """Bit-identical to :meth:`repro.core.usecases.\
OutageImpactAnalyzer.assess_region_outage` on the source map."""
        if not asns:
            raise ValidationError("empty AS set")
        reports = [self.outage_report(asn) for asn in asns]
        services: set = set()
        orgs: set = set()
        for report in reports:
            services.update(report.affected_services)
            orgs.update(report.offnet_orgs_inside)
        return RegionOutageReport(
            asns=tuple(sorted(int(a) for a in asns)),
            activity_share=sum(r.activity_share for r in reports),
            affected_prefix_count=sum(r.affected_prefix_count
                                      for r in reports),
            affected_services=tuple(sorted(services)),
            offnet_orgs_inside=tuple(sorted(orgs)))

    def hypergiant_asns(self, organization: str) -> Tuple[int, ...]:
        """The AS set an organisation's outage takes down: its on-net
        site ASes (all site ASes when the map saw none as on-net)."""
        if organization not in self._org_index:
            raise ValidationError(
                f"map knows no organisation {organization!r}")
        rows = self._org_slice(organization)
        asns = self.site_asn[rows]
        onnet = asns[~self.site_offnet[rows]]
        chosen = onnet if onnet.size else asns
        if chosen.size == 0:
            raise ValidationError(
                f"organisation {organization!r} has no mapped sites")
        return tuple(sorted({int(a) for a in chosen}))

    def anycast_answer(self, service_key: str, client_pid: int,
                       k: int = 3) -> AnycastAnswer:
        """Bit-identical to :func:`repro.core.usecases.\
anycast_site_candidates` on the source map."""
        svc = self._svc_index.get(service_key)
        if svc is None:
            raise ValidationError(
                f"service {service_key!r} has no user->host mapping")
        host_pid = self.host_for_user(service_key, client_pid)
        if host_pid is None:
            raise ValidationError(
                f"prefix {int(client_pid)} is not mapped by "
                f"{service_key!r}")
        idx = int(np.searchsorted(self._site_pid_sorted, host_pid))
        serving_row: Optional[int] = None
        if idx < self._site_pid_sorted.size and \
                int(self._site_pid_sorted[idx]) == host_pid:
            serving_row = int(self._site_pid_row[idx])
        candidates: Tuple = ()
        host_asn: Optional[int] = None
        org_of: Optional[str] = None
        if serving_row is not None:
            host_asn = int(self.site_asn[serving_row])
            org_idx = int(np.searchsorted(self.site_org_off, serving_row,
                                          side="right")) - 1
            org_of = self.organizations[org_idx]
            rows = range(int(self.site_org_off[org_idx]),
                         int(self.site_org_off[org_idx + 1]))
            serving = self._site_at(serving_row, org_of)
            pool = [self._site_at(row, org_of) for row in rows
                    if int(self.site_pid[row]) != host_pid]
            candidates = rank_site_candidates(serving, pool, k)
        return AnycastAnswer(
            service_key=service_key,
            client_pid=int(client_pid),
            host_pid=int(host_pid),
            host_asn=host_asn,
            organization=org_of,
            candidates=candidates)

    # -- summary / provenance ---------------------------------------------

    def degraded_components(self) -> List[str]:
        """Components whose build lost units or techniques."""
        return sorted(name for name, record in self.coverage.items()
                      if record.degraded)

    def counts(self) -> Dict[str, int]:
        """Sizes for the ``/v1/map`` description."""
        return {
            "prefixes": int(self.act_pids.size),
            "ases": int(self.act_asns.size),
            "organizations": len(self.organizations),
            "sites": int(self.site_pid.size),
            "mapped_services": len(self.service_keys),
            "unmapped_services": len(self.unmapped_services),
            "route_pairs": int(self.route_src.size),
        }

    # -- internals ---------------------------------------------------------

    def _org_slice(self, organization: str) -> slice:
        i = self._org_index[organization]
        return slice(int(self.site_org_off[i]),
                     int(self.site_org_off[i + 1]))

    def _site_at(self, row: int, organization: str) -> MappedSite:
        return MappedSite(
            prefix_id=int(self.site_pid[row]),
            asn=int(self.site_asn[row]),
            organization=organization,
            estimated_city=self.site_city[row],
            is_offnet=bool(self.site_offnet[row]))

    def _graph_row(self, asn: int) -> Optional[int]:
        idx = int(np.searchsorted(self.graph_asns, asn))
        if idx < self.graph_asns.size and \
                int(self.graph_asns[idx]) == asn:
            return idx
        return None

    def _customers_of(self, asn: int) -> np.ndarray:
        row = self._graph_row(asn)
        if row is None:
            return np.empty(0, dtype=np.int64)
        return self._cust_flat[self._cust_off[row]:self._cust_off[row + 1]]

    def _neighbors_of(self, asn: int) -> np.ndarray:
        row = self._graph_row(int(asn))
        if row is None:
            return np.empty(0, dtype=np.int64)
        return self._nbr_flat[self._nbr_off[row]:self._nbr_off[row + 1]]


def _check_pid_bounds(pids: np.ndarray, size: int, where: str) -> None:
    if pids.size and (int(pids.max()) >= size or int(pids.min()) < 0):
        raise ValidationError(
            f"{where} reference prefixes outside the attached prefix "
            f"table (size {size}) — the artefact and the scenario "
            f"context disagree")


def _canonical_map_dict(itm: InternetTrafficMap) -> Dict[str, object]:
    # Imported lazily: serialize imports measure modules, which is more
    # than a point lookup needs at import time.
    from .serialize import map_to_dict
    return map_to_dict(itm)
