"""Map and stage-payload serialisation: durable JSON artefacts.

The paper imagines the community *publishing* the traffic map for others
to weight their analyses with (§4). This module round-trips the
measurement-derived parts of an :class:`InternetTrafficMap` through plain
JSON: activity weights, service sites (with estimated cities as
country/name pairs), user-to-host mappings, and predicted routes.

It also hosts the **per-stage payload codecs** the ``repro.ckpt``
checkpointing subsystem snapshots builder stages with:
:func:`stage_payload_to_dict` / :func:`stage_payload_from_dict` encode
each stage's measurement output (campaign results, fused components,
auxiliary artefacts) so a crashed build can resume bit-identically.
Codec rule: **dict insertion order is preserved**, never sorted — some
consumers accumulate floats by iterating these dicts, and float sums are
only bit-stable in the original order.

Ground-truth-derived metadata (the scenario's prefix table) is *not*
embedded; the loader re-attaches it from a scenario when cross-component
queries need it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ValidationError
from ..measure.atlas import TracerouteResult, VantagePoint
from ..measure.cache_probing import CacheProbingResult
from ..measure.catchment_probe import CatchmentMeasurement
from ..measure.cloud_vantage import CloudVantageResult
from ..measure.ecs_mapping import EcsMappingResult, ServiceMappingResult
from ..measure.ipid import IpIdAnalysis
from ..measure.resolver_assoc import ResolverAssociation
from ..measure.reverse_traceroute import PathPair
from ..measure.rootlogs import RootLogCrawlResult
from ..measure.tlsscan import OrgFootprint, ScanObservation, TlsScanResult
from ..net.geography import WorldAtlas
from ..services.tls import Certificate
from .activity import ActivityEstimate
from .traffic_map import (ComponentCoverage, InternetTrafficMap,
                          MappedSite, RoutesComponent, ServicesComponent,
                          UsersComponent)

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Malformed-payload helpers
# ---------------------------------------------------------------------------

_TYPE_NAMES = {
    dict: "an object",
    list: "a list",
    str: "a string",
    int: "an integer",
    float: "a number",
    bool: "a boolean",
}


def _describe_type(expected) -> str:
    if isinstance(expected, tuple):
        return " or ".join(_TYPE_NAMES.get(t, t.__name__)
                           for t in expected)
    return _TYPE_NAMES.get(expected, expected.__name__)


def _get(mapping: Any, key: str, expected, where: str,
         optional: bool = False, default: Any = None) -> Any:
    """``mapping[key]`` with errors that name the key and expected type.

    Raises :class:`ValidationError` — never a bare ``KeyError`` or
    ``TypeError`` — so a truncated or hand-edited artefact explains
    itself: *which* key is missing or ill-typed, and *where*.
    """
    if not isinstance(mapping, dict):
        raise ValidationError(
            f"{where} must be an object, got {type(mapping).__name__}")
    if key not in mapping:
        if optional:
            return default
        raise ValidationError(f"{where} is missing required key {key!r}")
    value = mapping[key]
    if expected is not None and not isinstance(value, expected):
        # bool is an int subclass; reject it where a number is expected.
        pass
    if expected is not None and (
            not isinstance(value, expected)
            or (isinstance(value, bool)
                and bool not in (expected if isinstance(expected, tuple)
                                 else (expected,)))):
        raise ValidationError(
            f"{where}.{key} must be {_describe_type(expected)}, "
            f"got {type(value).__name__}")
    return value


def _city_to_list(city) -> Optional[List[str]]:
    if city is None:
        return None
    return [city.country_code, city.name]


def _city_from_list(entry: Any, atlas: WorldAtlas, where: str):
    if entry is None:
        return None
    if not isinstance(entry, list) or len(entry) != 2:
        raise ValidationError(
            f"{where} must be null or a [country_code, name] pair, "
            f"got {entry!r}")
    code, name = entry
    return atlas.city(code, name)


# ---------------------------------------------------------------------------
# Component codecs (shared by the map artefact and stage snapshots)
# ---------------------------------------------------------------------------

def _users_to_dict(users: UsersComponent) -> Dict[str, Any]:
    return {
        "detected_prefixes": [int(p) for p in users.detected_prefixes],
        "activity_by_prefix": {str(k): v for k, v in
                               users.activity_by_prefix.items()},
        "activity_by_as": {str(k): v for k, v in
                           users.activity_by_as.items()},
        "techniques": list(users.techniques),
    }


def _users_from_dict(raw: Any, where: str = "users") -> UsersComponent:
    return UsersComponent(
        detected_prefixes=np.asarray(
            _get(raw, "detected_prefixes", list, where), dtype=int),
        activity_by_prefix={
            int(k): float(v) for k, v in
            _get(raw, "activity_by_prefix", dict, where).items()},
        activity_by_as={
            int(k): float(v) for k, v in
            _get(raw, "activity_by_as", dict, where).items()},
        techniques=tuple(_get(raw, "techniques", list, where)))


def _services_to_dict(services: ServicesComponent) -> Dict[str, Any]:
    sites = {
        org: [{
            "prefix_id": site.prefix_id,
            "asn": site.asn,
            "city": _city_to_list(site.estimated_city),
            "offnet": site.is_offnet,
        } for site in site_list]
        for org, site_list in services.sites_by_org.items()}
    return {
        "sites_by_org": sites,
        "serving_asns_by_domain": {
            d: sorted(asns) for d, asns in
            services.serving_asns_by_domain.items()},
        # Columnar on purpose: the per-service user->host map is the
        # bulk of the services payload (every client prefix appears in
        # every mapped service), and parallel int arrays encode, parse
        # and decode several times faster than a str-keyed object.
        "user_to_host": {
            key: {"clients": list(mapping.keys()),
                  "hosts": list(mapping.values())}
            for key, mapping in services.user_to_host.items()},
        "unmapped_services": list(services.unmapped_services),
    }


def _user_to_host_from(mapping: Any, where: str) -> Dict[int, int]:
    """Decode one service's user->host map (columnar or legacy form).

    The columnar ``{"clients": [...], "hosts": [...]}`` form is what
    :func:`_services_to_dict` writes; the str-keyed object form is
    accepted so artefacts and stage snapshots written before the
    columnar encoding still load.
    """
    if isinstance(mapping, dict) and "clients" in mapping:
        clients = _get(mapping, "clients", list, where)
        hosts = _get(mapping, "hosts", list, where)
        if len(clients) != len(hosts):
            raise ValidationError(
                f"{where} clients/hosts length mismatch: "
                f"{len(clients)} != {len(hosts)}")
        # JSON-parsed arrays are already int; coerce only when a
        # hand-edited artefact says otherwise (these arrays carry
        # hundreds of thousands of entries at scale, so the per-element
        # cast is worth skipping).
        if any(type(v) is not int for v in clients[:1] + hosts[:1]):
            return dict(zip(map(int, clients), map(int, hosts)))
        return dict(zip(clients, hosts))
    if not isinstance(mapping, dict):
        raise ValidationError(
            f"{where} must be an object, got {type(mapping).__name__}")
    return {int(c): int(a) for c, a in mapping.items()}


def _services_from_dict(raw: Any, atlas: WorldAtlas,
                        where: str = "services") -> ServicesComponent:
    sites_by_org = {}
    for org, site_list in _get(raw, "sites_by_org", dict, where).items():
        sites = []
        for i, entry in enumerate(site_list):
            site_where = f"{where}.sites_by_org[{org!r}][{i}]"
            city = _city_from_list(
                _get(entry, "city", None, site_where),
                atlas, f"{site_where}.city")
            sites.append(MappedSite(
                prefix_id=int(_get(entry, "prefix_id", int, site_where)),
                asn=int(_get(entry, "asn", int, site_where)),
                organization=org,
                estimated_city=city,
                is_offnet=bool(_get(entry, "offnet", bool, site_where))))
        sites_by_org[org] = sites
    return ServicesComponent(
        sites_by_org=sites_by_org,
        serving_asns_by_domain={
            d: set(asns) for d, asns in
            _get(raw, "serving_asns_by_domain", dict, where).items()},
        user_to_host={
            key: _user_to_host_from(mapping,
                                    f"{where}.user_to_host[{key!r}]")
            for key, mapping in
            _get(raw, "user_to_host", dict, where).items()},
        unmapped_services=tuple(
            _get(raw, "unmapped_services", list, where)))


def _routes_to_dict(routes: RoutesComponent) -> Dict[str, Any]:
    return {
        "paths": [{
            "src": src, "dst": dst,
            "path": list(path) if path is not None else None,
        } for (src, dst), path in routes.paths.items()],
        "predictability": routes.predictability,
    }


def _routes_from_dict(raw: Any, where: str = "routes") -> RoutesComponent:
    paths = {}
    for i, entry in enumerate(_get(raw, "paths", list, where)):
        entry_where = f"{where}.paths[{i}]"
        path_raw = _get(entry, "path", None, entry_where)
        path = tuple(path_raw) if path_raw is not None else None
        paths[(int(_get(entry, "src", int, entry_where)),
               int(_get(entry, "dst", int, entry_where)))] = path
    return RoutesComponent(
        paths=paths,
        predictability=float(
            _get(raw, "predictability", (int, float), where)))


# ---------------------------------------------------------------------------
# Whole-map artefact
# ---------------------------------------------------------------------------

def map_to_dict(itm: InternetTrafficMap) -> Dict[str, Any]:
    """Serialisable dict of the map's measurement-derived content."""
    return {
        "format_version": FORMAT_VERSION,
        "seed": itm.metadata.get("seed"),
        "users": _users_to_dict(itm.users),
        "services": _services_to_dict(itm.services),
        "routes": _routes_to_dict(itm.routes),
        "coverage": {
            name: {
                "coverage": record.coverage,
                "techniques_intended": list(record.techniques_intended),
                "techniques_delivered": list(record.techniques_delivered),
                "notes": list(record.notes),
            } for name, record in itm.coverage.items()},
    }


def map_to_json(itm: InternetTrafficMap, indent: Optional[int] = None
                ) -> str:
    """JSON string form of :func:`map_to_dict`."""
    return json.dumps(map_to_dict(itm), indent=indent, sort_keys=True)


def map_from_dict(payload: Dict[str, Any],
                  atlas: Optional[WorldAtlas] = None,
                  prefix_asn: Optional[np.ndarray] = None
                  ) -> InternetTrafficMap:
    """Rebuild a map from its serialised form.

    ``atlas`` resolves site cities back to :class:`City` objects;
    ``prefix_asn`` re-enables the cross-component queries that need the
    prefix-to-AS table. Malformed payloads raise
    :class:`ValidationError` naming the offending key and the expected
    type, never a bare ``KeyError``.
    """
    if not isinstance(payload, dict):
        raise ValidationError(
            f"map payload must be an object, got "
            f"{type(payload).__name__}")
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported map format {payload.get('format_version')!r}")
    atlas = atlas or WorldAtlas.default()

    users = _users_from_dict(
        _get(payload, "users", dict, "map payload"), "users")
    services = _services_from_dict(
        _get(payload, "services", dict, "map payload"), atlas, "services")
    routes = _routes_from_dict(
        _get(payload, "routes", dict, "map payload"), "routes")

    # Tolerant: artefacts written before coverage reporting lack the key.
    coverage = {}
    for name, entry in _get(payload, "coverage", dict, "map payload",
                            optional=True, default={}).items():
        where = f"coverage[{name!r}]"
        coverage[name] = ComponentCoverage(
            component=name,
            coverage=float(_get(entry, "coverage", (int, float), where)),
            techniques_intended=tuple(
                _get(entry, "techniques_intended", list, where)),
            techniques_delivered=tuple(
                _get(entry, "techniques_delivered", list, where)),
            notes=tuple(_get(entry, "notes", list, where,
                             optional=True, default=())))

    metadata: Dict[str, Any] = {"seed": payload.get("seed")}
    if prefix_asn is not None:
        metadata["prefix_asn"] = prefix_asn
    return InternetTrafficMap(users=users, services=services,
                              routes=routes, metadata=metadata,
                              coverage=coverage)


def map_from_json(text: str, atlas: Optional[WorldAtlas] = None,
                  prefix_asn: Optional[np.ndarray] = None
                  ) -> InternetTrafficMap:
    """Parse JSON text and rebuild the map (see :func:`map_from_dict`)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"map artefact is not valid JSON: {exc}") \
            from None
    return map_from_dict(payload, atlas=atlas, prefix_asn=prefix_asn)


# ---------------------------------------------------------------------------
# Stage payload codecs (repro.ckpt snapshots)
# ---------------------------------------------------------------------------

def _int_list(array) -> List[int]:
    return [int(v) for v in np.asarray(array).ravel()]


def _cache_result_to_dict(result: Optional[CacheProbingResult]):
    if result is None:
        return None
    return {
        "prefix_ids": _int_list(result.prefix_ids),
        "service_sids": [int(s) for s in result.service_sids],
        "hits": [[int(h) for h in row] for row in result.hits],
        "rounds": int(result.rounds),
        "pop_of_prefix": _int_list(result.pop_of_prefix),
    }


def _cache_result_from_dict(raw, atlas, where):
    if raw is None:
        return None
    n = len(_get(raw, "prefix_ids", list, where))
    hits = np.asarray(_get(raw, "hits", list, where),
                      dtype=np.int64).reshape(
        len(_get(raw, "service_sids", list, where)), n)
    return CacheProbingResult(
        prefix_ids=np.asarray(raw["prefix_ids"], dtype=np.int64),
        service_sids=tuple(int(s) for s in raw["service_sids"]),
        hits=hits,
        rounds=int(_get(raw, "rounds", int, where)),
        pop_of_prefix=np.asarray(
            _get(raw, "pop_of_prefix", list, where), dtype=np.int64))


def _rootlog_result_to_dict(result: Optional[RootLogCrawlResult]):
    if result is None:
        return None
    return {
        "volume_by_as": {str(k): v for k, v in
                         result.volume_by_as.items()},
        "roots_crawled": result.roots_crawled,
        "roots_total": result.roots_total,
        "public_resolver_volume": result.public_resolver_volume,
        "min_query_threshold": result.min_query_threshold,
        "roots_truncated": result.roots_truncated,
    }


def _rootlog_result_from_dict(raw, atlas, where):
    if raw is None:
        return None
    return RootLogCrawlResult(
        volume_by_as={int(k): float(v) for k, v in
                      _get(raw, "volume_by_as", dict, where).items()},
        roots_crawled=int(_get(raw, "roots_crawled", int, where)),
        roots_total=int(_get(raw, "roots_total", int, where)),
        public_resolver_volume=float(
            _get(raw, "public_resolver_volume", (int, float), where)),
        min_query_threshold=float(
            _get(raw, "min_query_threshold", (int, float), where)),
        roots_truncated=int(_get(raw, "roots_truncated", int, where)))


def _activity_to_dict(activity: Optional[ActivityEstimate]):
    if activity is None:
        return None
    return {
        "by_prefix": {str(k): v for k, v in activity.by_prefix.items()},
        "by_as": {str(k): v for k, v in activity.by_as.items()},
        "techniques": list(activity.techniques),
        "scale_factor": activity.scale_factor,
    }


def _activity_from_dict(raw, where):
    if raw is None:
        return None
    scale = _get(raw, "scale_factor", None, where)
    return ActivityEstimate(
        by_prefix={int(k): float(v) for k, v in
                   _get(raw, "by_prefix", dict, where).items()},
        by_as={int(k): float(v) for k, v in
               _get(raw, "by_as", dict, where).items()},
        techniques=tuple(_get(raw, "techniques", list, where)),
        scale_factor=None if scale is None else float(scale))


def _users_stage_to_dict(value):
    return {
        "component": _users_to_dict(value["component"]),
        "activity": _activity_to_dict(value["activity"]),
    }


def _users_stage_from_dict(raw, atlas, where):
    return {
        "component": _users_from_dict(
            _get(raw, "component", dict, where), f"{where}.component"),
        "activity": _activity_from_dict(
            _get(raw, "activity", None, where), f"{where}.activity"),
    }


def _tls_result_to_dict(result: Optional[TlsScanResult]):
    if result is None:
        return None
    return {
        "observations": [{
            "prefix_id": obs.prefix_id,
            "origin_asn": obs.origin_asn,
            "cert": [obs.certificate.organization,
                     obs.certificate.common_name,
                     list(obs.certificate.sans)],
        } for obs in result.observations],
        "footprints": {
            org: {
                "home_asn": fp.home_asn,
                "onnet_prefixes": list(fp.onnet_prefixes),
                "offnet_prefixes": list(fp.offnet_prefixes),
                "offnet_asns": sorted(fp.offnet_asns),
            } for org, fp in result.footprints.items()},
    }


def _tls_result_from_dict(raw, atlas, where):
    if raw is None:
        return None
    observations = []
    for i, entry in enumerate(_get(raw, "observations", list, where)):
        obs_where = f"{where}.observations[{i}]"
        cert = _get(entry, "cert", list, obs_where)
        if len(cert) != 3:
            raise ValidationError(
                f"{obs_where}.cert must be [org, common_name, sans]")
        observations.append(ScanObservation(
            prefix_id=int(_get(entry, "prefix_id", int, obs_where)),
            origin_asn=int(_get(entry, "origin_asn", int, obs_where)),
            certificate=Certificate(
                organization=cert[0], common_name=cert[1],
                sans=tuple(cert[2]))))
    footprints = {}
    for org, fp in _get(raw, "footprints", dict, where).items():
        fp_where = f"{where}.footprints[{org!r}]"
        footprints[org] = OrgFootprint(
            organization=org,
            home_asn=int(_get(fp, "home_asn", int, fp_where)),
            onnet_prefixes=[int(p) for p in
                            _get(fp, "onnet_prefixes", list, fp_where)],
            offnet_prefixes=[int(p) for p in
                             _get(fp, "offnet_prefixes", list, fp_where)],
            offnet_asns={int(a) for a in
                         _get(fp, "offnet_asns", list, fp_where)})
    return TlsScanResult(observations=observations, footprints=footprints)


def _ecs_result_to_dict(result: Optional[EcsMappingResult]):
    if result is None:
        return None
    return {
        "per_service": {
            key: {
                "client_pids": _int_list(m.client_pids),
                "answer_pids": _int_list(m.answer_pids),
            } for key, m in result.per_service.items()},
        "uncovered_services": list(result.uncovered_services),
    }


def _ecs_result_from_dict(raw, atlas, where):
    if raw is None:
        return None
    per_service = {}
    for key, entry in _get(raw, "per_service", dict, where).items():
        svc_where = f"{where}.per_service[{key!r}]"
        per_service[key] = ServiceMappingResult(
            service_key=key,
            client_pids=np.asarray(
                _get(entry, "client_pids", list, svc_where),
                dtype=np.int64),
            answer_pids=np.asarray(
                _get(entry, "answer_pids", list, svc_where),
                dtype=np.int64))
    return EcsMappingResult(
        per_service=per_service,
        uncovered_services=list(
            _get(raw, "uncovered_services", list, where)))


def _catchments_to_dict(catchments: Dict[str, CatchmentMeasurement]):
    return {
        hg: {
            "prefix_ids": _int_list(m.prefix_ids),
            "site_of_prefix": _int_list(m.site_of_prefix),
            "site_count": m.site_count,
        } for hg, m in catchments.items()}


def _catchments_from_dict(raw, atlas, where):
    catchments = {}
    for hg, entry in raw.items():
        hg_where = f"{where}[{hg!r}]"
        catchments[hg] = CatchmentMeasurement(
            prefix_ids=np.asarray(
                _get(entry, "prefix_ids", list, hg_where),
                dtype=np.int64),
            site_of_prefix=np.asarray(
                _get(entry, "site_of_prefix", list, hg_where),
                dtype=np.int64),
            site_count=int(_get(entry, "site_count", int, hg_where)))
    return catchments


def _services_stage_to_dict(value):
    return {
        "component": _services_to_dict(value["component"]),
        "tls": _tls_result_to_dict(value["tls"]),
        "ecs": _ecs_result_to_dict(value["ecs"]),
        "catchments": _catchments_to_dict(value["catchments"]),
    }


def _services_stage_from_dict(raw, atlas, where):
    return {
        "component": _services_from_dict(
            _get(raw, "component", dict, where), atlas,
            f"{where}.component"),
        "tls": _tls_result_from_dict(
            _get(raw, "tls", None, where), atlas, f"{where}.tls"),
        "ecs": _ecs_result_from_dict(
            _get(raw, "ecs", None, where), atlas, f"{where}.ecs"),
        "catchments": _catchments_from_dict(
            _get(raw, "catchments", dict, where), atlas,
            f"{where}.catchments"),
    }


def _vp_to_dict(vp: VantagePoint) -> Dict[str, Any]:
    return {"vp_id": vp.vp_id, "asn": vp.asn,
            "city": _city_to_list(vp.city)}


def _vp_from_dict(raw, atlas, where) -> VantagePoint:
    return VantagePoint(
        vp_id=int(_get(raw, "vp_id", int, where)),
        asn=int(_get(raw, "asn", int, where)),
        city=_city_from_list(_get(raw, "city", list, where), atlas,
                             f"{where}.city"))


def _atlas_stage_to_dict(value):
    if value is None:
        return None
    # traceroutes is None when the platform came up but the measurement
    # campaign itself failed (the vantage points are still usable).
    traceroutes = value["traceroutes"]
    return {
        "vantage_points": [_vp_to_dict(vp)
                           for vp in value["vantage_points"]],
        "traceroutes": None if traceroutes is None else [{
            "vp": _vp_to_dict(tr.vp),
            "dst_asn": tr.dst_asn,
            "as_path": (list(tr.as_path)
                        if tr.as_path is not None else None),
        } for tr in traceroutes],
    }


def _atlas_stage_from_dict(raw, atlas, where):
    if raw is None:
        return None
    traceroutes_raw = _get(raw, "traceroutes", None, where)
    traceroutes = None
    if traceroutes_raw is not None:
        traceroutes = []
        for i, entry in enumerate(traceroutes_raw):
            tr_where = f"{where}.traceroutes[{i}]"
            as_path = _get(entry, "as_path", None, tr_where)
            traceroutes.append(TracerouteResult(
                vp=_vp_from_dict(_get(entry, "vp", dict, tr_where), atlas,
                                 f"{tr_where}.vp"),
                dst_asn=int(_get(entry, "dst_asn", int, tr_where)),
                as_path=(tuple(int(a) for a in as_path)
                         if as_path is not None else None)))
    return {
        "vantage_points": [
            _vp_from_dict(entry, atlas, f"{where}.vantage_points[{i}]")
            for i, entry in enumerate(
                _get(raw, "vantage_points", list, where))],
        "traceroutes": traceroutes,
    }


def _path_pairs_to_dict(pairs: Optional[List[PathPair]]):
    if pairs is None:
        return None
    return [{
        "vp_asn": p.vp_asn,
        "remote_asn": p.remote_asn,
        "forward": list(p.forward) if p.forward is not None else None,
        "reverse": list(p.reverse) if p.reverse is not None else None,
    } for p in pairs]


def _path_pairs_from_dict(raw, atlas, where):
    if raw is None:
        return None
    pairs = []
    for i, entry in enumerate(raw):
        pair_where = f"{where}[{i}]"
        forward = _get(entry, "forward", None, pair_where)
        reverse = _get(entry, "reverse", None, pair_where)
        pairs.append(PathPair(
            vp_asn=int(_get(entry, "vp_asn", int, pair_where)),
            remote_asn=int(_get(entry, "remote_asn", int, pair_where)),
            forward=(tuple(int(a) for a in forward)
                     if forward is not None else None),
            reverse=(tuple(int(a) for a in reverse)
                     if reverse is not None else None)))
    return pairs


def _cloud_result_to_dict(result: Optional[CloudVantageResult]):
    if result is None:
        return None
    return {
        "cloud_asn": result.cloud_asn,
        "discovered_links": [list(link) for link in
                             sorted(result.discovered_links)],
        "targets_probed": result.targets_probed,
        "targets_reached": result.targets_reached,
    }


def _cloud_result_from_dict(raw, atlas, where):
    if raw is None:
        return None
    return CloudVantageResult(
        cloud_asn=int(_get(raw, "cloud_asn", int, where)),
        discovered_links=frozenset(
            (int(a), int(b)) for a, b in
            _get(raw, "discovered_links", list, where)),
        targets_probed=int(_get(raw, "targets_probed", int, where)),
        targets_reached=int(_get(raw, "targets_reached", int, where)))


def _ipid_analyses_to_dict(analyses: Optional[List[IpIdAnalysis]]):
    if analyses is None:
        return None
    return [{
        "address": a.address,
        "mean_velocity": a.mean_velocity,
        "diurnal_amplitude": a.diurnal_amplitude,
        "fit_residual": a.fit_residual,
        "usable": a.usable,
    } for a in analyses]


def _ipid_analyses_from_dict(raw, atlas, where):
    if raw is None:
        return None
    return [IpIdAnalysis(
        address=_get(entry, "address", str, f"{where}[{i}]"),
        mean_velocity=float(_get(entry, "mean_velocity", (int, float),
                                 f"{where}[{i}]")),
        diurnal_amplitude=float(
            _get(entry, "diurnal_amplitude", (int, float),
                 f"{where}[{i}]")),
        fit_residual=float(_get(entry, "fit_residual", (int, float),
                                f"{where}[{i}]")),
        usable=bool(_get(entry, "usable", bool, f"{where}[{i}]")))
        for i, entry in enumerate(raw)]


def _resolver_assoc_to_dict(assoc: Optional[ResolverAssociation]):
    if assoc is None:
        return None
    return {
        "weights": {
            str(resolver): {str(asn): w for asn, w in clients.items()}
            for resolver, clients in assoc.weights.items()},
        "sample_size": assoc.sample_size,
    }


def _resolver_assoc_from_dict(raw, atlas, where):
    if raw is None:
        return None
    return ResolverAssociation(
        weights={
            int(resolver): {int(asn): float(w)
                            for asn, w in clients.items()}
            for resolver, clients in
            _get(raw, "weights", dict, where).items()},
        sample_size=int(_get(raw, "sample_size", int, where)))


def _routes_stage_to_dict(value):
    return _routes_to_dict(value)


def _routes_stage_from_dict(raw, atlas, where):
    return _routes_from_dict(raw, where)


# stage name -> (encode, decode). Decoders take (raw, atlas, where).
_STAGE_CODECS = {
    "cache-probing": (_cache_result_to_dict, _cache_result_from_dict),
    "root-logs": (_rootlog_result_to_dict, _rootlog_result_from_dict),
    "users": (_users_stage_to_dict, _users_stage_from_dict),
    "services": (_services_stage_to_dict, _services_stage_from_dict),
    "routes": (_routes_stage_to_dict, _routes_stage_from_dict),
    "aux-atlas": (_atlas_stage_to_dict, _atlas_stage_from_dict),
    "aux-reverse-traceroute": (_path_pairs_to_dict,
                               _path_pairs_from_dict),
    "aux-cloud-vantage": (_cloud_result_to_dict, _cloud_result_from_dict),
    "aux-ipid": (_ipid_analyses_to_dict, _ipid_analyses_from_dict),
    "aux-resolver-assoc": (_resolver_assoc_to_dict,
                           _resolver_assoc_from_dict),
}

#: Stage names with a registered payload codec, in builder order.
CODEC_STAGES = tuple(_STAGE_CODECS)


def stage_payload_to_dict(stage: str, value: Any) -> Any:
    """Encode one builder stage's output for a ``repro.ckpt`` snapshot.

    ``value`` is the stage's native output (a campaign result, a fused
    component bundle, an auxiliary artefact — possibly None when the
    campaign failed); the return value is plain-JSON serialisable. Dict
    insertion order is deliberately preserved (see module docstring).
    """
    try:
        encode, __ = _STAGE_CODECS[stage]
    except KeyError:
        raise ValidationError(
            f"no payload codec for stage {stage!r} "
            f"(known: {', '.join(_STAGE_CODECS)})") from None
    return encode(value)


def stage_payload_from_dict(stage: str, payload: Any,
                            atlas: Optional[WorldAtlas] = None) -> Any:
    """Decode a snapshot payload back into the stage's native output.

    The inverse of :func:`stage_payload_to_dict`; malformed payloads
    raise :class:`ValidationError` naming the offending key. ``atlas``
    resolves serialized cities (services sites, atlas vantage points).
    """
    try:
        __, decode = _STAGE_CODECS[stage]
    except KeyError:
        raise ValidationError(
            f"no payload codec for stage {stage!r} "
            f"(known: {', '.join(_STAGE_CODECS)})") from None
    return decode(payload, atlas or WorldAtlas.default(),
                  f"stage[{stage!r}]")
