"""Map serialisation: ship the ITM as a JSON artefact.

The paper imagines the community *publishing* the traffic map for others
to weight their analyses with (§4). This module round-trips the
measurement-derived parts of an :class:`InternetTrafficMap` through plain
JSON: activity weights, service sites (with estimated cities as
country/name pairs), user-to-host mappings, and predicted routes.

Ground-truth-derived metadata (the scenario's prefix table) is *not*
embedded; the loader re-attaches it from a scenario when cross-component
queries need it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

from ..errors import ValidationError
from ..net.geography import WorldAtlas
from .traffic_map import (ComponentCoverage, InternetTrafficMap,
                          MappedSite, RoutesComponent, ServicesComponent,
                          UsersComponent)

FORMAT_VERSION = 1


def map_to_dict(itm: InternetTrafficMap) -> Dict[str, Any]:
    """Serialisable dict of the map's measurement-derived content."""
    sites = {
        org: [{
            "prefix_id": site.prefix_id,
            "asn": site.asn,
            "city": ([site.estimated_city.country_code,
                      site.estimated_city.name]
                     if site.estimated_city is not None else None),
            "offnet": site.is_offnet,
        } for site in site_list]
        for org, site_list in itm.services.sites_by_org.items()}
    return {
        "format_version": FORMAT_VERSION,
        "seed": itm.metadata.get("seed"),
        "users": {
            "detected_prefixes": [int(p) for p in
                                  itm.users.detected_prefixes],
            "activity_by_prefix": {str(k): v for k, v in
                                   itm.users.activity_by_prefix.items()},
            "activity_by_as": {str(k): v for k, v in
                               itm.users.activity_by_as.items()},
            "techniques": list(itm.users.techniques),
        },
        "services": {
            "sites_by_org": sites,
            "serving_asns_by_domain": {
                d: sorted(asns) for d, asns in
                itm.services.serving_asns_by_domain.items()},
            "user_to_host": {
                key: {str(c): a for c, a in mapping.items()}
                for key, mapping in itm.services.user_to_host.items()},
            "unmapped_services": list(itm.services.unmapped_services),
        },
        "routes": {
            "paths": [{
                "src": src, "dst": dst,
                "path": list(path) if path is not None else None,
            } for (src, dst), path in itm.routes.paths.items()],
            "predictability": itm.routes.predictability,
        },
        "coverage": {
            name: {
                "coverage": record.coverage,
                "techniques_intended": list(record.techniques_intended),
                "techniques_delivered": list(record.techniques_delivered),
                "notes": list(record.notes),
            } for name, record in itm.coverage.items()},
    }


def map_to_json(itm: InternetTrafficMap, indent: Optional[int] = None
                ) -> str:
    """JSON string form of :func:`map_to_dict`."""
    return json.dumps(map_to_dict(itm), indent=indent, sort_keys=True)


def map_from_dict(payload: Dict[str, Any],
                  atlas: Optional[WorldAtlas] = None,
                  prefix_asn: Optional[np.ndarray] = None
                  ) -> InternetTrafficMap:
    """Rebuild a map from its serialised form.

    ``atlas`` resolves site cities back to :class:`City` objects;
    ``prefix_asn`` re-enables the cross-component queries that need the
    prefix-to-AS table.
    """
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported map format {payload.get('format_version')!r}")
    atlas = atlas or WorldAtlas.default()

    users_raw = payload["users"]
    users = UsersComponent(
        detected_prefixes=np.asarray(users_raw["detected_prefixes"],
                                     dtype=int),
        activity_by_prefix={int(k): float(v) for k, v in
                            users_raw["activity_by_prefix"].items()},
        activity_by_as={int(k): float(v) for k, v in
                        users_raw["activity_by_as"].items()},
        techniques=tuple(users_raw["techniques"]))

    services_raw = payload["services"]
    sites_by_org = {}
    for org, site_list in services_raw["sites_by_org"].items():
        sites = []
        for entry in site_list:
            city = None
            if entry["city"] is not None:
                code, name = entry["city"]
                city = atlas.city(code, name)
            sites.append(MappedSite(
                prefix_id=int(entry["prefix_id"]),
                asn=int(entry["asn"]),
                organization=org,
                estimated_city=city,
                is_offnet=bool(entry["offnet"])))
        sites_by_org[org] = sites
    services = ServicesComponent(
        sites_by_org=sites_by_org,
        serving_asns_by_domain={
            d: set(asns) for d, asns in
            services_raw["serving_asns_by_domain"].items()},
        user_to_host={
            key: {int(c): int(a) for c, a in mapping.items()}
            for key, mapping in services_raw["user_to_host"].items()},
        unmapped_services=tuple(services_raw["unmapped_services"]))

    routes_raw = payload["routes"]
    paths = {}
    for entry in routes_raw["paths"]:
        path = tuple(entry["path"]) if entry["path"] is not None else None
        paths[(int(entry["src"]), int(entry["dst"]))] = path
    routes = RoutesComponent(
        paths=paths,
        predictability=float(routes_raw["predictability"]))

    # Tolerant: artefacts written before coverage reporting lack the key.
    coverage = {
        name: ComponentCoverage(
            component=name,
            coverage=float(entry["coverage"]),
            techniques_intended=tuple(entry["techniques_intended"]),
            techniques_delivered=tuple(entry["techniques_delivered"]),
            notes=tuple(entry.get("notes", ())))
        for name, entry in payload.get("coverage", {}).items()}

    metadata: Dict[str, Any] = {"seed": payload.get("seed")}
    if prefix_asn is not None:
        metadata["prefix_asn"] = prefix_asn
    return InternetTrafficMap(users=users, services=services,
                              routes=routes, metadata=metadata,
                              coverage=coverage)


def map_from_json(text: str, atlas: Optional[WorldAtlas] = None,
                  prefix_asn: Optional[np.ndarray] = None
                  ) -> InternetTrafficMap:
    """Parse JSON text and rebuild the map (see :func:`map_from_dict`)."""
    return map_from_dict(json.loads(text), atlas=atlas,
                         prefix_asn=prefix_asn)
