"""Path prediction from the public topology (§3.3).

"Approaches to predict routes use measured topologies and AS
relationships, coupled with common routing policies [35, 42]. This method
only works if the actual routes exist in the measured topology, but
available vantage points cannot uncover most peering links for large
content providers. When we tried to predict paths from RIPE Atlas probes
to root DNS servers, more than half could not be predicted due to missing
links."

:class:`PathPredictor` runs the same valley-free policy model the real
Internet (simulation) uses, but over the *collector-visible* graph — so
its failures are exactly the missing-link failures the paper describes.
:func:`evaluate_prediction` scores predictions against true paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ValidationError
from ..net.collectors import PublicTopologyView
from ..net.routing import BgpSimulator


class PathPredictor:
    """Valley-free prediction over a (public, incomplete) AS graph.

    Optionally augment the public graph with *predicted* links before
    predicting paths — the §3.3.3 loop closed: "Is it possible to predict
    with high confidence which links exist, to feed into a path prediction
    algorithm?" Use :meth:`with_augmented_links`.
    """

    def __init__(self, public_view: PublicTopologyView,
                 recorder=None) -> None:
        self._view = public_view
        self._bgp = BgpSimulator(public_view.graph, recorder=recorder)

    @classmethod
    def with_augmented_links(cls, public_view: PublicTopologyView,
                             predicted_links: Sequence[Tuple[int, int]]
                             ) -> "PathPredictor":
        """A predictor over public topology + recommender-predicted links.

        Predicted links are installed as settlement-free peerings (the
        class the recommender targets); links already present are
        skipped.
        """
        augmented = public_view.graph.copy()
        added = 0
        for a, b in predicted_links:
            if a == b or a not in augmented or b not in augmented:
                continue
            if augmented.relationship_of(a, b) is None:
                augmented.add_p2p(a, b)
                added += 1
        view = PublicTopologyView(
            graph=augmented,
            vantage_asns=public_view.vantage_asns,
            visible_links=augmented.link_set())
        predictor = cls(view)
        predictor.augmented_link_count = added
        return predictor

    def predict(self, src_asn: int, dst_asn: int
                ) -> Optional[Tuple[int, ...]]:
        """Predicted AS path, or None when the public graph has no
        policy-compliant route (the missing-link failure mode)."""
        return self._bgp.path(src_asn, dst_asn)

    def predict_many(self, pairs: Sequence[Tuple[int, int]]
                     ) -> Dict[Tuple[int, int], Optional[Tuple[int, ...]]]:
        """Predict many pairs, grouping by destination so each route
        table is computed once and paths are pulled in bulk."""
        by_dst: Dict[int, List[int]] = {}
        for src, dst in pairs:
            by_dst.setdefault(dst, []).append(src)
        out: Dict[Tuple[int, int], Optional[Tuple[int, ...]]] = {}
        for dst, srcs in by_dst.items():
            paths = self._bgp.routes_to([dst]).paths_for(srcs)
            for src in srcs:
                out[(src, dst)] = paths[src]
        return out


@dataclass
class PredictionEvaluation:
    """Prediction quality against ground-truth paths."""

    attempted: int
    unpredictable: int          # no route in the public topology
    exact_matches: int          # predicted path == true path
    length_matches: int         # same AS-path length
    mean_length_error: float    # |predicted - true| hops, where predicted

    @property
    def unpredictable_fraction(self) -> float:
        if self.attempted == 0:
            raise ValidationError("no predictions attempted")
        return self.unpredictable / self.attempted

    @property
    def exact_fraction(self) -> float:
        return self.exact_matches / self.attempted if self.attempted else 0.0


def evaluate_prediction(
        predictions: Dict[Tuple[int, int], Optional[Tuple[int, ...]]],
        true_paths: Dict[Tuple[int, int], Optional[Tuple[int, ...]]],
) -> PredictionEvaluation:
    """Compare predictions to ground truth over the same pair set.

    Pairs unreachable in the *true* topology are excluded (nothing to
    predict); a prediction of None for a truly-routable pair counts as
    unpredictable.
    """
    attempted = 0
    unpredictable = 0
    exact = 0
    length_match = 0
    errors: List[float] = []
    for pair, true_path in true_paths.items():
        if true_path is None:
            continue
        attempted += 1
        predicted = predictions.get(pair)
        if predicted is None:
            unpredictable += 1
            continue
        if predicted == true_path:
            exact += 1
        if len(predicted) == len(true_path):
            length_match += 1
        errors.append(abs(len(predicted) - len(true_path)))
    mean_error = float(sum(errors) / len(errors)) if errors else 0.0
    return PredictionEvaluation(
        attempted=attempted, unpredictable=unpredictable,
        exact_matches=exact, length_matches=length_match,
        mean_length_error=mean_error)
