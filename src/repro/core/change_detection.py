"""Traffic-anomaly detection from probing deltas (§2.1, operator view).

"Network operators can lack visibility to contextualize network events
such as network blackouts, performance anomalies, unusual traffic
patterns, or DDoS attacks."

Given two cache-probing campaigns (a baseline and a current one), the
detector compares per-AS hit counts and flags networks whose activity
changed beyond sampling noise. Hit counts are binomial sums, so the
per-AS z-score uses a Poisson-style variance estimate on the baseline.

This turns the map's users component into a monitoring primitive: run the
probing campaign daily, diff, and the map tells you *where* the Internet
changed — without any operator's private telemetry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ValidationError
from ..measure.cache_probing import CacheProbingResult
from ..net.prefixes import PrefixTable


@dataclass(frozen=True)
class ActivityChange:
    """One AS whose measured activity moved."""

    asn: int
    baseline_hits: float
    current_hits: float
    z_score: float

    @property
    def direction(self) -> str:
        return "surge" if self.current_hits > self.baseline_hits \
            else "drop"

    @property
    def ratio(self) -> float:
        if self.baseline_hits <= 0:
            return math.inf
        return self.current_hits / self.baseline_hits


@dataclass
class ChangeReport:
    """All flagged ASes, strongest change first."""

    changes: List[ActivityChange]
    threshold_z: float
    ases_compared: int

    def surges(self) -> List[ActivityChange]:
        return [c for c in self.changes if c.direction == "surge"]

    def drops(self) -> List[ActivityChange]:
        return [c for c in self.changes if c.direction == "drop"]

    def flagged_asns(self) -> "set[int]":
        return {c.asn for c in self.changes}


def detect_activity_changes(baseline: CacheProbingResult,
                            current: CacheProbingResult,
                            prefix_table: PrefixTable,
                            threshold_z: float = 4.0,
                            min_baseline_hits: float = 20.0
                            ) -> ChangeReport:
    """Diff two campaigns; flag per-AS hit-count changes beyond noise.

    Campaigns must probe the same prefix set with the same budget
    (otherwise counts are not comparable).
    """
    if baseline.probes_per_prefix != current.probes_per_prefix:
        raise ValidationError("campaigns used different probe budgets")
    if len(baseline.prefix_ids) != len(current.prefix_ids):
        raise ValidationError("campaigns probed different prefix sets")
    base_by_as = baseline.hit_counts_by_as(prefix_table)
    curr_by_as = current.hit_counts_by_as(prefix_table)
    changes: List[ActivityChange] = []
    compared = 0
    for asn in sorted(set(base_by_as) | set(curr_by_as)):
        base = base_by_as.get(asn, 0.0)
        curr = curr_by_as.get(asn, 0.0)
        if base < min_baseline_hits and curr < min_baseline_hits:
            continue
        compared += 1
        # Binomial/Poisson noise on both sides of the diff.
        sigma = math.sqrt(max(base, 1.0) + max(curr, 1.0))
        z = (curr - base) / sigma
        if abs(z) >= threshold_z:
            changes.append(ActivityChange(
                asn=asn, baseline_hits=base, current_hits=curr,
                z_score=z))
    changes.sort(key=lambda c: (-abs(c.z_score), c.asn))
    return ChangeReport(changes=changes, threshold_z=threshold_z,
                        ases_compared=compared)
