"""Relative route volumes: the traffic map's punchline.

"This map would identify the locations of users and major services, the
paths between them, and the relative activity levels routed along these
paths." (abstract) — and: "no work we are aware of can answer how much
traffic routes carry relative to each other without using proprietary
data" (§1).

This module answers it from the map's own components with a gravity
model:

    volume(client AS, provider) ∝ activity(client) x mass(provider)

* ``activity(client)`` — the users component's per-AS weight (cache
  probing + root logs);
* ``mass(provider)`` — a *public* size proxy for each serving
  organisation: its TLS-scan footprint (serving prefixes found), which
  tracks deployment scale.

Off-net awareness: where the services component saw an off-net cache of
the provider inside the client's AS, the model assigns that share to the
*local* route (volume stays inside the AS) — capturing the paper's point
that much hypergiant traffic never crosses an inter-domain link at all.

Validation (`repro.core.validation` side): rank correlation between
estimated relative volumes and the ground-truth flow assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import stats

from ..errors import ValidationError
from .traffic_map import InternetTrafficMap


@dataclass
class RouteVolumeEstimate:
    """Relative volume per (client ASN, provider org), summing to 1."""

    volumes: Dict[Tuple[int, str], float]
    local_share: float     # fraction estimated to stay inside client ASes
    providers: Tuple[str, ...]

    def volume(self, client_asn: int, provider: str) -> float:
        return self.volumes.get((client_asn, provider), 0.0)

    def top_routes(self, k: int = 20
                   ) -> List[Tuple[Tuple[int, str], float]]:
        ranked = sorted(self.volumes.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def volume_by_client(self) -> Dict[int, float]:
        totals: Dict[int, float] = {}
        for (asn, __), volume in self.volumes.items():
            totals[asn] = totals.get(asn, 0.0) + volume
        return totals


def estimate_route_volumes(itm: InternetTrafficMap,
                           min_provider_prefixes: int = 5
                           ) -> RouteVolumeEstimate:
    """Gravity-model route volumes from the map alone (public data)."""
    activity = itm.users.activity_by_as
    if not activity:
        raise ValidationError("map has no activity weights")
    footprints = {org: sites for org, sites
                  in itm.services.sites_by_org.items()
                  if len(sites) >= min_provider_prefixes}
    if not footprints:
        raise ValidationError("map has no provider footprints")

    provider_mass = {org: float(len(sites))
                     for org, sites in footprints.items()}
    mass_total = sum(provider_mass.values())
    provider_share = {org: m / mass_total
                      for org, m in provider_mass.items()}

    offnet_hosts: Dict[str, "set[int]"] = {
        org: {site.asn for site in sites if site.is_offnet}
        for org, sites in footprints.items()}

    volumes: Dict[Tuple[int, str], float] = {}
    local = 0.0
    for asn, weight in activity.items():
        for org, share in provider_share.items():
            volume = weight * share
            volumes[(asn, org)] = volume
            if asn in offnet_hosts[org]:
                local += volume
    total = sum(volumes.values())
    volumes = {key: v / total for key, v in volumes.items()}
    return RouteVolumeEstimate(
        volumes=volumes,
        local_share=local / total,
        providers=tuple(sorted(provider_share)))


def score_route_volume_estimate(estimate: RouteVolumeEstimate,
                                true_pair_volumes: Dict[Tuple[int, int],
                                                        float],
                                org_of_asn: Dict[int, str],
                                intra_as_volumes: Optional[
                                    Dict[int, float]] = None
                                ) -> float:
    """Spearman correlation of estimated vs true route volumes.

    ``true_pair_volumes`` is the ground-truth (client ASN, host ASN)
    volume map; ``org_of_asn`` translates host ASNs to certificate
    organisations (how the map names providers). ``intra_as_volumes``
    adds the off-net (local) ground truth, compared against the
    estimate's local routes.
    """
    truth_by_key: Dict[Tuple[int, str], float] = {}
    for (client, host), volume in true_pair_volumes.items():
        org = org_of_asn.get(host)
        if org is None:
            continue
        key = (client, org)
        truth_by_key[key] = truth_by_key.get(key, 0.0) + volume
    common = sorted(set(truth_by_key) & set(estimate.volumes))
    if len(common) < 10:
        raise ValidationError("too few comparable routes")
    rho = stats.spearmanr(
        [truth_by_key[k] for k in common],
        [estimate.volumes[k] for k in common]).statistic
    return float(rho)
