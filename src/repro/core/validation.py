"""Validation of the map against the scenario's ground truth.

This module is the only consumer of privileged data on the analysis side —
it plays the role the CDN logs play in the paper's own validation
("similar to how Google and Microsoft validated recent work uncovering
their peers and deployment footprints", §4).

Metrics mirror the paper's:

* **traffic coverage** — what fraction of a hypergiant's bytes originate
  in detected prefixes (paper: 95% cache probing) or detected ASes
  (paper: 60% root logs; 99% combined);
* **user coverage** — share of (APNIC-estimated) users in detected ASes
  (paper: 98%);
* **false positives** — detected prefixes that never contact the
  hypergiant (paper: <1%);
* **activity fidelity** — Spearman correlation between estimated and true
  per-AS activity;
* **mapping optimality / geolocation error** for the services component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..errors import ValidationError
from ..net.geography import haversine_km
from ..population.apnic import ApnicDataset
from ..net.ases import ASRegistry
from ..net.prefixes import PrefixTable
from ..scenario import Scenario
from ..traffic.matrix import TrafficMatrix
from .traffic_map import InternetTrafficMap, UsersComponent


@dataclass
class UsersValidation:
    """Scores for the users component against one hypergiant's truth."""

    hypergiant_key: str
    prefix_traffic_coverage: float      # paper C1: ~0.95
    as_traffic_coverage: float          # paper C3 numerator: ~0.99
    false_positive_rate: float          # paper: < 0.01
    apnic_user_coverage: float          # paper: ~0.98
    activity_spearman: float            # §3.1.3 fidelity


def validate_users_component(users: UsersComponent, scenario: Scenario,
                             hypergiant_key: str) -> UsersValidation:
    """Score a users component the way the paper scores its techniques."""
    matrix = scenario.traffic
    prefixes = scenario.prefixes

    detected_pids = np.asarray(users.detected_prefixes, dtype=int)
    if detected_pids.size == 0:
        raise ValidationError("users component detected nothing")
    prefix_cov = matrix.coverage_of_prefix_set(detected_pids,
                                               hypergiant_key)
    as_cov = matrix.coverage_of_as_set(users.detected_as_set(),
                                       hypergiant_key)

    hg_bytes = matrix.bytes_for_hypergiant(hypergiant_key)
    contacted = hg_bytes[detected_pids] > 0
    false_positive_rate = float(1.0 - contacted.mean())

    apnic_cov = apnic_user_share(users.detected_as_set(), scenario.apnic)

    truth_by_as = matrix.bytes_by_as()
    est = users.activity_by_as
    common = sorted(set(truth_by_as) & set(est))
    if len(common) >= 3:
        rho = stats.spearmanr([truth_by_as[a] for a in common],
                              [est[a] for a in common]).statistic
        activity_rho = float(rho)
    else:
        activity_rho = float("nan")

    return UsersValidation(
        hypergiant_key=hypergiant_key,
        prefix_traffic_coverage=prefix_cov,
        as_traffic_coverage=as_cov,
        false_positive_rate=false_positive_rate,
        apnic_user_coverage=apnic_cov,
        activity_spearman=activity_rho)


def apnic_user_share(detected_asns: "set[int]",
                     apnic: ApnicDataset) -> float:
    """Share of APNIC-estimated users inside the detected AS set."""
    total = apnic.total_users
    if total <= 0:
        raise ValidationError("APNIC dataset is empty")
    covered = sum(users for asn, users in apnic.estimates.items()
                  if asn in detected_asns)
    return covered / total


@dataclass
class ServicesValidation:
    """Scores for the services component."""

    org_recall: float                    # orgs with discovered footprints
    offnet_recall: Dict[str, float]      # per hg: off-net hosts found
    mapping_agreement: float             # ECS answers == ground truth site
    geolocation_median_error_km: Optional[float]


def validate_services_component(itm: InternetTrafficMap,
                                scenario: Scenario) -> ServicesValidation:
    """Score the services component against the true deployment."""
    catalog = scenario.catalog
    deployment = scenario.deployment

    # Organisation recall: every hypergiant should have a TLS footprint.
    orgs_found = set(itm.services.sites_by_org)
    hg_orgs = {spec.cert_org for spec in catalog.hypergiants.values()}
    org_recall = len(orgs_found & hg_orgs) / len(hg_orgs)

    # Off-net recall per hypergiant with an off-net programme.
    offnet_recall: Dict[str, float] = {}
    for key, spec in catalog.hypergiants.items():
        true_hosts = {site.host_asn for site in deployment.sites(key)
                      if site.is_offnet}
        if not true_hosts:
            continue
        found = itm.services.offnet_asns(spec.cert_org)
        offnet_recall[key] = len(found & true_hosts) / len(true_hosts)

    # ECS mapping agreement: answers should equal ground-truth sites.
    agreements = []
    for service_key, mapping in itm.services.user_to_host.items():
        service = catalog.get(service_key)
        assignment = scenario.mapping.assignment_for_service(service)
        if assignment is None:
            continue
        sites = scenario.mapping.sites_of(service.host_key)
        answer_pid_of_site = {s.site_id: s.prefix_ids[0] for s in sites}
        sample = list(mapping.items())[:2000]
        for client_pid, answer_pid in sample:
            true_site = int(assignment.site_index[client_pid])
            if true_site >= 0:
                agreements.append(
                    answer_pid == answer_pid_of_site[true_site])
    mapping_agreement = float(np.mean(agreements)) if agreements else 0.0

    # Geolocation error for sites the builder located.
    errors = []
    for org, sites in itm.services.sites_by_org.items():
        for site in sites:
            if site.estimated_city is None:
                continue
            true_city = scenario.prefixes.city_of(site.prefix_id)
            errors.append(haversine_km(
                site.estimated_city.lat, site.estimated_city.lon,
                true_city.lat, true_city.lon))
    median_err = float(np.median(errors)) if errors else None

    return ServicesValidation(
        org_recall=org_recall,
        offnet_recall=offnet_recall,
        mapping_agreement=mapping_agreement,
        geolocation_median_error_km=median_err)


def validate_coverage_report(itm: InternetTrafficMap) -> None:
    """Internal consistency of a map's coverage/provenance records.

    Needs no ground truth — it cross-checks the coverage report against
    the components themselves, so it runs on degraded builds too. Raises
    :class:`ValidationError` on any inconsistency.
    """
    for name in ("users", "services", "routes"):
        if name not in itm.coverage:
            raise ValidationError(f"coverage report lacks {name!r}")
    for name, record in itm.coverage.items():
        if record.component != name:
            raise ValidationError(
                f"coverage record {name!r} labelled {record.component!r}")
        if not 0.0 <= record.coverage <= 1.0:
            raise ValidationError(
                f"{name} coverage {record.coverage!r} outside [0, 1]")
        undeclared = set(record.techniques_delivered) \
            - set(record.techniques_intended)
        if undeclared:
            raise ValidationError(
                f"{name} delivered techniques never intended: "
                f"{sorted(undeclared)}")
    users_record = itm.coverage["users"]
    if set(itm.users.techniques) != set(users_record.techniques_delivered):
        raise ValidationError(
            "users component techniques disagree with coverage report")
    if not users_record.techniques_delivered \
            and len(itm.users.detected_prefixes) > 0:
        raise ValidationError(
            "users component detected prefixes without any technique")


@dataclass
class RoutesValidation:
    """Scores for the routes component against true paths."""

    pairs_scored: int
    exact_path_fraction: float
    unpredictable_fraction: float


def validate_routes_component(itm: InternetTrafficMap,
                              scenario: Scenario) -> RoutesValidation:
    """Score predicted routes against true (simulated) paths."""
    exact = 0
    unpredictable = 0
    scored = 0
    by_dst: Dict[int, list] = {}
    for (src, dst), predicted in itm.routes.paths.items():
        by_dst.setdefault(dst, []).append((src, predicted))
    for dst, entries in by_dst.items():
        true_paths = scenario.bgp.routes_to([dst]).paths_for(
            src for src, __ in entries)
        for src, predicted in entries:
            true_path = true_paths[src]
            if true_path is None:
                continue
            scored += 1
            if predicted is None:
                unpredictable += 1
            elif predicted == true_path:
                exact += 1
    if scored == 0:
        raise ValidationError("no routable pairs to score")
    return RoutesValidation(
        pairs_scored=scored,
        exact_path_fraction=exact / scored,
        unpredictable_fraction=unpredictable / scored)
