"""Peering-link prediction as a recommendation problem (§3.3.3).

"Given two networks are both present in a facility, it may be possible to
develop techniques to predict how likely it is that two networks
interconnect at that facility. Such predictions could rely on publicly
available information about networks, such as their peering policy,
traffic profile, customer cone size, user activity, and network type. With
the assumption that networks with similar peering profiles are likely to
peer with the same networks, one could formulate the problem as a
recommendation system [45]."

The recommender scores co-located AS pairs using only public inputs:

* **collaborative signal** — cosine similarity between the candidate pair's
  neighbourhoods in the *public* (collector-visible) graph: networks that
  already share many visible peers likely peer with each other too;
* **content-affinity** — content networks peer with eyeball/inbound-heavy
  networks (traffic-profile complementarity);
* **policy** — open policies peer more readily than restrictive ones;
* **colocation breadth** — more shared facilities, more opportunity;
* **activity prior** — an optional per-AS user-activity weight (from the
  map's own users component: the ITM feeding its own construction).

Evaluation: hide the actually-invisible links (actual minus public), rank
all co-located candidate pairs, report AUC and precision-at-k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ValidationError
from ..net.ases import ASRegistry, ASType, PeeringPolicy, TrafficProfile
from ..net.facilities import PeeringRegistry
from ..net.relationships import ASGraph

POLICY_SCORE = {
    PeeringPolicy.OPEN: 1.0,
    PeeringPolicy.SELECTIVE: 0.55,
    PeeringPolicy.RESTRICTIVE: 0.15,
}


@dataclass(frozen=True)
class LinkScore:
    """One scored candidate pair."""

    pair: Tuple[int, int]
    score: float
    shared_facilities: int


@dataclass
class RecommendationEvaluation:
    """Ranking quality over held-out links."""

    auc: float
    precision_at_k: float
    k: int
    positives: int
    candidates: int


class PeeringRecommender:
    """Scores co-located AS pairs for peering likelihood (public data)."""

    def __init__(self, public_graph: ASGraph, registry: ASRegistry,
                 peeringdb: PeeringRegistry,
                 activity_by_as: Optional[Dict[int, float]] = None) -> None:
        self._graph = public_graph
        self._registry = registry
        self._pdb = peeringdb
        self._activity = activity_by_as or {}
        self._neighbors: Dict[int, Set[int]] = {}

    def _neighborhood(self, asn: int) -> Set[int]:
        if asn not in self._neighbors:
            self._neighbors[asn] = self._graph.neighbors_of(asn)
        return self._neighbors[asn]

    def score_pair(self, a: int, b: int) -> float:
        """Peering likelihood score for one co-located pair."""
        shared = self._pdb.common_facilities(a, b)
        if not shared:
            return 0.0
        as_a = self._registry.get(a)
        as_b = self._registry.get(b)
        # Collaborative: cosine similarity of visible neighbourhoods.
        na, nb = self._neighborhood(a), self._neighborhood(b)
        common = len(na & nb)
        denom = math.sqrt(max(len(na), 1) * max(len(nb), 1))
        collaborative = common / denom
        # Policy willingness (geometric mean of the two policies).
        policy = math.sqrt(POLICY_SCORE[as_a.peering_policy]
                           * POLICY_SCORE[as_b.peering_policy])
        # Traffic complementarity: outbound-heavy <-> inbound-heavy pairs
        # (content meets eyeballs) are the classic peering motive.
        profiles = {as_a.traffic_profile, as_b.traffic_profile}
        if profiles == {TrafficProfile.HEAVY_OUTBOUND,
                        TrafficProfile.HEAVY_INBOUND}:
            complementarity = 1.0
        elif TrafficProfile.BALANCED in profiles:
            complementarity = 0.5
        else:
            complementarity = 0.25
        # Colocation breadth saturates quickly.
        breadth = 1.0 - math.exp(-0.5 * len(shared))
        # Activity prior: a content network wants the eyeball's users.
        activity = (self._activity.get(a, 0.0)
                    + self._activity.get(b, 0.0))
        activity_boost = 1.0 + min(1.0, 50.0 * activity)
        base = (0.45 * collaborative + 0.25 * policy
                + 0.20 * complementarity + 0.10 * breadth)
        return base * activity_boost

    def rank_candidates(self, candidate_pairs: Sequence[Tuple[int, int]]
                        ) -> List[LinkScore]:
        """Score and sort candidate pairs (highest first)."""
        scored = []
        for a, b in candidate_pairs:
            pair = (min(a, b), max(a, b))
            scored.append(LinkScore(
                pair=pair, score=self.score_pair(*pair),
                shared_facilities=len(self._pdb.common_facilities(a, b))))
        scored.sort(key=lambda s: (-s.score, s.pair))
        return scored

    def recommend_missing_links(self, top_k: int = 100) -> List[LinkScore]:
        """Predict the strongest not-yet-visible links among co-located
        pairs — the §3.3.3 output that would feed path prediction."""
        candidates = [pair for pair in self._pdb.colocated_pairs()
                      if self._graph.relationship_of(*pair) is None]
        return self.rank_candidates(sorted(candidates))[:top_k]


def evaluate_recommender(recommender: PeeringRecommender,
                         hidden_links: Set[Tuple[int, int]],
                         negative_pairs: Set[Tuple[int, int]],
                         k: int = 100) -> RecommendationEvaluation:
    """AUC / precision@k over held-out true links vs. true non-links."""
    positives = sorted(hidden_links)
    negatives = sorted(negative_pairs - hidden_links)
    if not positives or not negatives:
        raise ValidationError("need both positive and negative pairs")
    pos_scores = np.array([recommender.score_pair(*p) for p in positives])
    neg_scores = np.array([recommender.score_pair(*p) for p in negatives])
    # AUC = P(random positive outscores random negative), ties count half.
    wins = (pos_scores[:, None] > neg_scores[None, :]).sum()
    ties = (pos_scores[:, None] == neg_scores[None, :]).sum()
    auc = float((wins + 0.5 * ties) / (len(positives) * len(negatives)))
    ranked = recommender.rank_candidates(positives + negatives)
    top = ranked[:k]
    hidden = set(positives)
    hits = sum(1 for s in top if s.pair in hidden)
    return RecommendationEvaluation(
        auc=auc, precision_at_k=hits / max(1, len(top)), k=k,
        positives=len(positives),
        candidates=len(positives) + len(negatives))
