"""The Internet Traffic Map data model (Table 1's three components).

1. **Users component** — which prefixes host users and their relative
   activity (§3.1);
2. **Services component** — where popular services are hosted and the
   user-to-host mapping (§3.2);
3. **Routes component** — routes commonly used between users and services
   (§3.3).

Everything in the map derives from public measurements; the map object
itself never touches ground truth. "Organizing the components together
into one entity (a map) enables us to answer rich questions and identify
connections among components" (§2.1) — the cross-component queries at the
bottom of :class:`InternetTrafficMap` are exactly those questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ValidationError
from ..net.geography import City


@dataclass
class UsersComponent:
    """Where users are, and at what relative activity level."""

    detected_prefixes: np.ndarray           # prefix ids with client activity
    activity_by_prefix: Dict[int, float]    # relative activity, sums to 1
    activity_by_as: Dict[int, float]        # relative activity, sums to 1
    techniques: Tuple[str, ...]             # provenance

    def prefix_weight(self, pid: int) -> float:
        return self.activity_by_prefix.get(pid, 0.0)

    def as_weight(self, asn: int) -> float:
        return self.activity_by_as.get(asn, 0.0)

    def detected_as_set(self) -> "set[int]":
        return set(self.activity_by_as)

    def top_ases(self, k: int = 10) -> List[Tuple[int, float]]:
        ranked = sorted(self.activity_by_as.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


@dataclass(frozen=True)
class MappedSite:
    """A serving location as the map knows it (from scans, not ground
    truth): address prefix, hosting AS, estimated city."""

    prefix_id: int
    asn: int
    organization: str
    estimated_city: Optional[City]
    is_offnet: bool


@dataclass
class ServicesComponent:
    """Where services are hosted + the user->host mapping."""

    sites_by_org: Dict[str, List[MappedSite]]
    serving_asns_by_domain: Dict[str, "set[int]"]
    # service key -> (client prefix id -> answer prefix id), from ECS.
    user_to_host: Dict[str, Dict[int, int]]
    unmapped_services: Tuple[str, ...]      # no ECS / anycast / custom URL

    def sites_of(self, organization: str) -> List[MappedSite]:
        return list(self.sites_by_org.get(organization, []))

    def offnet_asns(self, organization: str) -> "set[int]":
        return {s.asn for s in self.sites_of(organization) if s.is_offnet}

    def host_for_user(self, service_key: str,
                      client_pid: int) -> Optional[int]:
        return self.user_to_host.get(service_key, {}).get(client_pid)

    def mapped_services(self) -> List[str]:
        return sorted(self.user_to_host)


@dataclass
class RoutesComponent:
    """Commonly-used routes between users and services.

    Predicted from the public topology; ``None`` paths mark pairs the
    predictor could not cover (the §3.3.1 missing-link problem, recorded
    rather than papered over).
    """

    paths: Dict[Tuple[int, int], Optional[Tuple[int, ...]]]
    predictability: float       # fraction of attempted pairs predicted

    def path_between(self, src_asn: int,
                     dst_asn: int) -> Optional[Tuple[int, ...]]:
        return self.paths.get((src_asn, dst_asn))

    def attempted_pairs(self) -> int:
        return len(self.paths)


@dataclass(frozen=True)
class ComponentCoverage:
    """Provenance and delivered coverage of one map component.

    ``coverage`` is the fraction of the component's measurement units
    that ultimately succeeded (1.0 on a clean build). A component is
    *degraded* when some units were lost or an intended technique
    delivered nothing — the honest labelling §4.2 asks maps to carry.
    """

    component: str
    coverage: float
    techniques_intended: Tuple[str, ...]
    techniques_delivered: Tuple[str, ...]
    notes: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return (self.coverage < 1.0 or
                set(self.techniques_delivered)
                != set(self.techniques_intended))


@dataclass
class InternetTrafficMap:
    """The assembled map: the paper's proposed artefact."""

    users: UsersComponent
    services: ServicesComponent
    routes: RoutesComponent
    metadata: Dict[str, object] = field(default_factory=dict)
    # Per-component provenance/coverage ("users" / "services" / "routes").
    coverage: Dict[str, ComponentCoverage] = field(default_factory=dict)

    # -- cross-component queries (§2.1) -----------------------------------

    def traffic_weight_for_as(self, asn: int) -> float:
        """Relative activity weight for weighting analyses."""
        return self.users.as_weight(asn)

    def weights_for_ases(self, asns: Sequence[int]) -> np.ndarray:
        return np.array([self.users.as_weight(a) for a in asns])

    def services_serving_as(self, asn: int) -> List[str]:
        """Which mapped services serve users of this AS, per the ECS
        user-to-host component."""
        found: List[str] = []
        for service_key, mapping in self.services.user_to_host.items():
            for client_pid, __ in mapping.items():
                if self.users.prefix_weight(client_pid) > 0 and \
                        self._prefix_in_as(client_pid, asn):
                    found.append(service_key)
                    break
        return sorted(set(found))

    def _prefix_in_as(self, pid: int, asn: int) -> bool:
        prefix_asn = self.metadata.get("prefix_asn")
        if prefix_asn is None:
            raise ValidationError("map metadata lacks prefix_asn table")
        return int(prefix_asn[pid]) == asn

    def activity_share_of_ases(self, asns: "set[int]") -> float:
        """Fraction of global activity in an AS set (outage sizing)."""
        return sum(w for asn, w in self.users.activity_by_as.items()
                   if asn in asns)

    # -- coverage / provenance --------------------------------------------

    def coverage_of(self, component: str) -> ComponentCoverage:
        """The coverage record for one component ("users", ...)."""
        try:
            return self.coverage[component]
        except KeyError:
            raise ValidationError(
                f"map carries no coverage record for {component!r}"
            ) from None

    def degraded_components(self) -> List[str]:
        """Components whose build lost units or techniques."""
        return sorted(name for name, record in self.coverage.items()
                      if record.degraded)

    def summary(self) -> str:
        """Human-readable one-screen description of the map."""
        lines = [
            "Internet Traffic Map",
            f"  users: {len(self.users.detected_prefixes)} prefixes across "
            f"{len(self.users.activity_by_as)} ASes "
            f"(techniques: {', '.join(self.users.techniques)})",
            f"  services: {len(self.services.sites_by_org)} organisations, "
            f"{len(self.services.user_to_host)} services with user->host "
            f"mapping, {len(self.services.unmapped_services)} unmapped",
            f"  routes: {self.routes.attempted_pairs()} pairs attempted, "
            f"{self.routes.predictability:.0%} predictable",
        ]
        degraded = self.degraded_components()
        if degraded:
            for name in degraded:
                record = self.coverage[name]
                missing = sorted(set(record.techniques_intended)
                                 - set(record.techniques_delivered))
                extra = (f", lost: {', '.join(missing)}" if missing else "")
                lines.append(f"  coverage: {name} degraded to "
                             f"{record.coverage:.0%}{extra}")
        elif self.coverage:
            lines.append("  coverage: all components complete")
        return "\n".join(lines)
