"""Map builder: run the measurement campaigns and assemble the ITM.

This is the pipeline the paper calls for — each §3 technique feeding one
component, fused into a single queryable artefact:

* users component  <- cache probing (§3.1.2-1) + root-log crawl (§3.1.2-2)
                      fused per §3.1.3;
* services component <- TLS scans + SNI scans (§3.2.2) + ECS user-to-host
                        mapping (§3.2) + client-centric / RTT geolocation;
* routes component <- valley-free prediction over the collector topology
                      (§3.3), with unpredictable pairs recorded.

The builder touches only the scenario's public surfaces. Technique
selection is configurable so ablations (probing-only vs logs-only vs
fused) fall out naturally.

Fault tolerance: handed a :class:`repro.faults.FaultPlan` (or a shared
:class:`FaultContext`), the builder threads it through every campaign and
*degrades instead of crashing* when one fails. The exact fallback order:

1. users — cache probing and the root-log crawl each run independently;
   if one dies (or the crawl delivers nothing usable, e.g. under
   ``rootlog_truncation``), :func:`repro.core.activity.fuse_activity`
   fuses whatever survived (probing-only or logs-only). Only when *both*
   §3.1.2 techniques are lost does the map ship an honest empty users
   component.
2. services — TLS-scan loss removes sites *and* the SNI scan (which
   needs the TLS footprints); ECS loss narrows ``user_to_host`` to what
   catchment probing recovers; each anycast operator's Verfploeter
   campaign fails independently.
3. routes — under ``stale_collector`` the predictor runs over the
   thinned snapshot from :func:`repro.faults.degraded_public_view`
   (never the fresh one), lowering predictability instead of aborting.

What happened is recorded in per-component :class:`ComponentCoverage`
entries on the map, and — when a :class:`repro.obs.Recorder` is attached
— in per-campaign counters and span timings for the run manifest.

Crash recovery: constructed with a ``checkpoint_dir``, the builder
snapshots each stage's output (see :data:`PRIMARY_STAGES` /
:data:`AUX_STAGES`) through a :class:`repro.ckpt.CheckpointStore`;
``resume=True`` loads verified snapshots instead of recomputing. Every
stage is a pure function of (config, fault plan, options) — all
randomness flows through named substreams — so any mix of loaded and
recomputed stages yields a map bit-identical to an uninterrupted build.
A fault plan with ``crash_at=<stage>`` raises
:class:`repro.faults.SimulatedCrash` at that stage boundary *after* the
snapshot is durable, and never after a snapshot load, so a supervised
resume always makes progress (``repro.ckpt.run_supervised``).

Incremental delta builds (``delta=True``, see :mod:`repro.delta` and
docs/delta.md): after a :class:`repro.delta.mutations.MutationPlan`
mutated the scenario, the builder computes each stage's *input digest* —
the substrate aspects it reads plus its upstream snapshots' digests —
and reuses the previous build's snapshot whenever that digest matches
what the snapshot recorded, recomputing only dirty stages. The result is
bit-identical to a fresh build of the mutated world (regression-locked
by ``tests/test_delta_identity.py``).
"""

from __future__ import annotations

import copy
import gc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import MeasurementError, ValidationError
from ..faults import (COLLECTOR_FEED_CAMPAIGN, FaultContext, FaultKind,
                      FaultPlan, RetryPolicy, SimulatedCrash,
                      degraded_public_view)
from ..measure.atlas import ATLAS_CAMPAIGN, AtlasPlatform, TracerouteResult
from ..measure.cache_probing import (CACHE_PROBING_CAMPAIGN,
                                     CacheProbingCampaign,
                                     CacheProbingResult)
from ..measure.catchment_probe import (CATCHMENT_CAMPAIGN,
                                       CatchmentMeasurement,
                                       VerfploeterCampaign)
from ..measure.cloud_vantage import (CLOUD_VANTAGE_CAMPAIGN,
                                     CloudVantageCampaign,
                                     CloudVantageResult)
from ..measure.ecs_mapping import (ECS_MAPPING_CAMPAIGN, EcsMapper,
                                   EcsMappingResult)
from ..measure.geolocation import client_centric_geolocate
from ..measure.ipid import IPID_CAMPAIGN, IpIdAnalysis, IpIdMonitor
from ..measure.resolver_assoc import (RESOLVER_ASSOC_CAMPAIGN,
                                      PageMeasurementCampaign,
                                      ResolverAssociation)
from ..measure.reverse_traceroute import (REVERSE_TRACEROUTE_CAMPAIGN,
                                          PathPair, ReverseTraceroute)
from ..measure.rootlogs import (ROOTLOG_CAMPAIGN, RootLogCrawler,
                                RootLogCrawlResult)
from ..measure.sniscan import SNI_SCAN_CAMPAIGN, SniScanner
from ..measure.tlsscan import TLS_SCAN_CAMPAIGN, TlsScanner, TlsScanResult
from ..obs.manifest import (RunManifest, collect_manifest, config_digest,
                            fault_plan_digest, options_digest)
from ..obs.recorder import NULL_RECORDER, Recorder, resolve_recorder
from ..par import CampaignExecutor, ShardStreams
from ..services.hypergiants import RedirectionScheme
from ..rand import substream
from ..scenario import Scenario
from .activity import ActivityEstimate, fuse_activity
from .pathpred import PathPredictor
from .serialize import stage_payload_from_dict, stage_payload_to_dict
from .traffic_map import (ComponentCoverage, InternetTrafficMap,
                          MappedSite, RoutesComponent, ServicesComponent,
                          UsersComponent)

# Which campaigns feed which map component (coverage aggregation).
USERS_CAMPAIGNS = (CACHE_PROBING_CAMPAIGN, ROOTLOG_CAMPAIGN)
SERVICES_CAMPAIGNS = (TLS_SCAN_CAMPAIGN, SNI_SCAN_CAMPAIGN,
                      ECS_MAPPING_CAMPAIGN, CATCHMENT_CAMPAIGN)
ROUTES_CAMPAIGNS = (COLLECTOR_FEED_CAMPAIGN,)

# Checkpoint stage boundaries, in execution order. Each name doubles as
# the ``crash_at`` target of a fault plan and the key of a
# repro.ckpt snapshot; repro.core.serialize registers a payload codec
# per stage under the same name.
PRIMARY_STAGES = ("cache-probing", "root-logs", "users", "services",
                  "routes")
AUX_STAGES = ("aux-atlas", "aux-reverse-traceroute", "aux-cloud-vantage",
              "aux-ipid", "aux-resolver-assoc")

# Freeze the scenario heap out of the cyclic GC only when it is big
# enough for the collector rescans to dominate (scale10 is ~150k
# prefixes); small test worlds (~2k) pay more for the pre-freeze
# collect than the freeze saves.
_GC_FREEZE_MIN_PREFIXES = 25_000


def checkpoint_stages(options: "BuilderOptions") -> Tuple[str, ...]:
    """The stage boundaries a build with these options passes through."""
    if options.run_auxiliary_campaigns:
        return PRIMARY_STAGES + AUX_STAGES
    return PRIMARY_STAGES


@dataclass(frozen=True)
class BuilderOptions:
    """Which techniques to run and with what budgets."""

    use_cache_probing: bool = True
    use_root_logs: bool = True
    use_tls_scan: bool = True
    use_sni_scan: bool = True
    use_ecs_mapping: bool = True
    # Verfploeter-style catchment probing for anycast services (§3.2.3,
    # [21]). Needs the anycast operators' cooperation (or edge workers),
    # which the paper argues is attainable; disable for a
    # strictly-third-party map.
    use_catchment_probing: bool = True
    geolocate_sites: bool = True
    max_geolocated_sites_per_org: int = 40
    route_pairs_top_ases: int = 150
    rootlog_min_queries: float = 50.0
    rng_label: str = "itm-builder"
    # Auxiliary §3.1.3/§3.3.2 campaigns (Atlas traceroutes, reverse
    # traceroute, cloud-vantage, IP ID monitoring, resolver association).
    # They validate and enrich the map but feed none of its three
    # components, so they are off by default; ``--metrics``/``--trace``
    # runs enable them so the manifest covers every campaign. Their
    # results land in :class:`BuildArtifacts`, never in the map itself —
    # the serialized map is bit-identical either way.
    run_auxiliary_campaigns: bool = False
    aux_ipid_routers: int = 40
    aux_assoc_sample: int = 20_000
    aux_reverse_pairs: int = 40
    aux_cloud_targets: int = 60
    # Per-stage tracemalloc profiling (``mem.<span>.peak_bytes`` /
    # ``current_bytes`` gauges in the manifest). Opt-in because tracing
    # allocations costs wall time; it observes without steering, so the
    # map stays bit-identical (regression-locked in tests/test_obs.py)
    # and repro.obs.manifest.options_digest excludes this knob — profiled
    # and plain builds share checkpoints and compare in the run history.
    profile_memory: bool = False
    # Worker processes for the sharded campaigns (and, with checkpointing
    # off, the whole auxiliary stages). Randomness binds to fixed shards,
    # never to workers, so any value here produces the same map
    # bit-for-bit (see docs/parallelism.md); options_digest excludes it,
    # letting serial and parallel builds share checkpoints.
    workers: int = 1

    def validate(self) -> None:
        if not (self.use_cache_probing or self.use_root_logs):
            raise ValidationError(
                "users component needs at least one §3.1.2 technique")
        if self.workers < 1:
            raise ValidationError("workers must be >= 1")


@dataclass
class BuildArtifacts:
    """Intermediate measurement outputs, kept for validation/reporting."""

    cache_result: Optional[CacheProbingResult] = None
    rootlog_result: Optional[RootLogCrawlResult] = None
    tls_result: Optional[TlsScanResult] = None
    ecs_result: Optional[EcsMappingResult] = None
    activity: Optional[ActivityEstimate] = None
    catchments: Dict[str, CatchmentMeasurement] = field(
        default_factory=dict)
    # Auxiliary-campaign outputs (run_auxiliary_campaigns=True only).
    atlas_traceroutes: Optional[List[TracerouteResult]] = None
    reverse_pairs: Optional[List[PathPair]] = None
    cloud_links: Optional[CloudVantageResult] = None
    ipid_analyses: Optional[List[IpIdAnalysis]] = None
    resolver_association: Optional[ResolverAssociation] = None


class MapBuilder:
    """Builds an :class:`InternetTrafficMap` from a scenario's public
    surfaces."""

    def __init__(self, scenario: Scenario,
                 options: Optional[BuilderOptions] = None,
                 faults: Union[FaultPlan, FaultContext, None] = None,
                 recorder: Optional[Recorder] = None,
                 checkpoint_dir=None,
                 resume: bool = False,
                 delta: bool = False,
                 delta_plan=None
                 ) -> None:
        self._scenario = scenario
        self._options = options or BuilderOptions()
        self._options.validate()
        self._rng = substream(scenario.config.seed, self._options.rng_label)
        self.artifacts = BuildArtifacts()
        self._faults = self._resolve_faults(faults)
        self._notes: Dict[str, List[str]] = {}
        self._recorder = resolve_recorder(recorder)
        self._executor = CampaignExecutor(self._options.workers,
                                          recorder=self._recorder)
        self.itm: Optional[InternetTrafficMap] = None
        if self._recorder.enabled:
            # Mirror fault counters and ground-truth route-cache activity
            # into the recorder. Attach only when live, so a plain
            # builder never detaches another builder's recorder.
            self._faults.attach_recorder(self._recorder)
            self._scenario.bgp.attach_recorder(self._recorder)
        crash_at = self._faults.plan.crash_at
        if crash_at is not None and crash_at not in self.stages():
            raise ValidationError(
                f"crash_at={crash_at!r} is not a stage of this build "
                f"(stages: {', '.join(self.stages())})")
        self._resume = bool(resume)
        self._delta = bool(delta)
        self._delta_plan = delta_plan
        if self._delta and self._resume:
            raise ValidationError(
                "delta=True and resume=True are mutually exclusive: a "
                "delta build already reuses every stage whose inputs "
                "are unchanged")
        self._ckpt_store = None
        self.ckpt_lineage = None
        self._substrate = None
        # stage -> snapshot body digest (reused or saved) / input digest,
        # in builder order; input digests chain through output digests.
        self._stage_output_digests: Dict[str, str] = {}
        self._stage_input_digests: Dict[str, str] = {}
        if checkpoint_dir is not None:
            # Imported lazily: repro.ckpt.supervisor imports this module.
            from ..ckpt.store import CheckpointLineage, CheckpointStore
            from ..delta.digests import SubstrateDigests
            self._ckpt_store = CheckpointStore(
                checkpoint_dir,
                config_digest=config_digest(scenario.config),
                fault_plan_digest=fault_plan_digest(self._faults.plan),
                options_digest=options_digest(self._options),
                recorder=self._recorder)
            self.ckpt_lineage = CheckpointLineage(
                checkpoint_dir=str(checkpoint_dir), resumed=self._resume)
            self._substrate = SubstrateDigests(scenario)
        elif resume:
            raise ValidationError(
                "resume=True needs a checkpoint_dir to resume from")
        elif delta:
            raise ValidationError(
                "delta=True needs a checkpoint_dir holding the previous "
                "build's snapshots")

    def stages(self) -> Tuple[str, ...]:
        """This build's checkpoint stage boundaries, in order."""
        return checkpoint_stages(self._options)

    @property
    def recorder(self) -> Recorder:
        """The build's recorder (the shared null recorder by default)."""
        return self._recorder

    @property
    def options(self) -> BuilderOptions:
        """The build's resolved options (for digests and reporting)."""
        return self._options

    def _resolve_faults(self,
                        faults: Union[FaultPlan, FaultContext, None]
                        ) -> FaultContext:
        """Normalise the faults argument to a shared context.

        A bare plan with the stock retry policy picks up the scenario's
        ``fault_retry_attempts``/``fault_retry_backoff_s`` knobs; a plan
        carrying a custom policy, or a pre-built context, is used as-is.
        """
        if isinstance(faults, FaultContext):
            return faults
        if faults is None:
            return FaultContext.null()
        retry = faults.retry
        if retry == RetryPolicy():
            cfg = self._scenario.config.measurement
            retry = RetryPolicy(max_attempts=cfg.fault_retry_attempts,
                                backoff_base_s=cfg.fault_retry_backoff_s)
        return FaultContext(faults, retry=retry)

    @property
    def fault_context(self) -> FaultContext:
        """The build's shared fault state (a null context when clean)."""
        return self._faults

    def _note(self, component: str, message: str) -> None:
        self._notes.setdefault(component, []).append(message)

    # -- checkpointing --------------------------------------------------------

    def _checkpointed(self, stage: str, compute,
                      campaigns: Tuple[str, ...] = (),
                      note_components: Tuple[str, ...] = ()):
        """Run one stage through the checkpoint protocol.

        With a store and ``resume=True``, a verified snapshot short-
        circuits ``compute()``: the payload is decoded and the stage's
        side effects — fault-scope counters of the ``campaigns`` it
        touched, note lists of the ``note_components`` it wrote — are
        restored *absolutely* (each snapshot carries the cumulative
        state at its boundary, so restores are idempotent in stage
        order, whatever mix of loads and recomputes precedes them).

        An armed crash fires only after a fresh compute (and after its
        snapshot is durable), never after a load — that asymmetry is
        what makes supervised resume terminate.

        With ``delta=True`` the snapshot must *additionally* match the
        stage's input digest (substrate aspects + upstream snapshot
        digests, :func:`repro.delta.digests.stage_input_digest`): only
        stages whose inputs are untouched by the mutation plan are
        reused; dirty stages — and everything downstream of a changed
        output, via digest chaining — recompute. Every checkpointed
        build records input digests at save time, so a plain build's
        snapshots seed a later delta build.
        """
        lineage = self.ckpt_lineage
        if lineage is not None:
            lineage.stages_total += 1
        store = self._ckpt_store
        input_digest = None
        if store is not None:
            # Imported lazily: repro.delta imports repro.scenario.
            from ..delta.digests import stage_input_digest
            input_digest = stage_input_digest(
                stage, self._substrate, self._stage_output_digests)
            self._stage_input_digests[stage] = input_digest
        if store is not None and (self._resume or self._delta):
            snapshot = (store.load(stage, lineage,
                                   input_digest=input_digest)
                        if self._delta else store.load(stage, lineage))
            if snapshot is not None:
                value = stage_payload_from_dict(
                    stage, snapshot.payload, atlas=self._scenario.atlas)
                self._faults.restore_scopes(snapshot.scopes)
                for component, notes in snapshot.notes.items():
                    self._notes[component] = list(notes)
                lineage.stages_reused.append(stage)
                self._stage_output_digests[stage] = snapshot.digest
                return value
        value = compute()
        if store is not None:
            store.save(stage, stage_payload_to_dict(stage, value),
                       scopes=self._faults.export_scopes(campaigns),
                       notes={c: list(self._notes.get(c, []))
                              for c in note_components},
                       input_digest=input_digest)
            self._stage_output_digests[stage] = store.last_saved_digest
        if lineage is not None:
            lineage.stages_recomputed.append(stage)
        self._crash_if_armed(stage)
        return value

    def _crash_if_armed(self, stage: str) -> None:
        """Die at this stage boundary if the fault plan says so."""
        if self._faults.plan.crash_at == stage:
            self._recorder.count("faults.crashes")
            raise SimulatedCrash(stage)

    # -- users component ------------------------------------------------------

    def _run_cache_probing(self) -> CacheProbingResult:
        scenario = self._scenario
        cfg = scenario.config.measurement
        services = scenario.catalog.top_by_popularity(
            cfg.probe_top_k_domains)
        campaign = CacheProbingCampaign(
            oracle=scenario.cache_oracle, gdns=scenario.gdns,
            services=services,
            prefix_ids=scenario.routable_prefix_ids(),
            rounds_per_day=cfg.probe_rounds_per_day,
            streams=ShardStreams(scenario.config.seed, ("probe-campaign",)),
            executor=self._executor,
            faults=self._faults, recorder=self._recorder)
        return campaign.run()

    def _run_rootlog_crawl(self) -> RootLogCrawlResult:
        crawler = RootLogCrawler(
            self._scenario.root_archive,
            min_query_threshold=self._options.rootlog_min_queries,
            faults=self._faults, recorder=self._recorder,
            executor=self._executor)
        return crawler.run()

    def _stage_cache_probing(self) -> Optional[CacheProbingResult]:
        """Stage ``cache-probing``: §3.1.2-1, or None (disabled/failed)."""
        if not self._options.use_cache_probing:
            return None
        try:
            return self._run_cache_probing()
        except MeasurementError as exc:
            self._faults.campaign(CACHE_PROBING_CAMPAIGN).mark_failed(
                str(exc))
            self._note("users", f"cache probing failed ({exc}); "
                                "falling back to root logs (§3.1.3)")
            return None

    def _stage_rootlogs(self) -> Optional[RootLogCrawlResult]:
        """Stage ``root-logs``: §3.1.2-2.

        Returns the raw crawl result even when it delivered nothing
        usable (the artifact is kept for the record; fusion ignores it —
        see :meth:`_stage_users`), or None when disabled or failed.
        """
        if not self._options.use_root_logs:
            return None
        try:
            result = self._run_rootlog_crawl()
        except MeasurementError as exc:
            self._faults.campaign(ROOTLOG_CAMPAIGN).mark_failed(str(exc))
            self._note("users", f"root-log crawl failed ({exc})")
            return None
        if not result.delivered_anything:
            # Truncated/empty feeds: keep the artifact for the record
            # but fuse probing-only (§3.1.3 fallback).
            self._faults.campaign(ROOTLOG_CAMPAIGN).mark_failed(
                "crawl delivered no usable per-AS volume")
            self._note(
                "users",
                "root logs delivered nothing usable; activity is "
                "probing-only (§3.1.3 fallback)")
        return result

    def _stage_users(self, cache_result: Optional[CacheProbingResult],
                     rootlog_result: Optional[RootLogCrawlResult]
                     ) -> Dict[str, object]:
        """Stage ``users``: fuse §3.1.2 signals into the component."""
        if rootlog_result is not None \
                and not rootlog_result.delivered_anything:
            rootlog_result = None
        try:
            with self._recorder.span("fusion"):
                activity = fuse_activity(self._scenario.prefixes,
                                         cache_result, rootlog_result)
        except ValidationError as exc:
            # Every §3.1.2 technique died: ship an honest empty component
            # rather than abort the whole map.
            self._note("users", f"no usable activity signal ({exc}); "
                                "users component is empty")
            return {"component": UsersComponent(
                        detected_prefixes=np.array([], dtype=int),
                        activity_by_prefix={},
                        activity_by_as={},
                        techniques=()),
                    "activity": None}
        detected = np.array(sorted(activity.by_prefix), dtype=int)
        return {"component": UsersComponent(
                    detected_prefixes=detected,
                    activity_by_prefix=activity.by_prefix,
                    activity_by_as=activity.by_as,
                    techniques=activity.techniques),
                "activity": activity}

    def _build_users(self) -> UsersComponent:
        cache_result = self._checkpointed(
            "cache-probing", self._stage_cache_probing,
            (CACHE_PROBING_CAMPAIGN,), ("users",))
        if cache_result is not None:
            self.artifacts.cache_result = cache_result
        rootlog_result = self._checkpointed(
            "root-logs", self._stage_rootlogs,
            (ROOTLOG_CAMPAIGN,), ("users",))
        if rootlog_result is not None:
            self.artifacts.rootlog_result = rootlog_result
        bundle = self._checkpointed(
            "users",
            lambda: self._stage_users(cache_result, rootlog_result),
            (), ("users",))
        if bundle["activity"] is not None:
            self.artifacts.activity = bundle["activity"]
        return bundle["component"]

    # -- services component ------------------------------------------------------

    def _build_services(self, users: UsersComponent) -> ServicesComponent:
        bundle = self._checkpointed(
            "services", lambda: self._stage_services(users),
            SERVICES_CAMPAIGNS, ("services",))
        self.artifacts.tls_result = bundle["tls"]
        self.artifacts.ecs_result = bundle["ecs"]
        self.artifacts.catchments = dict(bundle["catchments"])
        return bundle["component"]

    def _stage_services(self, users: UsersComponent) -> Dict[str, object]:
        """Stage ``services``: §3.2 scans, mapping and assembly.

        Returns the component together with the raw TLS / ECS /
        catchment artifacts — the snapshot must carry them because the
        routes stage (TLS footprints) and downstream reporting read them
        from :attr:`artifacts`.
        """
        scenario = self._scenario
        sites_by_org: Dict[str, List[MappedSite]] = {}
        serving_by_domain: Dict[str, "set[int]"] = {}
        user_to_host: Dict[str, Dict[int, int]] = {}
        unmapped: List[str] = []

        tls_result: Optional[TlsScanResult] = None
        if self._options.use_tls_scan:
            scanner = TlsScanner(scenario.certstore, scenario.prefixes,
                                 faults=self._faults,
                                 recorder=self._recorder)
            try:
                tls_result = scanner.run()
                self.artifacts.tls_result = tls_result
            except MeasurementError as exc:
                self._faults.campaign(TLS_SCAN_CAMPAIGN).mark_failed(
                    str(exc))
                self._note("services", f"TLS scan failed ({exc}); no "
                                       "sites or SNI footprints")

        ecs_result: Optional[EcsMappingResult] = None
        if self._options.use_ecs_mapping:
            mapper = EcsMapper(scenario.authoritative, scenario.catalog,
                               scenario.prefixes, faults=self._faults,
                               recorder=self._recorder,
                               executor=self._executor)
            try:
                ecs_result = mapper.run(scenario.routable_prefix_ids())
            except MeasurementError as exc:
                self._faults.campaign(ECS_MAPPING_CAMPAIGN).mark_failed(
                    str(exc))
                self._note("services",
                           f"ECS mapping failed ({exc}); user->host "
                           "mapping limited to catchment probing")
                unmapped.extend(s.key for s in scenario.catalog.services)
        if ecs_result is not None:
            self.artifacts.ecs_result = ecs_result
            for key, mapping in ecs_result.per_service.items():
                mapped = mapping.answer_pids >= 0
                # tolist() gives plain ints in bulk — far cheaper than
                # casting 100k+ numpy scalars one by one.
                user_to_host[key] = dict(zip(
                    mapping.client_pids[mapped].tolist(),
                    mapping.answer_pids[mapped].tolist()))
            unmapped.extend(ecs_result.uncovered_services)
        elif not self._options.use_ecs_mapping:
            unmapped.extend(s.key for s in scenario.catalog.services)

        if self._options.use_catchment_probing:
            covered = self._map_anycast_services(user_to_host)
            unmapped = [key for key in unmapped if key not in covered]

        if tls_result is not None:
            if self._options.use_sni_scan:
                sni = SniScanner(scenario.certstore, scenario.prefixes,
                                 faults=self._faults,
                                 recorder=self._recorder)
                domains = [s.domain for s in scenario.catalog.services]
                try:
                    sni_result = sni.run(domains,
                                         tls_result.serving_prefixes())
                    serving_by_domain = {
                        d: sni_result.asns_serving(d) for d in domains}
                except MeasurementError as exc:
                    self._faults.campaign(SNI_SCAN_CAMPAIGN).mark_failed(
                        str(exc))
                    self._note("services",
                               f"SNI scan failed ({exc}); per-domain "
                               "footprints unavailable")
            sites_by_org = self._assemble_sites(tls_result, ecs_result)

        component = ServicesComponent(
            sites_by_org=sites_by_org,
            serving_asns_by_domain=serving_by_domain,
            user_to_host=user_to_host,
            unmapped_services=tuple(sorted(set(unmapped))))
        return {"component": component, "tls": tls_result,
                "ecs": ecs_result,
                "catchments": dict(self.artifacts.catchments)}

    def _map_anycast_services(self,
                              user_to_host: Dict[str, Dict[int, int]]
                              ) -> "set[str]":
        """Fill user->host entries for anycast services via Verfploeter.

        One catchment campaign per anycast operator covers all of its
        services (catchments are per-network, not per-service). Returns
        the service keys covered.
        """
        scenario = self._scenario
        covered: "set[str]" = set()
        targets = scenario.routable_prefix_ids()
        for hg_key, model in scenario.anycast_models.items():
            campaign = VerfploeterCampaign(
                model, scenario.prefixes,
                streams=ShardStreams(scenario.config.seed,
                                     ("builder-verf", hg_key)),
                executor=self._executor,
                faults=self._faults, recorder=self._recorder)
            try:
                measurement = campaign.run(targets)
            except MeasurementError as exc:
                self._faults.campaign(CATCHMENT_CAMPAIGN).mark_failed(
                    str(exc))
                self._note("services", f"catchment probing of {hg_key} "
                                       f"failed ({exc})")
                continue
            self.artifacts.catchments[hg_key] = measurement
            site_answer = {site.site_id: site.prefix_ids[0]
                           for site in model.sites}
            reached = np.asarray(measurement.site_of_prefix) >= 0
            pids = np.asarray(measurement.prefix_ids)[reached].tolist()
            sites = np.asarray(measurement.site_of_prefix)[reached].tolist()
            mapping: Dict[int, int] = {
                pid: site_answer[site] for pid, site in zip(pids, sites)}
            if not mapping:
                continue
            for service in scenario.catalog.services_hosted_by(hg_key):
                if service.redirection is not RedirectionScheme.ANYCAST:
                    continue
                user_to_host[service.key] = dict(mapping)
                covered.add(service.key)
        return covered

    def _assemble_sites(self, tls_result: TlsScanResult,
                        ecs_result: Optional[EcsMappingResult]
                        ) -> Dict[str, List[MappedSite]]:
        """Turn TLS footprints into located sites.

        Site cities are estimated with client-centric geolocation when an
        ECS mapping exists for a service of that organisation; otherwise
        the city stays unknown (honest about precision, per Table 1).
        """
        scenario = self._scenario
        prefixes = scenario.prefixes
        # answer prefix -> client prefixes, pooled over mapped services.
        clients_of_answer: Dict[int, List[int]] = {}
        if ecs_result is not None:
            for mapping in ecs_result.per_service.values():
                mapped = mapping.answer_pids >= 0
                answers = mapping.answer_pids[mapped]
                clients = mapping.client_pids[mapped]
                # Group clients by answer prefix in one stable sort per
                # service instead of a Python loop over every pair; the
                # stable kind keeps each answer's client order identical
                # to the original insertion order.
                order = np.argsort(answers, kind="stable")
                answers = answers[order]
                clients = clients[order]
                uniq, starts = np.unique(answers, return_index=True)
                bounds = list(starts[1:].tolist()) + [len(answers)]
                for a, s, e in zip(uniq.tolist(), starts.tolist(), bounds):
                    clients_of_answer.setdefault(a, []).extend(
                        clients[s:e].tolist())
        candidate_cities = scenario.atlas.cities
        sites_by_org: Dict[str, List[MappedSite]] = {}
        for org in tls_result.organizations():
            footprint = tls_result.footprint_of(org)
            sites: List[MappedSite] = []
            geolocated = 0
            offnet_pids = set(footprint.offnet_prefixes)
            for pid in (footprint.onnet_prefixes
                        + footprint.offnet_prefixes):
                city = None
                if (self._options.geolocate_sites and geolocated
                        < self._options.max_geolocated_sites_per_org):
                    client_pids = clients_of_answer.get(pid, [])
                    if len(client_pids) >= 3:
                        client_cities = [prefixes.city_of(c)
                                         for c in client_pids[:500]]
                        estimate = client_centric_geolocate(
                            client_cities, candidate_cities)
                        city = estimate.city
                        geolocated += 1
                sites.append(MappedSite(
                    prefix_id=pid,
                    asn=prefixes.asn_of(pid),
                    organization=org,
                    estimated_city=city,
                    is_offnet=pid in offnet_pids))
            sites_by_org[org] = sites
        return sites_by_org

    # -- routes component ------------------------------------------------------

    def _build_routes(self, users: UsersComponent,
                      services: ServicesComponent) -> RoutesComponent:
        """Predict routes between the most active user ASes and the
        discovered serving organisations' home ASes."""
        view = self._scenario.public_view
        if self._faults.active(FaultKind.STALE_COLLECTOR):
            view = degraded_public_view(view, self._faults)
            self._note("routes", "collector snapshot is stale; predicting "
                                 "over the thinned topology")
        predictor = PathPredictor(view, recorder=self._recorder)
        top_ases = [asn for asn, __ in users.top_ases(
            self._options.route_pairs_top_ases)]
        dst_asns: List[int] = []
        if self.artifacts.tls_result is not None:
            for org in self.artifacts.tls_result.organizations():
                footprint = self.artifacts.tls_result.footprint_of(org)
                if footprint.total_prefixes >= 5:
                    dst_asns.append(footprint.home_asn)
        dst_asns = sorted(set(dst_asns)) or [self._scenario.gdns_operator_asn]
        pairs = [(src, dst) for src in top_ases for dst in dst_asns
                 if src != dst]
        paths = predictor.predict_many(pairs)
        predicted = sum(1 for p in paths.values() if p is not None)
        predictability = predicted / len(paths) if paths else 0.0
        return RoutesComponent(paths=paths, predictability=predictability)

    # -- assembly -----------------------------------------------------------------

    def _coverage_report(self, users: UsersComponent,
                         services: ServicesComponent
                         ) -> Dict[str, ComponentCoverage]:
        """Fold the fault context's per-campaign counters into
        per-component coverage/provenance records."""
        opts = self._options
        users_intended = tuple(
            name for name, on in (("cache-probing", opts.use_cache_probing),
                                  ("root-logs", opts.use_root_logs)) if on)
        services_intended = tuple(
            name for name, on in (
                ("tls-scan", opts.use_tls_scan),
                ("sni-scan", opts.use_tls_scan and opts.use_sni_scan),
                ("ecs-mapping", opts.use_ecs_mapping),
                ("catchment-probing", opts.use_catchment_probing)) if on)
        services_delivered = tuple(
            name for name, ok in (
                ("tls-scan", self.artifacts.tls_result is not None),
                ("sni-scan", bool(services.serving_asns_by_domain)),
                ("ecs-mapping", self.artifacts.ecs_result is not None),
                ("catchment-probing", bool(self.artifacts.catchments)))
            if ok)
        def record(component: str, campaigns: Tuple[str, ...],
                   intended: Tuple[str, ...],
                   delivered: Tuple[str, ...]) -> ComponentCoverage:
            return ComponentCoverage(
                component=component,
                coverage=self._faults.coverage_of(campaigns),
                techniques_intended=intended,
                techniques_delivered=delivered,
                notes=tuple(self._notes.get(component, ())))
        return {
            "users": record("users", USERS_CAMPAIGNS, users_intended,
                            tuple(users.techniques)),
            "services": record("services", SERVICES_CAMPAIGNS,
                               services_intended, services_delivered),
            "routes": record("routes", ROUTES_CAMPAIGNS,
                             ("path-prediction",), ("path-prediction",)),
        }

    # -- auxiliary campaigns ------------------------------------------------------

    def _eyeball_asns(self) -> List[int]:
        return [a.asn for a in self._scenario.registry.eyeballs()]

    def _stage_aux_atlas(self) -> Optional[Dict[str, object]]:
        """Stage ``aux-atlas``: bring up the platform, traceroute out.

        None when the platform itself failed; otherwise the vantage
        points (which the reverse-traceroute stage needs) plus the
        traceroutes (None when only the measurement campaign failed).
        """
        scenario = self._scenario
        cfg = scenario.config.measurement
        try:
            platform = AtlasPlatform(
                scenario.registry, scenario.bgp, scenario.prefixes,
                substream(scenario.config.seed, "builder-atlas"),
                vp_count=cfg.atlas_vantage_points,
                faults=self._faults, recorder=self._recorder)
        except MeasurementError as exc:
            self._faults.campaign(ATLAS_CAMPAIGN).mark_failed(str(exc))
            self._note("aux", f"atlas platform failed ({exc})")
            return None
        traceroutes: Optional[List[TracerouteResult]] = None
        try:
            traceroutes = platform.traceroute_all(
                scenario.gdns_operator_asn)
        except MeasurementError as exc:
            self._faults.campaign(ATLAS_CAMPAIGN).mark_failed(str(exc))
            self._note("aux", f"atlas platform failed ({exc})")
        return {"vantage_points": list(platform.vantage_points),
                "traceroutes": traceroutes}

    def _stage_aux_revtr(self, vantage_points) -> Optional[List[PathPair]]:
        """Stage ``aux-reverse-traceroute`` (needs an Atlas vantage)."""
        if not vantage_points:
            return None
        revtr = ReverseTraceroute(self._scenario.bgp, faults=self._faults,
                                  recorder=self._recorder)
        try:
            return revtr.measure_many(
                vantage_points[0],
                self._eyeball_asns()[:self._options.aux_reverse_pairs])
        except MeasurementError as exc:
            self._faults.campaign(
                REVERSE_TRACEROUTE_CAMPAIGN).mark_failed(str(exc))
            self._note("aux", f"reverse traceroute failed ({exc})")
            return None

    def _stage_aux_cloud(self) -> Optional[CloudVantageResult]:
        """Stage ``aux-cloud-vantage``: traceroutes out of the cloud."""
        scenario = self._scenario
        cloud = CloudVantageCampaign(
            scenario.bgp, scenario.gdns_operator_asn,
            faults=self._faults, recorder=self._recorder)
        try:
            return cloud.run(
                self._eyeball_asns()[:self._options.aux_cloud_targets])
        except MeasurementError as exc:
            self._faults.campaign(CLOUD_VANTAGE_CAMPAIGN).mark_failed(
                str(exc))
            self._note("aux", f"cloud-vantage campaign failed ({exc})")
            return None

    def _stage_aux_ipid(self) -> Optional[List[IpIdAnalysis]]:
        """Stage ``aux-ipid``: router IP-ID velocity monitoring."""
        scenario = self._scenario
        cfg = scenario.config.measurement
        monitor = IpIdMonitor(
            interval_s=cfg.ipid_ping_interval_s,
            duration_hours=cfg.ipid_campaign_hours,
            rng=substream(scenario.config.seed, "builder-ipid"),
            faults=self._faults, recorder=self._recorder)
        try:
            return monitor.campaign(
                scenario.routers.countable()
                [:self._options.aux_ipid_routers])
        except MeasurementError as exc:
            self._faults.campaign(IPID_CAMPAIGN).mark_failed(str(exc))
            self._note("aux", f"IP ID monitoring failed ({exc})")
            return None

    def _stage_aux_assoc(self) -> Optional[ResolverAssociation]:
        """Stage ``aux-resolver-assoc``: page-view sampling."""
        scenario = self._scenario
        try:
            assoc = PageMeasurementCampaign(
                scenario.prefixes, scenario.gdns,
                scenario.traffic.queries_per_day.sum(axis=0),
                substream(scenario.config.seed, "builder-assoc"),
                faults=self._faults, recorder=self._recorder)
            return assoc.run(self._options.aux_assoc_sample)
        except MeasurementError as exc:
            self._faults.campaign(RESOLVER_ASSOC_CAMPAIGN).mark_failed(
                str(exc))
            self._note("aux", f"resolver association failed ({exc})")
            return None

    def _run_auxiliary_campaigns(self) -> None:
        """Run the §3.1.3/§3.3.2 campaigns that enrich but never feed the
        map: Atlas traceroutes, reverse traceroute, cloud-vantage
        traceroutes, IP ID monitoring and resolver association.

        Every campaign draws from its own seed substream and writes only
        to :attr:`artifacts` and the recorder, so enabling this phase
        cannot perturb the serialized map. Failures degrade like the
        primary campaigns: mark the scope failed, note it, move on.
        Each campaign is its own checkpoint stage.

        With ``workers > 1`` and checkpointing off, the whole stages run
        as units across the worker pool (they are mutually independent
        apart from reverse traceroute needing the Atlas vantage points);
        checkpointed builds stay on the serial path because stage
        snapshots must be written in order.
        """
        if self._executor.parallel and self._ckpt_store is None:
            self._run_auxiliary_parallel()
            return
        atlas_bundle = self._checkpointed(
            "aux-atlas", self._stage_aux_atlas,
            (ATLAS_CAMPAIGN,), ("aux",))
        vantage_points = []
        if atlas_bundle is not None:
            self.artifacts.atlas_traceroutes = atlas_bundle["traceroutes"]
            vantage_points = atlas_bundle["vantage_points"]
        self.artifacts.reverse_pairs = self._checkpointed(
            "aux-reverse-traceroute",
            lambda: self._stage_aux_revtr(vantage_points),
            (REVERSE_TRACEROUTE_CAMPAIGN,), ("aux",))
        self.artifacts.cloud_links = self._checkpointed(
            "aux-cloud-vantage", self._stage_aux_cloud,
            (CLOUD_VANTAGE_CAMPAIGN,), ("aux",))
        self.artifacts.ipid_analyses = self._checkpointed(
            "aux-ipid", self._stage_aux_ipid,
            (IPID_CAMPAIGN,), ("aux",))
        self.artifacts.resolver_association = self._checkpointed(
            "aux-resolver-assoc", self._stage_aux_assoc,
            (RESOLVER_ASSOC_CAMPAIGN,), ("aux",))

    def _run_auxiliary_parallel(self) -> None:
        """Parallel whole-stage execution of the auxiliary campaigns.

        Two waves: everything without a dependency first, then reverse
        traceroute (which needs the Atlas vantage points). Each worker
        runs one stage on an isolated builder clone with a fresh fault
        context and recorder; the parent merges the returned scope
        states, notes and recorder snapshots *in the serial stage order*,
        so every output this class guarantees bit-identity for is the
        same as an inline run's.
        """
        wave1 = ["aux-atlas", "aux-cloud-vantage", "aux-ipid",
                 "aux-resolver-assoc"]
        results: Dict[str, Dict[str, object]] = {}
        out = self._executor.run(_aux_stage_worker, (self, wave1, []),
                                 len(wave1), "aux-stages", chunk_size=1)
        results.update(zip(wave1, out))
        atlas_bundle = results["aux-atlas"]["artifact"]
        vantage_points = [] if atlas_bundle is None else \
            atlas_bundle["vantage_points"]
        wave2 = ["aux-reverse-traceroute"]
        out = self._executor.run(
            _aux_stage_worker, (self, wave2, vantage_points),
            len(wave2), "aux-stages", chunk_size=1)
        results.update(zip(wave2, out))
        for stage in AUX_STAGES:
            merged = results[stage]
            for name in _AUX_STAGE_CAMPAIGNS[stage]:
                state = merged["scopes"].get(name)
                if state is not None:
                    self._faults.campaign(name).merge_state(state)
            for component, notes in merged["notes"].items():
                for note in notes:
                    self._note(component, note)
            self._recorder.absorb(merged["recorder"])
            self._crash_if_armed(stage)
        if atlas_bundle is not None:
            self.artifacts.atlas_traceroutes = atlas_bundle["traceroutes"]
        self.artifacts.reverse_pairs = \
            results["aux-reverse-traceroute"]["artifact"]
        self.artifacts.cloud_links = results["aux-cloud-vantage"]["artifact"]
        self.artifacts.ipid_analyses = results["aux-ipid"]["artifact"]
        self.artifacts.resolver_association = \
            results["aux-resolver-assoc"]["artifact"]

    def build(self) -> InternetTrafficMap:
        """Run the configured campaigns and assemble the map."""
        rec = self._recorder
        if self._options.profile_memory:
            # Profiling brackets the build: started here, stopped in the
            # finally below so tracemalloc's tracing cost never outlives
            # the build it measured (even when a stage crashes).
            rec.start_memory_profiling()
        # The scenario heap is large and immutable for the duration of a
        # build; freezing it keeps the cyclic GC from rescanning millions
        # of long-lived objects every time the build allocates (a 3x CPU
        # win at scale10). Freezing changes no object lifetimes that
        # matter here, so the map is unaffected. Below the threshold the
        # full collect costs more than the rescans it avoids — a small
        # build finishes in ~0.1s, so the dance is skipped (this matters
        # for delta rebuild loops, where the collect would be the single
        # largest fixed cost per step).
        freeze = len(self._scenario.prefixes) >= _GC_FREEZE_MIN_PREFIXES
        if freeze:
            gc.collect()
            gc.freeze()
        try:
            return self._build_profiled(rec)
        finally:
            if freeze:
                gc.unfreeze()
            if self._options.profile_memory:
                rec.stop_memory_profiling()

    def _build_profiled(self, rec) -> InternetTrafficMap:
        """The build pipeline proper (wrapped by :meth:`build`)."""
        with rec.span("build"):
            with rec.span("users"):
                users = self._build_users()
            with rec.span("services"):
                services = self._build_services(users)
            with rec.span("routes"):
                routes = self._checkpointed(
                    "routes", lambda: self._build_routes(users, services),
                    ROUTES_CAMPAIGNS, ("routes",))
            if self._options.run_auxiliary_campaigns:
                with rec.span("aux"):
                    self._run_auxiliary_campaigns()
            with rec.span("assemble"):
                metadata: Dict[str, object] = {
                    "seed": self._scenario.config.seed,
                    "prefix_asn": self._scenario.prefixes.asn_array,
                    "options": self._options,
                }
                if not self._faults.is_null:
                    metadata["fault_plan"] = self._faults.plan
                    metadata["fault_totals"] = self._faults.totals()
                itm = InternetTrafficMap(
                    users=users, services=services, routes=routes,
                    metadata=metadata,
                    coverage=self._coverage_report(users, services))
        if rec.enabled:
            stats = self._scenario.bgp.cache_stats()
            rec.gauge("routing.cache.entries", stats.entries)
            rec.gauge("routing.cache.max_entries", stats.max_entries)
            rec.gauge("routing.cache.hit_rate", stats.hit_rate)
            if rec.memory_profiling:
                rec.gauge("mem.routing.cache.resident_bytes",
                          self._scenario.bgp.cache_memory_bytes())
        self.itm = itm
        return itm

    def manifest(self, command: Optional[str] = None,
                 scale: Optional[str] = None,
                 serve: Optional[Dict[str, object]] = None) -> RunManifest:
        """Snapshot this build's provenance as a :class:`RunManifest`.

        Callable any time after :meth:`build` (earlier snapshots are
        valid too — they just carry fewer stages). ``serve`` is the
        optional serving-path section a ``repro serve`` run assembles
        after the server drains (format 4).
        """
        return collect_manifest(
            self._recorder, self._scenario.config,
            faults=self._faults,
            cache_stats=self._scenario.bgp.cache_stats(),
            itm=self.itm, checkpoint=self.ckpt_lineage,
            delta=self._delta_lineage(),
            serve=serve,
            command=command, scale=scale)

    def _delta_lineage(self) -> Optional[Dict[str, object]]:
        """The manifest's delta section: what moved, what was reused.

        None unless this is a delta build. The mutation digest ties the
        lineage to the exact plan applied; the per-stage input digests
        let two manifests be compared stage-by-stage.
        """
        if not self._delta:
            return None
        # Imported lazily: repro.delta imports repro.scenario.
        from ..delta.mutations import MutationPlan
        plan = self._delta_plan or MutationPlan(mutations=())
        lineage = self.ckpt_lineage
        return {
            "mutation_digest": plan.digest(),
            "mutation_count": len(plan),
            "kinds": list(plan.kinds()),
            "aspects": list(plan.aspects()),
            "stages_reused": list(lineage.stages_reused),
            "stages_recomputed": list(lineage.stages_recomputed),
            "input_digests": dict(self._stage_input_digests),
        }


# Campaigns each auxiliary stage touches (scope merge after a worker run).
_AUX_STAGE_CAMPAIGNS: Dict[str, Tuple[str, ...]] = {
    "aux-atlas": (ATLAS_CAMPAIGN,),
    "aux-reverse-traceroute": (REVERSE_TRACEROUTE_CAMPAIGN,),
    "aux-cloud-vantage": (CLOUD_VANTAGE_CAMPAIGN,),
    "aux-ipid": (IPID_CAMPAIGN,),
    "aux-resolver-assoc": (RESOLVER_ASSOC_CAMPAIGN,),
}


def _aux_stage_worker(payload: Tuple["MapBuilder", List[str], list],
                      shard: int) -> Dict[str, object]:
    """Run one whole auxiliary stage in isolation (pool worker or inline).

    The builder is shallow-cloned and given a fresh fault context (same
    plan and retry policy — aux campaigns draw from their own named
    substreams, so the clone reproduces the serial draws exactly), a
    fresh recorder and empty notes, so nothing the stage does can leak
    into the parent except through the returned snapshot.
    """
    builder, stages, vantage_points = payload
    stage = stages[shard]
    clone = copy.copy(builder)
    clone._faults = FaultContext(builder._faults.plan,
                                 retry=builder._faults.retry)
    clone._recorder = Recorder() if builder._recorder.enabled \
        else NULL_RECORDER
    clone._notes = {}
    clone._ckpt_store = None
    clone.ckpt_lineage = None
    if stage == "aux-atlas":
        artifact: object = clone._stage_aux_atlas()
    elif stage == "aux-reverse-traceroute":
        artifact = clone._stage_aux_revtr(vantage_points)
    elif stage == "aux-cloud-vantage":
        artifact = clone._stage_aux_cloud()
    elif stage == "aux-ipid":
        artifact = clone._stage_aux_ipid()
    elif stage == "aux-resolver-assoc":
        artifact = clone._stage_aux_assoc()
    else:
        raise ValidationError(f"unknown auxiliary stage {stage!r}")
    return {
        "artifact": artifact,
        "scopes": clone._faults.export_scopes(_AUX_STAGE_CAMPAIGNS[stage]),
        "notes": {c: list(n) for c, n in clone._notes.items()},
        "recorder": clone._recorder.snapshot(),
    }
