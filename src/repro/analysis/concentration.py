"""Traffic concentration analysis.

"Most user-facing traffic flows from a handful of large providers" (§1)
and the 2010 inter-domain traffic paper [40] the paper credits with
reshaping the community's mental model both describe *concentration*. The
helpers here quantify it: top-k shares, Lorenz curves and Gini
coefficients over any weighted set (providers by bytes, ASes by activity,
links by volume) — so the map's outputs plug straight into the same kind
of analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ValidationError


@dataclass
class ConcentrationSummary:
    """Concentration statistics of a non-negative weight distribution."""

    total: float
    gini: float
    top_shares: Dict[int, float]        # k -> share of top-k entities
    entities: int

    def share_of_top(self, k: int) -> float:
        try:
            return self.top_shares[k]
        except KeyError:
            raise ValidationError(f"top-{k} share was not computed") \
                from None


def lorenz_curve(weights: Sequence[float]) -> List[Tuple[float, float]]:
    """(population fraction, weight fraction) points, ascending order."""
    values = np.asarray(list(weights), dtype=float)
    if values.size == 0:
        raise ValidationError("empty weight vector")
    if (values < 0).any():
        raise ValidationError("negative weights")
    total = values.sum()
    if total <= 0:
        raise ValidationError("weights sum to zero")
    ordered = np.sort(values)
    cumulative = np.cumsum(ordered) / total
    population = np.arange(1, len(ordered) + 1) / len(ordered)
    return [(0.0, 0.0)] + [(float(p), float(c))
                           for p, c in zip(population, cumulative)]


def gini_coefficient(weights: Sequence[float]) -> float:
    """Gini coefficient in [0, 1); 0 = perfectly even."""
    values = np.sort(np.asarray(list(weights), dtype=float))
    if values.size == 0:
        raise ValidationError("empty weight vector")
    if (values < 0).any():
        raise ValidationError("negative weights")
    total = values.sum()
    if total <= 0:
        raise ValidationError("weights sum to zero")
    n = len(values)
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def summarize_concentration(weights: Sequence[float],
                            top_ks: Sequence[int] = (1, 5, 10, 20)
                            ) -> ConcentrationSummary:
    """Full concentration summary of a weight vector."""
    values = np.asarray(list(weights), dtype=float)
    gini = gini_coefficient(values)
    ordered = np.sort(values)[::-1]
    total = float(ordered.sum())
    top_shares = {}
    for k in top_ks:
        if k < 1:
            raise ValidationError("top-k requires k >= 1")
        top_shares[k] = float(ordered[:k].sum()) / total
    return ConcentrationSummary(total=total, gini=gini,
                                top_shares=top_shares,
                                entities=len(values))


def provider_concentration(bytes_by_host: Dict[str, float]
                           ) -> ConcentrationSummary:
    """Concentration across serving providers — the [40]/[25] view."""
    if not bytes_by_host:
        raise ValidationError("no providers given")
    return summarize_concentration(list(bytes_by_host.values()),
                                   top_ks=(1, 2, 5, 10))
