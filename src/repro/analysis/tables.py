"""Table 1 regeneration: granularity and coverage of each ITM component.

The paper's Table 1 contrasts *desired* granularity/coverage with what is
achievable *now*. Our regenerated table keeps the paper's "Desired" column
verbatim and fills the "Now" column with what the measurement techniques
achieved against this scenario's ground truth — so the table is a live
summary of the whole reproduction rather than a transcription.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.traffic_map import InternetTrafficMap
from ..core.validation import (UsersValidation, validate_routes_component,
                               validate_services_component,
                               validate_users_component)
from ..scenario import Scenario
from ..services.hypergiants import GROUND_TRUTH_CDN_KEY


@dataclass(frozen=True)
class Table1Row:
    """One row of the regenerated Table 1."""

    component: str
    question: str
    temporal_desired: str
    temporal_now: str
    network_desired: str
    network_now: str
    coverage_desired: str
    coverage_now: str


def regenerate_table1(scenario: Scenario,
                      itm: InternetTrafficMap) -> List[Table1Row]:
    """Build Table 1 from the map's measured performance."""
    users_val = validate_users_component(itm.users, scenario,
                                         GROUND_TRUTH_CDN_KEY)
    services_val = validate_services_component(itm, scenario)
    routes_val = validate_routes_component(itm, scenario)

    n_prefixes = len(scenario.prefixes)
    n_detected = len(itm.users.detected_prefixes)
    n_ases = len(scenario.registry)
    n_detected_as = len(itm.users.activity_by_as)

    rows = [
        Table1Row(
            component="Where are users?",
            question="Finding prefixes with users",
            temporal_desired="Daily", temporal_now="Daily (one-day probe)",
            network_desired="/24 Prefix", network_now="/24 Prefix",
            coverage_desired=f"{n_ases} ASes, {n_prefixes} /24s",
            coverage_now=(f"{n_detected_as} ASes, {n_detected} /24s "
                          f"({users_val.prefix_traffic_coverage:.0%} of "
                          f"CDN traffic)")),
        Table1Row(
            component="Where are users?",
            question="Estimating relative activity",
            temporal_desired="Hourly", temporal_now="Daily",
            network_desired="/24 Prefix", network_now="/24 + AS fusion",
            coverage_desired=f"{n_prefixes} /24s",
            coverage_now=(f"{n_detected} /24s (Spearman "
                          f"{users_val.activity_spearman:.2f} vs truth)")),
        Table1Row(
            component="Where are services hosted?",
            question="Mapping services",
            temporal_desired="Weekly", temporal_now="Scan-day",
            network_desired="Facility",
            network_now="City (client-centric geolocation)",
            coverage_desired="Popular services",
            coverage_now=(f"{services_val.org_recall:.0%} of hypergiants; "
                          f"median geo error "
                          f"{services_val.geolocation_median_error_km or 0:.0f} km")),
        Table1Row(
            component="Where are services hosted?",
            question="Mapping users to hosts",
            temporal_desired="Hourly", temporal_now="Scan-day",
            network_desired="Prefix", network_now="/24 Prefix",
            coverage_desired="Client /24s, all services",
            coverage_now=(f"{len(itm.services.user_to_host)} ECS services "
                          f"({services_val.mapping_agreement:.0%} answer "
                          f"agreement); "
                          f"{len(itm.services.unmapped_services)} services "
                          f"uncovered")),
        Table1Row(
            component="What routes are used?",
            question="Commonly used routes",
            temporal_desired="Daily", temporal_now="Collector snapshot",
            network_desired="<city, AS>", network_now="AS path",
            coverage_desired="Commonly used routes",
            coverage_now=(f"{routes_val.pairs_scored} pairs; "
                          f"{routes_val.exact_path_fraction:.0%} exact, "
                          f"{routes_val.unpredictable_fraction:.0%} "
                          f"unpredictable")),
    ]
    return rows
