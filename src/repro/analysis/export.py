"""Markdown report export: the whole reproduction in one document.

``python -m repro report -o report.md`` (or :func:`build_report`) runs
the measurement pipeline and emits a self-contained markdown report with
the map summary, Table 1, all figure data and the claim suite — the
artefact a research group would attach to a reproduction submission.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.builder import BuildArtifacts, MapBuilder
from ..core.traffic_map import InternetTrafficMap
from ..obs.manifest import RunManifest
from ..scenario import Scenario
from .claims import ClaimSuite
from .figures import (fig1a_prefixes_per_pop, fig1b_coverage_and_servers,
                      fig2_subscribers_vs_signals)
from .tables import regenerate_table1


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for __ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def build_report(scenario: Scenario,
                 itm: Optional[InternetTrafficMap] = None,
                 artifacts: Optional[BuildArtifacts] = None,
                 manifest: Optional[RunManifest] = None) -> str:
    """Render the full reproduction report as markdown text.

    ``manifest`` (a :class:`repro.obs.RunManifest` from an instrumented
    build) adds a "Run report" section with stage timings and
    per-campaign delivery counters.
    """
    if itm is None or artifacts is None:
        builder = MapBuilder(scenario)
        itm = builder.build()
        artifacts = builder.artifacts

    sections: List[str] = []
    sections.append("# Internet Traffic Map — reproduction report\n")
    sections.append(f"Seed `{scenario.config.seed}`; "
                    f"{len(scenario.registry)} ASes, "
                    f"{len(scenario.prefixes)} /24 prefixes, "
                    f"{len(scenario.catalog)} services.\n")
    sections.append("```\n" + itm.summary() + "\n```\n")

    # Coverage / degraded-mode provenance (only interesting when the
    # build ran under a fault plan or lost a technique).
    plan = itm.metadata.get("fault_plan")
    if plan is not None or itm.degraded_components():
        sections.append("## Measurement coverage\n")
        if plan is not None:
            sections.append(f"Built under fault plan `{plan.describe()}` "
                            f"(seed {plan.seed}).\n")
        sections.append(_md_table(
            ["component", "coverage", "techniques delivered", "notes"],
            [[name,
              f"{record.coverage:.1%}",
              ", ".join(record.techniques_delivered) or "none",
              "; ".join(record.notes) or "-"]
             for name, record in sorted(itm.coverage.items())]) + "\n")

    # Table 1.
    sections.append("## Table 1 — component granularity and coverage\n")
    t1 = regenerate_table1(scenario, itm)
    sections.append(_md_table(
        ["component", "question", "temporal (desired / now)",
         "network (desired / now)", "coverage now"],
        [[r.component, r.question,
          f"{r.temporal_desired} / {r.temporal_now}",
          f"{r.network_desired} / {r.network_now}",
          r.coverage_now] for r in t1]) + "\n")

    if artifacts.cache_result is None:
        sections.append("Figures 1a/1b/2 omitted: the cache-probing "
                        "campaign delivered nothing this build.\n")
    else:
        # Figure 1a.
        sections.append("## Figure 1a — client prefixes per GDNS PoP\n")
        fig1a = fig1a_prefixes_per_pop(scenario, artifacts.cache_result)
        sections.append(_md_table(
            ["PoP", "city", "detected prefixes"],
            [[r.pop_name, r.pop_city, r.prefix_count]
             for r in fig1a[:15]]) + "\n")

        # Figure 1b.
        sections.append("## Figure 1b — user coverage and server map\n")
        fig1b = fig1b_coverage_and_servers(scenario,
                                           artifacts.cache_result,
                                           artifacts.tls_result)
        sections.append(
            f"Global APNIC-user coverage: "
            f"**{fig1b.global_user_coverage:.1%}** (paper: ~98%). "
            f"MetaBook server dots: {len(fig1b.server_dots)} locations, "
            f"{sum(1 for d in fig1b.server_dots if d.is_offnet)} "
            f"off-net.\n")

        # Figure 2.
        sections.append("## Figure 2 — subscribers vs cache hits "
                        "vs APNIC\n")
        fig2 = fig2_subscribers_vs_signals(scenario,
                                           artifacts.cache_result)
        sections.append(_md_table(
            ["cc", "ISP", "subscribers (M)", "cache hits",
             "APNIC est (M)"],
            [[r.country_code, r.isp_name, f"{r.subscribers_m:.1f}",
              f"{r.cache_hit_count:.0f}",
              "-" if r.apnic_estimate_m is None
              else f"{r.apnic_estimate_m:.1f}"]
             for r in sorted(fig2.rows,
                             key=lambda r: (r.country_code,
                                            -r.subscribers_m))])
            + "\n")
        orderings = ", ".join(
            f"{cc}: {'ok' if ok else 'WRONG'}"
            for cc, ok in fig2.orderings_correct.items())
        sections.append(f"Within-country orderings: {orderings}; "
                        f"Pearson {fig2.hit_count_pearson:.3f}.\n")

    # Claims.
    sections.append("## Headline claims\n")
    suite = ClaimSuite(scenario, itm, artifacts)
    results = suite.run_all()
    sections.append(_md_table(
        ["id", "claim", "paper", "measured", "band", "status"],
        [[r.claim_id, r.description, r.paper_value,
          f"{r.measured:.3f}", f"{r.band[0]:.2f}..{r.band[1]:.2f}",
          "pass" if r.passed else "FAIL"] for r in results]) + "\n")
    passed = sum(1 for r in results if r.passed)
    sections.append(f"**{passed}/{len(results)} claims within band.**\n")

    if manifest is not None:
        from .report import render_run_report
        sections.append("## Run report\n")
        sections.append("```\n" + render_run_report(manifest) + "\n```\n")
    return "\n".join(sections)
