"""Plain-text rendering of figures, tables and claim results.

The benchmark harness prints these so ``pytest benchmarks/`` regenerates
the paper's artefacts as readable terminal output (and EXPERIMENTS.md
embeds the same renderings).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..obs.diff import ManifestDiff
from ..obs.manifest import RunManifest
from .claims import ClaimResult
from .figures import Fig1aRow, Fig1bData, Fig2Data
from .tables import Table1Row


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with per-column widths."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_fig1a(rows: List[Fig1aRow], bar_width: int = 40) -> str:
    """ASCII bars on a log scale, mirroring Figure 1a's log axis."""
    import math
    peak = max((r.prefix_count for r in rows), default=1) or 1
    lines = ["Figure 1a — client prefixes detected per GDNS PoP "
             "(log scale)"]
    for row in rows:
        if row.prefix_count > 0:
            frac = math.log10(1 + row.prefix_count) / math.log10(1 + peak)
        else:
            frac = 0.0
        bar = "#" * max(0, int(round(frac * bar_width)))
        lines.append(f"{row.pop_name:24s} {row.prefix_count:7d} {bar}")
    return "\n".join(lines)


def render_fig1b(data: Fig1bData) -> str:
    """Country-coverage table + server-dot summary (Figure 1b)."""
    lines = [
        "Figure 1b — % of APNIC users in ASes detected by cache probing",
        f"(global coverage: {data.global_user_coverage:.1%}; paper: ~98%)",
    ]
    lines.append(render_table(
        ["country", "APNIC users (M)", "covered %"],
        [(r.country_name, f"{r.apnic_users / 1e6:.1f}",
          f"{r.covered_percent:.0f}%") for r in data.shading]))
    offnets = sum(1 for d in data.server_dots if d.is_offnet)
    lines.append(f"server dots (MetaBook): {len(data.server_dots)} "
                 f"locations, {offnets} off-net")
    return "\n".join(lines)


def render_fig2(data: Fig2Data) -> str:
    """Subscribers-vs-estimators table with orderings (Figure 2)."""
    lines = [
        "Figure 2 — ISP subscribers vs cache hits vs APNIC estimates",
        f"(hit-count correlation: pearson {data.hit_count_pearson:.3f}, "
        f"spearman {data.hit_count_spearman:.3f})",
    ]
    rows = []
    for r in sorted(data.rows, key=lambda r: (r.country_code,
                                              -r.subscribers_m)):
        rows.append((r.country_code, r.isp_name,
                     f"{r.subscribers_m:.1f}",
                     f"{r.cache_hit_count:.0f}",
                     f"{100 * r.cache_hit_rate:.2f}%",
                     "-" if r.apnic_estimate_m is None
                     else f"{r.apnic_estimate_m:.1f}"))
    lines.append(render_table(
        ["cc", "ISP", "subscribers (M)", "cache hits", "hit rate",
         "APNIC est (M)"], rows))
    ordering = ", ".join(f"{cc}:{'ok' if ok else 'X'}"
                         for cc, ok in data.orderings_correct.items())
    lines.append(f"within-country orderings: {ordering}")
    if data.hit_count_fit is not None:
        fit = data.hit_count_fit
        lines.append(f"fitted line (hits vs subscribers): "
                     f"{fit.slope:.1f}/M + {fit.intercept:.0f} "
                     f"(r={fit.r_value:.3f})")
    return "\n".join(lines)


def render_table1(rows: List[Table1Row]) -> str:
    """Monospace rendering of the regenerated Table 1."""
    lines = ["Table 1 — ITM components: desired vs achieved (this repro)"]
    lines.append(render_table(
        ["component", "question", "temporal d|now", "network d|now",
         "coverage desired", "coverage now"],
        [(r.component, r.question,
          f"{r.temporal_desired} | {r.temporal_now}",
          f"{r.network_desired} | {r.network_now}",
          r.coverage_desired, r.coverage_now) for r in rows]))
    return "\n".join(lines)


def render_claims(results: List[ClaimResult]) -> str:
    """One line per claim plus the pass count."""
    lines = ["Headline claims — paper vs measured"]
    lines.extend(result.render() for result in results)
    passed = sum(1 for r in results if r.passed)
    lines.append(f"{passed}/{len(results)} claims within band")
    return "\n".join(lines)


def render_run_report(manifest: RunManifest) -> str:
    """Run-provenance section for an instrumented build.

    Renders the manifest a :class:`repro.obs.Recorder` collected: the
    stage timing tree (indented by span depth), the per-campaign
    delivery table, the route-cache totals, per-component coverage with
    its degradation notes, the checkpoint lineage of resumed builds,
    the serve section of served runs (admission arithmetic, answer-cache
    hit rate, circuit events, live-telemetry latency quantiles), and
    the peak-memory gauges of memory-profiled builds.
    """
    lines = [f"Run report — seed {manifest.seed}, "
             f"config {manifest.config_hash}"]
    if manifest.fault_plan is not None:
        lines.append(f"fault plan: {manifest.fault_plan.get('describe')} "
                     f"(digest {manifest.fault_plan.get('digest')})")
    if manifest.stages:
        lines.append("")
        lines.append("Stage timings (wall seconds, nested):")
        for stage in manifest.stages:
            depth = stage.path.count(".") - stage.name.count(".")
            lines.append(f"  {'  ' * depth}{stage.name:32s} "
                         f"{stage.wall_s:8.3f}s  x{stage.calls}")
    ran = [(name, manifest.campaign(name))
           for name in sorted(manifest.campaigns_ran())]
    if ran:
        lines.append("")
        lines.append(render_table(
            ["campaign", "units", "delivered", "drops", "retries",
             "giveups", "coverage", "wall s"],
            [(name, rec.units, rec.delivered, rec.drops, rec.retries,
              rec.giveups, f"{rec.coverage:.1%}",
              "-" if rec.wall_s is None else f"{rec.wall_s:.3f}")
             for name, rec in ran]))
    cache = manifest.route_cache
    if cache:
        lines.append("")
        lines.append(
            f"route cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"(hit rate {cache.get('hit_rate', 0.0):.1%}), "
            f"{cache.get('entries', 0)}/{cache.get('max_entries', 0)} "
            f"entries, {cache.get('evictions', 0)} evictions")
    if manifest.coverage:
        lines.append("")
        lines.append("Component coverage:")
        for component in sorted(manifest.coverage):
            record = manifest.coverage[component]
            value = float(record.get("coverage", 1.0))
            lost = (set(record.get("techniques_intended", ()))
                    - set(record.get("techniques_delivered", ())))
            line = f"  {component}: {value:.1%}"
            if lost:
                line += f", lost {', '.join(sorted(lost))}"
            lines.append(line)
            for note in record.get("notes", ()):
                lines.append(f"    - {note}")
    ckpt = manifest.checkpoint
    if ckpt:
        lines.append("")
        reused = ckpt.get("stages_reused", [])
        recomputed = ckpt.get("stages_recomputed", [])
        verb = "resumed from" if ckpt.get("resumed") else "checkpointed to"
        lines.append(f"Checkpoints: {verb} {ckpt.get('checkpoint_dir')}")
        lines.append(
            f"  reused {len(reused)}/{ckpt.get('stages_total')} stages"
            + (f" ({', '.join(reused)})" if reused else "")
            + f"; recomputed {len(recomputed)}"
            + (f" ({', '.join(recomputed)})" if recomputed else ""))
        for entry in ckpt.get("quarantined", []):
            lines.append(f"  quarantined {entry.get('stage')}: "
                         f"{entry.get('reason')}")
    serve = manifest.serve
    if serve:
        lines.append("")
        lines.append("Serving:")
        admit = serve.get("admit", {}) or {}
        offered = int(admit.get("offered", 0) or 0)
        shed = int(admit.get("shed", 0) or 0)
        line = (f"  admission: {offered} offered = "
                f"{admit.get('admitted', 0)} admitted + {shed} shed")
        if offered:
            line += f" ({shed / offered:.1%} shed)"
        lines.append(line)
        deadline = int(admit.get("deadline_expired", 0) or 0)
        if deadline:
            lines.append(f"  deadline expired: {deadline} of "
                         f"{admit.get('admitted', 0)} admitted")
        hits = int(manifest.counters.get("serve.cache.hits", 0))
        misses = int(manifest.counters.get("serve.cache.misses", 0))
        if hits + misses:
            lines.append(f"  answer cache: {hits} hits / {misses} misses "
                         f"(hit rate {hits / (hits + misses):.1%})")
        http = serve.get("http", {}) or {}
        lines.append(f"  http: {http.get('timeouts', 0)} timeout(s), "
                     f"{http.get('client_disconnects', 0)} client "
                     "disconnect(s)")
        watch = serve.get("watch", {}) or {}
        if any(watch.get(k, 0) for k in ("errors", "circuit_open",
                                         "circuit_close")):
            lines.append(f"  watch: {watch.get('errors', 0)} reload "
                         f"error(s), circuit opened "
                         f"{watch.get('circuit_open', 0)}x / closed "
                         f"{watch.get('circuit_close', 0)}x")
        chaos = serve.get("chaos", {}) or {}
        if chaos:
            fired = ", ".join(f"{kind}={count}"
                              for kind, count in sorted(chaos.items()))
            lines.append(f"  chaos injections: {fired}")
        latency = serve.get("latency") or {}
        if latency:
            rows = []
            for endpoint in sorted(latency.get("endpoints", {})):
                outcomes = latency["endpoints"][endpoint]
                for outcome in sorted(outcomes):
                    s = outcomes[outcome]
                    rows.append((endpoint, outcome, s.get("count", 0),
                                 f"{s.get('p50_ms', 0.0):.1f}",
                                 f"{s.get('p99_ms', 0.0):.1f}",
                                 f"{s.get('max_ms', 0.0):.1f}"))
            total = latency.get("total", {}) or {}
            rows.append(("total", "-", total.get("count", 0),
                         f"{total.get('p50_ms', 0.0):.1f}",
                         f"{total.get('p99_ms', 0.0):.1f}",
                         f"{total.get('max_ms', 0.0):.1f}"))
            lines.append("  latency (server-side histograms, ms):")
            table = render_table(
                ["endpoint", "outcome", "count", "p50", "p99", "max"],
                rows)
            lines.extend("  " + row for row in table.splitlines())
    peaks = sorted(
        ((name[len("mem."):-len(".peak_bytes")], value)
         for name, value in manifest.gauges.items()
         if name.startswith("mem.") and name.endswith(".peak_bytes")),
        key=lambda item: -item[1])
    if peaks:
        lines.append("")
        lines.append("Peak traced memory by span (profile_memory):")
        for span, value in peaks[:10]:
            lines.append(f"  {span:40s} {value / 2**20:8.1f} MiB")
    return "\n".join(lines)


def render_diff_report(diff: ManifestDiff) -> str:
    """Markdown-ish rendering of a :class:`repro.obs.ManifestDiff`.

    Printed by ``python -m repro compare`` and suitable for embedding
    in CI logs: an overall verdict line, then one table per finding
    category (categories without findings are omitted).
    """
    lines = [f"Manifest diff — status: {diff.status.upper()} "
             f"({len(diff.regressions())} regression(s), "
             f"{len(diff.warnings())} warning(s), "
             f"{len(diff.findings)} finding(s))"]
    lines.append(f"config {diff.config_hash}")
    if diff.ignored_categories:
        lines.append("ignored categories: "
                     + ", ".join(diff.ignored_categories))
    if diff.incomparable_reasons:
        lines.append("FORCED comparison despite: "
                     + "; ".join(diff.incomparable_reasons))
    if not diff.findings:
        lines.append("")
        lines.append("No drift: every classified metric is within "
                     "thresholds.")
        return "\n".join(lines)
    for category, findings in diff.by_category().items():
        lines.append("")
        lines.append(f"{category}:")
        lines.append(render_table(
            ["status", "metric", "old", "new", "detail"],
            [(f.status, f.metric,
              "-" if f.old is None else f"{f.old:g}",
              "-" if f.new is None else f"{f.new:g}",
              f.detail) for f in findings]))
    return "\n".join(lines)
