"""APNIC-estimate validation study.

"APNIC publishes estimates of the number of users per network [33], but
the data are coarse-grained, and the approach has not been validated."
(§1) — in the simulation we *can* validate it: compare APNIC estimates
and the map's activity weights against ground-truth users per AS, and
quantify which public estimator tracks reality better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import stats

from ..errors import ValidationError
from ..core.traffic_map import InternetTrafficMap
from ..scenario import Scenario


@dataclass
class EstimatorScore:
    """How one public estimator tracks ground-truth users."""

    name: str
    spearman: float
    median_abs_log_error: float   # median |log10(est/true)|
    covered_ases: int

    @property
    def typical_factor_off(self) -> float:
        """Median multiplicative error, e.g. 1.3 = 30% off."""
        return float(10 ** self.median_abs_log_error)


@dataclass
class ApnicValidationStudy:
    """APNIC vs the map, both scored against ground truth."""

    apnic: EstimatorScore
    map_activity: EstimatorScore

    @property
    def map_orders_better(self) -> bool:
        return self.map_activity.spearman >= self.apnic.spearman


def validate_apnic_against_truth(scenario: Scenario,
                                 itm: InternetTrafficMap
                                 ) -> ApnicValidationStudy:
    """Score both public estimators on ASes all three datasets cover."""
    truth = scenario.population.users_by_as()
    apnic = scenario.apnic.estimates
    map_weights = itm.users.activity_by_as

    common = sorted(asn for asn in truth
                    if truth[asn] > 0 and asn in apnic
                    and asn in map_weights)
    if len(common) < 5:
        raise ValidationError("too few commonly-covered ASes")

    true_vals = np.array([truth[a] for a in common])
    apnic_vals = np.array([apnic[a] for a in common])
    map_vals = np.array([map_weights[a] for a in common])

    def score(name: str, estimates: np.ndarray,
              comparable_units: bool) -> EstimatorScore:
        rho = float(stats.spearmanr(true_vals, estimates).statistic)
        if comparable_units:
            log_err = np.abs(np.log10(estimates / true_vals))
        else:
            # Relative estimator: align scales by total mass first.
            scaled = estimates * (true_vals.sum() / estimates.sum())
            log_err = np.abs(np.log10(scaled / true_vals))
        return EstimatorScore(
            name=name, spearman=rho,
            median_abs_log_error=float(np.median(log_err)),
            covered_ases=len(common))

    return ApnicValidationStudy(
        apnic=score("APNIC user estimates", apnic_vals, True),
        map_activity=score("map activity weights", map_vals, False))
