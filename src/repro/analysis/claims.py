"""Headline-claim reproduction suite.

Every quantitative statement in the paper gets a :class:`ClaimResult`:
the paper's number, our measured number, and a shape band. Bands are
deliberately generous — the substrate is a simulator, so we reproduce
*who wins and by roughly what factor*, not third decimal places — but
tight enough that a broken technique fails its claim.

The suite shares one scenario build and one measurement pass across all
claims; benches and EXPERIMENTS.md render its output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import stats

from ..core.builder import BuildArtifacts, MapBuilder
from ..core.linkrec import PeeringRecommender, evaluate_recommender
from ..core.pathpred import PathPredictor, evaluate_prediction
from ..core.traffic_map import InternetTrafficMap
from ..core.usecases import (iplane_short_fraction, mapping_optimality_study,
                             path_length_study)
from ..core.validation import validate_users_component
from ..errors import ValidationError
from ..measure.atlas import AtlasPlatform
from ..measure.ipid import IpIdMonitor
from ..net.ases import ASType
from ..rand import substream
from ..scenario import Scenario
from ..services.hypergiants import (GROUND_TRUTH_CDN_KEY,
                                    RedirectionScheme)


@dataclass(frozen=True)
class ClaimResult:
    """One checked claim."""

    claim_id: str
    description: str
    paper_value: str
    measured: float
    band: Tuple[float, float]

    @property
    def passed(self) -> bool:
        lo, hi = self.band
        return lo <= self.measured <= hi

    def render(self) -> str:
        flag = "ok " if self.passed else "FAIL"
        return (f"[{flag}] {self.claim_id}: {self.description} | paper "
                f"{self.paper_value} | measured {self.measured:.3f} "
                f"(band {self.band[0]:.2f}..{self.band[1]:.2f})")


class ClaimSuite:
    """Computes every claim against one scenario (shared artifacts)."""

    def __init__(self, scenario: Scenario,
                 itm: Optional[InternetTrafficMap] = None,
                 artifacts: Optional[BuildArtifacts] = None) -> None:
        self._scenario = scenario
        if itm is None or artifacts is None:
            builder = MapBuilder(scenario)
            itm = builder.build()
            artifacts = builder.artifacts
        self._itm = itm
        self._artifacts = artifacts
        self._users_validation = validate_users_component(
            itm.users, scenario, GROUND_TRUTH_CDN_KEY)

    # -- §3.1.2: users-component coverage -------------------------------------

    def c1_cache_probing_coverage(self) -> List[ClaimResult]:
        """Cache probing finds prefixes with ~95% of CDN traffic, <1% FP."""
        val = self._users_validation
        return [
            ClaimResult(
                "C1a", "cache probing: prefix-level CDN traffic coverage",
                "95%", val.prefix_traffic_coverage, (0.90, 0.999)),
            ClaimResult(
                "C1b", "cache probing: detected-prefix false positives",
                "<1%", val.false_positive_rate, (0.0, 0.01)),
        ]

    def c2_rootlog_coverage(self) -> ClaimResult:
        """Root-log crawling finds ASes with ~60% of CDN traffic."""
        result = self._artifacts.rootlog_result
        if result is None:
            raise ValidationError("builder did not run root-log crawling")
        coverage = self._scenario.traffic.coverage_of_as_set(
            result.detected_asns(), GROUND_TRUTH_CDN_KEY)
        return ClaimResult(
            "C2", "root-log crawl: AS-level CDN traffic coverage",
            "60%", coverage, (0.40, 0.80))

    def c3_combined_coverage(self) -> List[ClaimResult]:
        """Combined: ~99% of CDN traffic, ~98% of APNIC users."""
        val = self._users_validation
        return [
            ClaimResult(
                "C3a", "combined techniques: AS-level CDN traffic coverage",
                "99%", val.as_traffic_coverage, (0.95, 1.0)),
            ClaimResult(
                "C3b", "combined techniques: APNIC-user coverage",
                "98%", val.apnic_user_coverage, (0.95, 1.0)),
        ]

    # -- §2.1: weighting use cases -----------------------------------------------

    def c4_path_lengths(self) -> List[ClaimResult]:
        """Unweighted ~2% short paths vs ~73% of queries from <=1-hop ASes."""
        scenario = self._scenario
        stubs = [a.asn for a in scenario.registry.of_type(ASType.STUB)]
        baseline = iplane_short_fraction(
            scenario.bgp, stubs[:10], scenario.registry.asns)
        hg_key = "googol"
        hg_asn = scenario.hypergiant_asn(hg_key)
        users_by_as = scenario.population.users_by_as()
        clients = [a for a, u in users_by_as.items() if u > 0]
        offnets = {s.host_asn for s in scenario.deployment.sites(hg_key)
                   if s.is_offnet}
        study = path_length_study(scenario.graph, scenario.bgp, clients,
                                  users_by_as, hg_asn, offnets)
        return [
            ClaimResult(
                "C4a", "unweighted: fraction of paths <=2 ASes long",
                "2%", baseline, (0.0, 0.10)),
            ClaimResult(
                "C4b", "weighted: query mass hosting/adjacent to hypergiant",
                "73%", study.offnet_or_adjacent_weighted, (0.60, 0.92)),
        ]

    # -- §2.1 / §3.2.3: mapping optimality ---------------------------------------

    def c5_mapping_optimality(self) -> List[ClaimResult]:
        """~31% of routes optimal, ~60% of users optimal; anycast ~80%
        within 500 km of the closest site."""
        scenario = self._scenario
        dns_assignment = scenario.mapping.assignment(
            "amazonia", RedirectionScheme.DNS)
        study = mapping_optimality_study(
            dns_assignment, scenario.population.users_per_prefix)
        anycast_key = next(iter(scenario.anycast_models))
        anycast_assignment = scenario.mapping.assignment(
            anycast_key, RedirectionScheme.ANYCAST)
        anycast_study = mapping_optimality_study(
            anycast_assignment, scenario.population.users_per_prefix)
        return [
            ClaimResult(
                "C5a", "CDN mapping: route-level optimal fraction",
                "31%", study.route_optimal_fraction, (0.20, 0.45)),
            ClaimResult(
                "C5b", "CDN mapping: user-weighted optimal fraction",
                "60%", study.user_optimal_fraction, (0.45, 0.75)),
            ClaimResult(
                "C5c", "anycast: clients within 500 km of closest site",
                "80%", anycast_study.within_500km_fraction, (0.70, 0.98)),
        ]

    # -- §3.3.1: public-topology blind spots -------------------------------------

    def c6_path_prediction(self) -> List[ClaimResult]:
        """>50% of Atlas->root paths not predictable; >90% of hypergiant
        peerings invisible at collectors."""
        scenario = self._scenario
        platform = AtlasPlatform(
            scenario.registry, scenario.bgp, scenario.prefixes,
            substream(scenario.config.seed, "claims-atlas"),
            vp_count=scenario.config.measurement.atlas_vantage_points)
        truth = {}
        for root in scenario.roots.roots:
            for vp in platform.vantage_points:
                if vp.asn != root.host_asn:
                    truth[(vp.asn, root.host_asn)] = scenario.bgp.path(
                        vp.asn, root.host_asn)
        predictor = PathPredictor(scenario.public_view)
        evaluation = evaluate_prediction(
            predictor.predict_many(list(truth)), truth)
        not_predicted = 1.0 - evaluation.exact_fraction

        hg_asns = set(scenario.topology.hypergiant_asns.values())
        hg_links = [(a, b) for a, b, rel in scenario.graph.edges()
                    if rel.name == "P2P" and (a in hg_asns or b in hg_asns)]
        invisibility = 1.0 - scenario.public_view.visibility_of_links(
            hg_links)
        return [
            ClaimResult(
                "C6a", "Atlas->root paths not correctly predictable",
                ">50%", not_predicted, (0.45, 1.0)),
            ClaimResult(
                "C6b", "hypergiant peering links invisible at collectors",
                ">90%", invisibility, (0.85, 1.0)),
        ]

    # -- §3.2.3: ECS adoption ------------------------------------------------------

    def c7_ecs_adoption(self) -> List[ClaimResult]:
        """15/20 top sites support ECS = ~35% of traffic, ~91% of top-20."""
        catalog = self._scenario.catalog
        top20 = catalog.top_by_popularity(20)
        ecs = [s for s in top20 if s.ecs_supported]
        ecs_bytes = sum(s.bytes_share for s in ecs)
        top_bytes = sum(s.bytes_share for s in top20)
        return [
            ClaimResult("C7a", "top-20 sites supporting ECS",
                        "15 of 20", float(len(ecs)), (13, 17)),
            ClaimResult("C7b", "ECS top-20 sites: share of all traffic",
                        "35%", ecs_bytes, (0.28, 0.42)),
            ClaimResult("C7c", "ECS share of top-20 traffic",
                        "91%", ecs_bytes / top_bytes, (0.85, 0.96)),
        ]

    # -- §3.1.3: IP ID velocity -------------------------------------------------------

    def c8_ipid_velocity(self, max_routers: int = 100) -> List[ClaimResult]:
        """IP ID velocity is diurnal and tracks forwarded volume."""
        scenario = self._scenario
        cfg = scenario.config.measurement
        monitor = IpIdMonitor(
            interval_s=cfg.ipid_ping_interval_s,
            duration_hours=cfg.ipid_campaign_hours,
            rng=substream(scenario.config.seed, "claims-ipid"))
        routers = scenario.routers.countable()[:max_routers]
        analyses = monitor.campaign(routers)
        usable = [a for a in analyses if a.usable]
        diurnal_fraction = (np.mean([a.looks_diurnal for a in usable])
                            if usable else 0.0)
        velocity = {a.address: a.mean_velocity for a in usable}
        xs, ys = [], []
        for router in routers:
            estimate = velocity.get(router.address)
            if estimate is not None:
                xs.append(scenario.flows.as_volume(router.asn))
                ys.append(estimate)
        correlation = float(stats.spearmanr(xs, ys).statistic) if (
            len(xs) >= 3) else 0.0
        return [
            ClaimResult("C8a", "routers with diurnal IP ID velocity",
                        "most routers", float(diurnal_fraction), (0.7, 1.0)),
            ClaimResult("C8b", "IP ID velocity vs forwarded volume "
                        "(Spearman)", "proportional", correlation,
                        (0.6, 1.0)),
        ]

    # -- §3.3.3: link recommendation -----------------------------------------------------

    def c9_link_recommendation(self, max_positives: int = 300,
                               max_negatives: int = 1500) -> ClaimResult:
        """Recommender ranks hidden peering links well above chance."""
        scenario = self._scenario
        hidden = scenario.graph.link_set() - \
            scenario.public_view.graph.link_set()
        colocated = scenario.topology.peeringdb.colocated_pairs()
        positives = sorted(p for p in hidden if p in colocated)
        negatives = sorted(
            p for p in colocated
            if scenario.graph.relationship_of(*p) is None)
        rng = substream(scenario.config.seed, "claims-linkrec")
        if len(positives) > max_positives:
            idx = rng.choice(len(positives), size=max_positives,
                             replace=False)
            positives = [positives[int(i)] for i in sorted(idx)]
        if len(negatives) > max_negatives:
            idx = rng.choice(len(negatives), size=max_negatives,
                             replace=False)
            negatives = [negatives[int(i)] for i in sorted(idx)]
        recommender = PeeringRecommender(
            scenario.public_view.graph, scenario.registry,
            scenario.topology.peeringdb,
            activity_by_as=self._itm.users.activity_by_as)
        evaluation = evaluate_recommender(
            recommender, set(positives), set(negatives))
        return ClaimResult(
            "C9", "peering-link recommender AUC on hidden links",
            "above chance", evaluation.auc, (0.60, 1.0))

    # -- §1 / §2: consolidation --------------------------------------------------------

    def c10_consolidation(self) -> ClaimResult:
        """A handful of hypergiants serve ~90% of traffic [25]."""
        return ClaimResult(
            "C10", "traffic share served from hypergiant infrastructure",
            "~90%", self._scenario.catalog.total_hypergiant_share(),
            (0.80, 0.97))

    # -- orchestration -------------------------------------------------------------------

    def run_all(self) -> List[ClaimResult]:
        results: List[ClaimResult] = []
        results.extend(self.c1_cache_probing_coverage())
        results.append(self.c2_rootlog_coverage())
        results.extend(self.c3_combined_coverage())
        results.extend(self.c4_path_lengths())
        results.extend(self.c5_mapping_optimality())
        results.extend(self.c6_path_prediction())
        results.extend(self.c7_ecs_adoption())
        results.extend(self.c8_ipid_velocity())
        results.append(self.c9_link_recommendation())
        results.append(self.c10_consolidation())
        return results
