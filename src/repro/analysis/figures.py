"""Data series behind the paper's figures.

Each function returns plain rows (lists of small dataclasses) — the same
numbers the paper plots — so benchmarks and examples can print or plot
them without any measurement logic of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import stats

from ..errors import ValidationError
from ..measure.cache_probing import CacheProbingResult
from ..measure.tlsscan import TlsScanResult
from ..scenario import Scenario
from ..services.hypergiants import FIG1B_SERVER_MAP_KEY


# -- Figure 1a --------------------------------------------------------------

@dataclass(frozen=True)
class Fig1aRow:
    """One bar: client prefixes detected behind one GDNS PoP."""

    pop_name: str
    pop_city: str
    prefix_count: int


def fig1a_prefixes_per_pop(scenario: Scenario,
                           cache_result: CacheProbingResult
                           ) -> List[Fig1aRow]:
    """Figure 1a: locations of clients detected with cache probing —
    detected prefix count per probed GDNS PoP, largest first."""
    counts = cache_result.detected_per_pop()
    rows = []
    for pop in scenario.gdns.pops:
        rows.append(Fig1aRow(
            pop_name=pop.name, pop_city=pop.city.name,
            prefix_count=counts.get(pop.pop_id, 0)))
    rows.sort(key=lambda r: (-r.prefix_count, r.pop_name))
    return rows


# -- Figure 1b --------------------------------------------------------------

@dataclass(frozen=True)
class Fig1bCountryRow:
    """Shading of one country: % of its APNIC users in detected ASes."""

    country_code: str
    country_name: str
    apnic_users: float
    covered_users: float

    @property
    def covered_percent(self) -> float:
        if self.apnic_users <= 0:
            return 0.0
        return min(100.0, 100.0 * self.covered_users / self.apnic_users)


@dataclass(frozen=True)
class Fig1bServerDot:
    """One dot: a detected hypergiant server location."""

    city_name: str
    country_code: str
    lat: float
    lon: float
    is_offnet: bool


@dataclass
class Fig1bData:
    """Both layers of Figure 1b: country shading + server dots."""

    shading: List[Fig1bCountryRow]
    server_dots: List[Fig1bServerDot]
    global_user_coverage: float       # paper: ~98%


def fig1b_coverage_and_servers(scenario: Scenario,
                               cache_result: CacheProbingResult,
                               tls_result: TlsScanResult) -> Fig1bData:
    """Figure 1b: per-country APNIC-user coverage of cache probing
    (shading) and TLS-scan-detected server locations of the Facebook-like
    hypergiant (dots)."""
    detected_asns = cache_result.detected_asns(scenario.prefixes)
    registry = scenario.registry

    per_country_total: Dict[str, float] = {}
    per_country_covered: Dict[str, float] = {}
    for asn, users in scenario.apnic.estimates.items():
        asys = registry.maybe(asn)
        if asys is None:
            continue
        code = asys.country_code
        per_country_total[code] = per_country_total.get(code, 0.0) + users
        if asn in detected_asns:
            per_country_covered[code] = (
                per_country_covered.get(code, 0.0) + users)

    shading = []
    for code in scenario.atlas.country_codes:
        total = per_country_total.get(code, 0.0)
        shading.append(Fig1bCountryRow(
            country_code=code,
            country_name=scenario.atlas.country(code).name,
            apnic_users=total,
            covered_users=per_country_covered.get(code, 0.0)))

    spec = scenario.catalog.hypergiants[FIG1B_SERVER_MAP_KEY]
    dots: List[Fig1bServerDot] = []
    if spec.cert_org in tls_result.footprints:
        footprint = tls_result.footprint_of(spec.cert_org)
        offnet_set = set(footprint.offnet_prefixes)
        for pid in footprint.onnet_prefixes + footprint.offnet_prefixes:
            city = scenario.prefixes.city_of(pid)
            dots.append(Fig1bServerDot(
                city_name=city.name, country_code=city.country_code,
                lat=city.lat, lon=city.lon, is_offnet=pid in offnet_set))

    grand_total = sum(per_country_total.values())
    grand_covered = sum(per_country_covered.values())
    coverage = grand_covered / grand_total if grand_total > 0 else 0.0
    return Fig1bData(shading=shading, server_dots=dots,
                     global_user_coverage=coverage)


# -- Figure 2 ---------------------------------------------------------------

@dataclass(frozen=True)
class Fig2Row:
    """One focus ISP: ground truth vs the two unvalidated estimators."""

    country_code: str
    isp_name: str
    subscribers_m: float          # ground truth (x of the fitted line)
    cache_hit_count: float        # our estimator
    cache_hit_rate: float         # hits per probe
    apnic_estimate_m: Optional[float]


@dataclass(frozen=True)
class FittedLine:
    """Least-squares fit, subscriber count vs an estimator (the paper's
    "Fitted Lines" overlay)."""

    slope: float
    intercept: float
    r_value: float

    def predict(self, subscribers_m: float) -> float:
        return self.slope * subscribers_m + self.intercept


@dataclass
class Fig2Data:
    """Figure 2 rows plus the derived correlations/fits/orderings."""

    rows: List[Fig2Row]
    hit_count_pearson: float
    hit_count_spearman: float
    orderings_correct: Dict[str, bool]   # per country
    hit_count_fit: Optional[FittedLine] = None
    apnic_fit: Optional[FittedLine] = None

    def all_orderings_correct(self) -> bool:
        return all(self.orderings_correct.values())


def fig2_subscribers_vs_signals(scenario: Scenario,
                                cache_result: CacheProbingResult
                                ) -> Fig2Data:
    """Figure 2: ISP subscriber counts vs cache hit rate and APNIC
    estimates for the named focus ISPs (France is the case study)."""
    focus = scenario.topology.focus_subscribers_m
    if not focus:
        raise ValidationError("scenario has no focus ISPs")
    names = scenario.topology.focus_isp_names
    hit_counts = cache_result.hit_counts_by_as(scenario.prefixes)
    hit_rates = cache_result.hit_rate_by_as(scenario.prefixes)
    rows = []
    for asn in sorted(focus):
        apnic = scenario.apnic.users_for_as(asn)
        rows.append(Fig2Row(
            country_code=scenario.registry.get(asn).country_code,
            isp_name=names[asn],
            subscribers_m=focus[asn],
            cache_hit_count=hit_counts.get(asn, 0.0),
            cache_hit_rate=hit_rates.get(asn, 0.0),
            apnic_estimate_m=(apnic / 1e6 if apnic is not None else None)))

    subs = [r.subscribers_m for r in rows]
    hits = [r.cache_hit_count for r in rows]
    pearson = float(stats.pearsonr(subs, hits).statistic)
    spearman = float(stats.spearmanr(subs, hits).statistic)

    hit_fit_raw = stats.linregress(subs, hits)
    hit_fit = FittedLine(slope=float(hit_fit_raw.slope),
                         intercept=float(hit_fit_raw.intercept),
                         r_value=float(hit_fit_raw.rvalue))
    apnic_fit = None
    with_apnic = [(r.subscribers_m, r.apnic_estimate_m) for r in rows
                  if r.apnic_estimate_m is not None]
    if len(with_apnic) >= 3:
        apnic_raw = stats.linregress([s for s, __ in with_apnic],
                                     [a for __, a in with_apnic])
        apnic_fit = FittedLine(slope=float(apnic_raw.slope),
                               intercept=float(apnic_raw.intercept),
                               r_value=float(apnic_raw.rvalue))

    orderings: Dict[str, bool] = {}
    for code in sorted({r.country_code for r in rows}):
        country_rows = [r for r in rows if r.country_code == code]
        by_subs = sorted(country_rows, key=lambda r: -r.subscribers_m)
        by_hits = sorted(country_rows, key=lambda r: -r.cache_hit_count)
        orderings[code] = [r.isp_name for r in by_subs] == \
            [r.isp_name for r in by_hits]

    return Fig2Data(rows=rows, hit_count_pearson=pearson,
                    hit_count_spearman=spearman,
                    orderings_correct=orderings,
                    hit_count_fit=hit_fit, apnic_fit=apnic_fit)
