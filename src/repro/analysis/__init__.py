"""Reproduction harness: data series for every figure, Table 1, and the
paper's headline quantitative claims."""
