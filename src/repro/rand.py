"""Deterministic randomness utilities.

Every stochastic component of the simulation derives its random stream from
a single scenario seed through :func:`substream`, so that

* two scenarios built from the same config are bit-identical, and
* adding randomness to one component never perturbs another (each component
  draws from its own named child stream).
"""

from __future__ import annotations

import hashlib

import numpy as np


def substream(seed: int, *names: str) -> np.random.Generator:
    """Return a generator for the child stream identified by ``names``.

    The child seed is derived by hashing the parent seed together with the
    dot-joined name path, so streams are independent across names and stable
    across runs and platforms.

    >>> a = substream(7, "topology")
    >>> b = substream(7, "topology")
    >>> float(a.random()) == float(b.random())
    True
    """
    label = ".".join(names)
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "big")
    return np.random.default_rng(child_seed)


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Return ``n`` weights following a Zipf law, normalised to sum to 1.

    Rank 1 gets the largest weight. ``exponent`` controls skew; 0 gives a
    uniform distribution.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def lognormal_factors(rng: np.random.Generator, n: int, sigma: float) -> np.ndarray:
    """Return ``n`` multiplicative noise factors with median 1.

    Used to perturb ground-truth quantities into "estimates" (e.g. the
    simulated APNIC user counts) without changing their order of magnitude.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0:
        return np.ones(n)
    return rng.lognormal(mean=0.0, sigma=sigma, size=n)
