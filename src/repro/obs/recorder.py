"""Span timers and typed counters for instrumented map builds.

The paper's map is meant to be rebuilt continuously (§5), which makes the
build itself a measurement system — and measurement platforms live or die
by self-reporting (DIMES, SONoMA). A :class:`Recorder` collects three
kinds of signal while a build runs:

* **spans** — hierarchical wall-clock timers opened with
  ``with recorder.span("users"):``. Nested spans accumulate under dotted
  paths (``build.users.measure.cache-probing``), so the same campaign
  instrumented once shows up wherever it ran.
* **counters** — monotonically accumulated totals
  (``measure.tls-scan.certs_observed``, ``routing.cache.hits``,
  ``faults.cache-probing.retries``). Deltas may be fractional
  (retry backoff seconds).
* **gauges** — last-write-wins point-in-time values
  (``routing.cache.entries``).

With memory profiling enabled (:meth:`Recorder.start_memory_profiling`,
normally reached through ``BuilderOptions.profile_memory``), every span
additionally records two gauges from :mod:`tracemalloc`:
``mem.<path>.peak_bytes`` (the high-water mark of traced allocations
while the span — children included — was open; the max over re-entries)
and ``mem.<path>.current_bytes`` (traced bytes still live when the span
closed, last write wins).

The default everywhere is the :data:`NULL_RECORDER` singleton, whose
methods do nothing and allocate nothing: instrumentation observes and
never steers — it must not touch any random stream or branch, so an
instrumented build's map is bit-identical to an uninstrumented one
(``tests/test_obs.py`` regression-locks this against ``map_to_json``;
memory profiling is covered by the same lock).
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, TextIO


@dataclass(frozen=True)
class StageTiming:
    """Aggregated timing of one span path.

    ``path`` is the full dotted location (``build.users``); ``name`` is
    the label the span was opened with (``users``), which is what
    manifest consumers match on. ``calls`` counts how many times the
    span was entered and ``wall_s`` sums the wall-clock seconds spent
    inside it (including child spans).
    """

    path: str
    name: str
    calls: int
    wall_s: float


class Recorder:
    """Collects spans, counters and gauges during one run.

    Purely observational: a recorder never draws randomness, never
    raises out of instrumentation paths, and never changes what the
    instrumented code does. Pass ``trace`` (e.g. ``sys.stderr``) to also
    emit a live indented span log as the run proceeds.
    """

    enabled = True

    def __init__(self, trace: Optional[TextIO] = None,
                 profile_memory: bool = False) -> None:
        self._stack: List[str] = []
        # path -> [label, calls, wall_s]; insertion-ordered, which gives
        # manifests a stable "first entered" stage order.
        self._spans: Dict[str, List] = {}
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._trace = trace
        # Per open span: the peak traced bytes seen so far *inside* it,
        # folded upward as children close (see span()).
        self._mem_peaks: List[int] = []
        self._profile_memory = False
        self._started_tracemalloc = False
        if profile_memory:
            self.start_memory_profiling()

    # -- memory profiling -------------------------------------------------

    @property
    def memory_profiling(self) -> bool:
        """Whether spans currently record tracemalloc gauges."""
        return self._profile_memory

    def start_memory_profiling(self) -> None:
        """Record per-span tracemalloc peak/current gauges from now on.

        Starts :mod:`tracemalloc` if it is not already tracing (and
        remembers having done so, so :meth:`stop_memory_profiling` only
        stops what it started). Purely observational — tracemalloc sees
        allocations but never changes them — so the bit-identity
        guarantee of instrumented builds is unaffected; the cost is the
        tracing overhead, which is why this is opt-in
        (``BuilderOptions.profile_memory``).
        """
        if self._profile_memory:
            return
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._profile_memory = True

    def stop_memory_profiling(self) -> None:
        """Stop recording memory gauges (and tracemalloc, if we own it)."""
        if not self._profile_memory:
            return
        self._profile_memory = False
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    # -- spans ------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a named stage; nestable (paths join with dots)."""
        self._stack.append(name)
        path = ".".join(self._stack)
        if self._trace is not None:
            indent = "  " * (len(self._stack) - 1)
            print(f"[trace] {indent}> {name}", file=self._trace)
        # Memory participation is decided at entry so a profiler toggled
        # mid-span cannot unbalance the peak stack.
        profiling = self._profile_memory and tracemalloc.is_tracing()
        if profiling:
            _, peak_before = tracemalloc.get_traced_memory()
            if self._mem_peaks:
                # Credit the parent with its peak so far, then restart
                # the high-water mark for this span.
                self._mem_peaks[-1] = max(self._mem_peaks[-1], peak_before)
            tracemalloc.reset_peak()
            self._mem_peaks.append(0)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._stack.pop()
            entry = self._spans.get(path)
            if entry is None:
                self._spans[path] = [name, 1, elapsed]
            else:
                entry[1] += 1
                entry[2] += elapsed
            if profiling:
                current, peak_now = tracemalloc.get_traced_memory()
                span_peak = max(self._mem_peaks.pop(), peak_now)
                # A span's gauge is the max over its re-entries; current
                # bytes are genuinely last-write-wins.
                key = f"mem.{path}.peak_bytes"
                self.gauges[key] = max(self.gauges.get(key, 0), span_peak)
                self.gauges[f"mem.{path}.current_bytes"] = current
                tracemalloc.reset_peak()
                if self._mem_peaks:
                    # The child's peak is also part of the parent's.
                    self._mem_peaks[-1] = max(self._mem_peaks[-1],
                                              span_peak)
            if self._trace is not None:
                indent = "  " * len(self._stack)
                print(f"[trace] {indent}< {name} ({elapsed * 1e3:.1f} ms)",
                      file=self._trace)

    def spans(self) -> List[StageTiming]:
        """All recorded stages, in first-entered order."""
        return [StageTiming(path=path, name=label, calls=calls,
                            wall_s=wall)
                for path, (label, calls, wall) in self._spans.items()]

    def stage(self, name: str) -> Optional[StageTiming]:
        """Look one stage up by label or full path (None if absent)."""
        for timing in self.spans():
            if timing.name == name or timing.path == name:
                return timing
        return None

    # -- counters and gauges ----------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        """Accumulate ``delta`` onto a named counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time value (last write wins)."""
        self.gauges[name] = value

    # -- worker hand-off ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Picklable dump of everything recorded so far.

        Pool workers running whole stages record into their own fresh
        recorder, ship the snapshot home, and the parent folds it in
        with :meth:`absorb`.
        """
        return {
            "spans": [(path, label, calls, wall)
                      for path, (label, calls, wall) in self._spans.items()],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def absorb(self, snapshot: Dict[str, object]) -> None:
        """Fold a child recorder's :meth:`snapshot` into this one.

        Span paths are re-rooted under the currently open span, counters
        accumulate and gauges stay last-write-wins, so a stage executed
        in a pool worker reports exactly like one executed inline (call
        absorb in the stages' inline order to keep ordering-sensitive
        state — span insertion order — identical).
        """
        base = ".".join(self._stack)
        for path, label, calls, wall in snapshot["spans"]:
            full = f"{base}.{path}" if base else path
            entry = self._spans.get(full)
            if entry is None:
                self._spans[full] = [label, calls, wall]
            else:
                entry[1] += calls
                entry[2] += wall
        for name, delta in snapshot["counters"].items():
            self.count(name, delta)
        for name, value in snapshot["gauges"].items():
            self.gauge(name, value)


class NullRecorder(Recorder):
    """The do-nothing default: no state, no timing, no output.

    Every instrumented call site takes ``Optional[Recorder]`` and falls
    back to the shared :data:`NULL_RECORDER`, so uninstrumented runs pay
    only a no-op method call.
    """

    enabled = False

    def __init__(self) -> None:
        # Deliberately no state: shared singleton, nothing to collect.
        self._null_span = nullcontext()

    def span(self, name: str):  # type: ignore[override]
        return self._null_span

    def spans(self) -> List[StageTiming]:
        return []

    def stage(self, name: str) -> Optional[StageTiming]:
        return None

    def count(self, name: str, delta: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"spans": [], "counters": {}, "gauges": {}}

    def absorb(self, snapshot: Dict[str, object]) -> None:
        pass

    def start_memory_profiling(self) -> None:
        # Never starts tracemalloc: the null recorder observes nothing.
        pass

    def stop_memory_profiling(self) -> None:
        pass

    @property
    def memory_profiling(self) -> bool:  # type: ignore[override]
        return False

    @property
    def counters(self) -> Dict[str, float]:  # type: ignore[override]
        return {}

    @property
    def gauges(self) -> Dict[str, float]:  # type: ignore[override]
        return {}


NULL_RECORDER = NullRecorder()


def resolve_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Normalise an optional recorder argument to a usable instance."""
    return recorder if recorder is not None else NULL_RECORDER
