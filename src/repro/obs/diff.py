"""Structured diffing of two run manifests: where did this build drift?

The paper frames the traffic map as a continuously rebuilt artifact
(§5), which makes the *first derivative* of every build metric — stage
wall time, campaign coverage, route-cache efficiency, peak memory — the
signal an operator actually watches. :func:`diff_manifests` takes two
comparable :class:`repro.obs.RunManifest` records (same config /
fault-plan digests; see :func:`comparability_errors`) and classifies
every change against configurable :class:`DiffThresholds` into
``ok`` / ``warn`` / ``regression`` findings, grouped by category:

* ``wall`` — per-stage wall-clock deltas (relative, with an absolute
  floor so microsecond stages cannot trip the gate);
* ``counter`` / ``gauge`` — recorder counter and gauge drift (counters
  are deterministic under a fixed seed, so *any* change is a behaviour
  change; ``faults.*.giveups``/``failures`` increases escalate to
  regressions);
* ``campaign`` — per-campaign delivery: coverage drops, campaigns that
  newly failed or stopped running;
* ``coverage`` — per-component map coverage and lost techniques;
* ``route-cache`` — hit-rate drops;
* ``checkpoint`` — snapshot reuse-ratio drops between resumed builds;
* ``memory`` — ``mem.*.peak_bytes`` growth (profiled builds only);
* ``serve`` — serving-path drift between served runs (format ≥ 4
  manifests): shed/deadline fraction increases, http/watch incident
  counters, chaos-schedule drift, and — format 5 — latency quantile
  growth from the live-telemetry histograms.

The result renders to markdown via
:func:`repro.analysis.report.render_diff_report` and gates CI through
``python -m repro compare OLD NEW --gate``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ValidationError
from .manifest import RunManifest

#: Finding severities, in escalation order.
STATUS_OK = "ok"
STATUS_WARN = "warn"
STATUS_REGRESSION = "regression"

_STATUS_RANK = {STATUS_OK: 0, STATUS_WARN: 1, STATUS_REGRESSION: 2}

#: Every category a finding can carry (the CLI's --ignore vocabulary).
DIFF_CATEGORIES = ("wall", "counter", "gauge", "campaign", "coverage",
                   "route-cache", "checkpoint", "memory", "serve")


@dataclass(frozen=True)
class DiffThresholds:
    """Classification knobs for :func:`diff_manifests`.

    Ratios are relative changes against the old value (``0.15`` = 15%
    slower/bigger); drops are absolute differences of values already in
    ``[0, 1]`` (coverage, hit rate). Wall and memory findings also need
    an absolute floor (``wall_min_seconds`` / ``memory_min_bytes``) so
    noise on tiny stages never gates a build.
    """

    wall_warn_ratio: float = 0.15
    wall_regression_ratio: float = 0.40
    wall_min_seconds: float = 0.05
    counter_warn_ratio: float = 0.01
    coverage_warn_drop: float = 0.005
    coverage_regression_drop: float = 0.05
    hit_rate_warn_drop: float = 0.02
    hit_rate_regression_drop: float = 0.10
    memory_warn_ratio: float = 0.15
    memory_regression_ratio: float = 0.50
    memory_min_bytes: int = 1 << 20
    reuse_warn_drop: float = 0.25
    # Serve section: shed/deadline fractions are absolute increases of
    # values in [0, 1]; latency quantiles are relative increases with a
    # milli-second floor so micro-benchmark jitter never gates.
    serve_shed_warn_increase: float = 0.02
    serve_shed_regression_increase: float = 0.10
    serve_latency_warn_ratio: float = 0.25
    serve_latency_regression_ratio: float = 1.00
    serve_latency_min_ms: float = 5.0

    def validate(self) -> None:
        """Reject impossible orderings (warn above regression, negatives)."""
        pairs = (("wall", self.wall_warn_ratio, self.wall_regression_ratio),
                 ("coverage", self.coverage_warn_drop,
                  self.coverage_regression_drop),
                 ("hit_rate", self.hit_rate_warn_drop,
                  self.hit_rate_regression_drop),
                 ("memory", self.memory_warn_ratio,
                  self.memory_regression_ratio),
                 ("serve_shed", self.serve_shed_warn_increase,
                  self.serve_shed_regression_increase),
                 ("serve_latency", self.serve_latency_warn_ratio,
                  self.serve_latency_regression_ratio))
        for name, warn, regression in pairs:
            if warn < 0 or regression < warn:
                raise ValidationError(
                    f"thresholds: need 0 <= {name} warn <= regression "
                    f"(got {warn} / {regression})")
        if self.wall_min_seconds < 0 or self.memory_min_bytes < 0 \
                or self.counter_warn_ratio < 0 or self.reuse_warn_drop < 0 \
                or self.serve_latency_min_ms < 0:
            raise ValidationError("thresholds must be non-negative")


@dataclass(frozen=True)
class DiffFinding:
    """One classified change between two runs.

    ``old``/``new`` are None when the metric exists on only one side
    (a stage that disappeared, a campaign that newly ran).
    """

    category: str
    metric: str
    status: str
    old: Optional[float]
    new: Optional[float]
    detail: str = ""

    @property
    def delta(self) -> Optional[float]:
        """``new - old`` when both sides exist."""
        if self.old is None or self.new is None:
            return None
        return self.new - self.old

    @property
    def ratio(self) -> Optional[float]:
        """Relative change against ``old`` (None when undefined)."""
        if self.old is None or self.new is None or self.old == 0:
            return None
        return (self.new - self.old) / self.old


@dataclass
class ManifestDiff:
    """Every classified finding between two comparable runs."""

    old_created_unix: float
    new_created_unix: float
    config_hash: str
    findings: List[DiffFinding] = field(default_factory=list)
    ignored_categories: Tuple[str, ...] = ()
    forced: bool = False
    incomparable_reasons: Tuple[str, ...] = ()

    @property
    def status(self) -> str:
        """The worst finding status (``ok`` when nothing changed)."""
        worst = STATUS_OK
        for finding in self.findings:
            if _STATUS_RANK[finding.status] > _STATUS_RANK[worst]:
                worst = finding.status
        return worst

    def regressions(self) -> List[DiffFinding]:
        """Findings classified as regressions."""
        return [f for f in self.findings
                if f.status == STATUS_REGRESSION]

    def warnings(self) -> List[DiffFinding]:
        """Findings classified as warnings."""
        return [f for f in self.findings if f.status == STATUS_WARN]

    def by_category(self) -> Dict[str, List[DiffFinding]]:
        """Findings grouped by category, insertion-ordered."""
        grouped: Dict[str, List[DiffFinding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.category, []).append(finding)
        return grouped

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the ``repro compare --json`` payload)."""
        return {
            "status": self.status,
            "config_hash": self.config_hash,
            "old_created_unix": self.old_created_unix,
            "new_created_unix": self.new_created_unix,
            "ignored_categories": list(self.ignored_categories),
            "forced": self.forced,
            "incomparable_reasons": list(self.incomparable_reasons),
            "findings": [dataclasses.asdict(f) for f in self.findings],
        }


# ---------------------------------------------------------------------------
# Comparability
# ---------------------------------------------------------------------------

def _fault_digest(manifest: RunManifest) -> Optional[str]:
    if manifest.fault_plan is None:
        return None
    return manifest.fault_plan.get("digest")


def comparability_errors(old: RunManifest,
                         new: RunManifest) -> List[str]:
    """Why these two runs must not be compared (empty when they may).

    Two runs are comparable iff their config digests match (which pins
    every scenario knob, the seed included), their fault-plan digests
    match (clean vs clean, or the same weather), and — when both record
    one — their scales match. Wall times of incomparable runs measure
    different work; diffing them produces confident nonsense, which is
    why :func:`diff_manifests` refuses without ``force=True``.
    """
    errors: List[str] = []
    if old.config_hash != new.config_hash:
        errors.append(f"config_hash differs ({old.config_hash} vs "
                      f"{new.config_hash})")
    if _fault_digest(old) != _fault_digest(new):
        errors.append(
            f"fault plans differ ({_fault_digest(old) or 'none'} vs "
            f"{_fault_digest(new) or 'none'})")
    if old.scale and new.scale and old.scale != new.scale:
        errors.append(f"scale differs ({old.scale} vs {new.scale})")
    return errors


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

def _classify_increase(ratio: Optional[float], delta: float,
                       warn_ratio: float, regression_ratio: float,
                       min_delta: float) -> str:
    """Severity of a bigger-is-worse metric increase."""
    if delta < min_delta:
        return STATUS_OK
    if ratio is None:
        # Appeared from zero: past the absolute floor, that is a warn.
        return STATUS_WARN
    if ratio >= regression_ratio:
        return STATUS_REGRESSION
    if ratio >= warn_ratio:
        return STATUS_WARN
    return STATUS_OK


def _classify_drop(drop: float, warn_drop: float,
                   regression_drop: float) -> str:
    """Severity of a smaller-is-worse metric drop (values in [0, 1])."""
    if drop >= regression_drop:
        return STATUS_REGRESSION
    if drop >= warn_drop:
        return STATUS_WARN
    return STATUS_OK


def _diff_wall(old: RunManifest, new: RunManifest, t: DiffThresholds,
               out: List[DiffFinding]) -> None:
    new_by_path = {s.path: s for s in new.stages}
    old_by_path = {s.path: s for s in old.stages}
    for path, stage in old_by_path.items():
        after = new_by_path.get(path)
        if after is None:
            out.append(DiffFinding(
                "wall", path, STATUS_WARN, stage.wall_s, None,
                "stage ran in the old build only"))
            continue
        delta = after.wall_s - stage.wall_s
        ratio = delta / stage.wall_s if stage.wall_s > 0 else None
        status = _classify_increase(ratio, delta, t.wall_warn_ratio,
                                    t.wall_regression_ratio,
                                    t.wall_min_seconds)
        if status == STATUS_OK and not (
                -delta >= t.wall_min_seconds and ratio is not None
                and -ratio >= t.wall_warn_ratio):
            continue        # unchanged within noise: not a finding
        detail = (f"{stage.wall_s:.3f}s -> {after.wall_s:.3f}s"
                  + ("" if ratio is None else f" ({ratio:+.0%})"))
        if status == STATUS_OK:
            detail += " (improved)"
        out.append(DiffFinding("wall", path, status, stage.wall_s,
                               after.wall_s, detail))
    for path, stage in new_by_path.items():
        if path not in old_by_path:
            out.append(DiffFinding(
                "wall", path, STATUS_WARN, None, stage.wall_s,
                "stage ran in the new build only"))


def _diff_numbers(category: str, old_values: Dict[str, float],
                  new_values: Dict[str, float], t: DiffThresholds,
                  out: List[DiffFinding]) -> None:
    """Counter/gauge drift: deterministic values, so changes matter.

    Memory gauges (``mem.*``) are classified by their own category and
    thresholds; ``faults.*.giveups``/``failures`` increases escalate to
    regressions because they are lost measurement units.
    """
    for name in sorted(set(old_values) | set(new_values)):
        before = old_values.get(name)
        after = new_values.get(name)
        if name.startswith("mem."):
            if name.endswith(".peak_bytes"):
                _diff_memory(name, before, after, t, out)
            continue
        if before == after:
            continue
        if before is None or after is None:
            out.append(DiffFinding(
                category, name, STATUS_WARN, before, after,
                "recorded in only one run"))
            continue
        ratio = ((after - before) / before) if before else None
        if ratio is not None and abs(ratio) < t.counter_warn_ratio:
            continue
        status = STATUS_WARN
        if after > before and name.startswith("faults.") and (
                name.endswith(".giveups") or name.endswith(".failures")):
            status = STATUS_REGRESSION
        detail = f"{before:g} -> {after:g}"
        if ratio is not None:
            detail += f" ({ratio:+.1%})"
        out.append(DiffFinding(category, name, status, before, after,
                               detail))


def _diff_memory(name: str, before: Optional[float],
                 after: Optional[float], t: DiffThresholds,
                 out: List[DiffFinding]) -> None:
    if before is None or after is None:
        # Profiling toggled between runs: informational only.
        out.append(DiffFinding("memory", name, STATUS_OK, before, after,
                               "memory profiling ran in only one run"))
        return
    delta = after - before
    ratio = delta / before if before > 0 else None
    status = _classify_increase(ratio, delta, t.memory_warn_ratio,
                                t.memory_regression_ratio,
                                float(t.memory_min_bytes))
    if status == STATUS_OK:
        return
    out.append(DiffFinding(
        "memory", name, status, before, after,
        f"{before / 2**20:.1f} MiB -> {after / 2**20:.1f} MiB"
        + ("" if ratio is None else f" ({ratio:+.0%})")))


def _diff_campaigns(old: RunManifest, new: RunManifest,
                    t: DiffThresholds, out: List[DiffFinding]) -> None:
    for name in sorted(set(old.campaigns) | set(new.campaigns)):
        before = old.campaigns.get(name)
        after = new.campaigns.get(name)
        if before is None or after is None:
            side = "new" if before is None else "old"
            record = after if before is None else before
            out.append(DiffFinding(
                "campaign", name, STATUS_WARN, None, None,
                f"campaign recorded in the {side} run only "
                f"(ran={record.ran})"))
            continue
        if before.ran and not after.ran:
            out.append(DiffFinding(
                "campaign", name, STATUS_REGRESSION, 1.0, 0.0,
                "campaign stopped running"))
            continue
        if after.failed and not before.failed:
            out.append(DiffFinding(
                "campaign", name, STATUS_REGRESSION, before.coverage,
                after.coverage,
                f"newly failed: {after.failure_reason or 'unknown'}"))
            continue
        if before.failed and not after.failed:
            out.append(DiffFinding(
                "campaign", name, STATUS_OK, before.coverage,
                after.coverage, "recovered from failure"))
            continue
        drop = before.coverage - after.coverage
        status = _classify_drop(drop, t.coverage_warn_drop,
                                t.coverage_regression_drop)
        if status == STATUS_OK and drop > -t.coverage_warn_drop:
            continue
        detail = f"coverage {before.coverage:.1%} -> {after.coverage:.1%}"
        if status == STATUS_OK:
            detail += " (improved)"
        out.append(DiffFinding("campaign", name, status, before.coverage,
                               after.coverage, detail))


def _diff_component_coverage(old: RunManifest, new: RunManifest,
                             t: DiffThresholds,
                             out: List[DiffFinding]) -> None:
    for component in sorted(set(old.coverage) | set(new.coverage)):
        before = old.coverage.get(component)
        after = new.coverage.get(component)
        if before is None or after is None:
            out.append(DiffFinding(
                "coverage", component, STATUS_WARN, None, None,
                "coverage recorded in only one run"))
            continue
        b_cov = float(before.get("coverage", 1.0))
        a_cov = float(after.get("coverage", 1.0))
        lost = (set(before.get("techniques_delivered", ()))
                - set(after.get("techniques_delivered", ())))
        drop = b_cov - a_cov
        status = _classify_drop(drop, t.coverage_warn_drop,
                                t.coverage_regression_drop)
        if lost:
            status = STATUS_REGRESSION
        if status == STATUS_OK and drop > -t.coverage_warn_drop:
            continue
        detail = f"coverage {b_cov:.1%} -> {a_cov:.1%}"
        if lost:
            detail += f"; lost techniques: {', '.join(sorted(lost))}"
        elif status == STATUS_OK:
            detail += " (improved)"
        out.append(DiffFinding("coverage", component, status, b_cov,
                               a_cov, detail))


def _diff_route_cache(old: RunManifest, new: RunManifest,
                      t: DiffThresholds, out: List[DiffFinding]) -> None:
    if old.route_cache is None or new.route_cache is None:
        if old.route_cache is not new.route_cache:
            out.append(DiffFinding(
                "route-cache", "route_cache", STATUS_WARN, None, None,
                "route-cache stats recorded in only one run"))
        return
    before = float(old.route_cache.get("hit_rate", 0.0))
    after = float(new.route_cache.get("hit_rate", 0.0))
    drop = before - after
    status = _classify_drop(drop, t.hit_rate_warn_drop,
                            t.hit_rate_regression_drop)
    if status == STATUS_OK and drop > -t.hit_rate_warn_drop:
        return
    detail = f"hit rate {before:.1%} -> {after:.1%}"
    if status == STATUS_OK:
        detail += " (improved)"
    out.append(DiffFinding("route-cache", "hit_rate", status, before,
                           after, detail))


def _reuse_ratio(manifest: RunManifest) -> Optional[float]:
    section = manifest.checkpoint
    if not section:
        return None
    total = int(section.get("stages_total", 0) or 0)
    if total <= 0:
        return None
    return len(section.get("stages_reused", [])) / total


def _diff_checkpoint(old: RunManifest, new: RunManifest,
                     t: DiffThresholds, out: List[DiffFinding]) -> None:
    before = _reuse_ratio(old)
    after = _reuse_ratio(new)
    if before is None or after is None:
        return      # at most one run was checkpointed: nothing to gate
    quarantined = len((new.checkpoint or {}).get("quarantined", []))
    if quarantined:
        out.append(DiffFinding(
            "checkpoint", "quarantined", STATUS_WARN, 0.0,
            float(quarantined),
            f"{quarantined} snapshot(s) failed verification"))
    drop = before - after
    if drop >= t.reuse_warn_drop:
        out.append(DiffFinding(
            "checkpoint", "reuse_ratio", STATUS_WARN, before, after,
            f"snapshot reuse {before:.0%} -> {after:.0%}"))


def _serve_fraction(section: Dict[str, object], numerator: str,
                    denominator: str) -> float:
    admit = section.get("admit", {}) or {}
    total = float(admit.get(denominator, 0) or 0)
    return float(admit.get(numerator, 0) or 0) / total if total else 0.0


#: Serve incident counters: (subsection, field, severity when increased).
_SERVE_INCIDENT_FIELDS = (
    ("http", "timeouts", STATUS_WARN),
    ("http", "client_disconnects", STATUS_WARN),
    ("watch", "errors", STATUS_WARN),
    ("watch", "circuit_open", STATUS_REGRESSION),
    ("watch", "circuit_close", STATUS_WARN),
)


def _diff_serve(old: RunManifest, new: RunManifest, t: DiffThresholds,
                out: List[DiffFinding]) -> None:
    """Serving-path drift between two served runs.

    Both runs replay the same seeded load (comparability pins the
    config digest), so the gate arithmetic, incident counters, chaos
    schedule and latency histograms are all expected to hold still;
    the thresholds say how much movement is weather and how much is a
    serving regression.
    """
    if old.serve is None and new.serve is None:
        return
    if old.serve is None or new.serve is None:
        side = "new" if old.serve is None else "old"
        out.append(DiffFinding(
            "serve", "serve", STATUS_WARN, None, None,
            f"serve section recorded in the {side} run only"))
        return
    before, after = old.serve, new.serve
    # Shed fraction of offered, deadline fraction of admitted: the two
    # gate ratios an operator actually watches.
    for metric, numerator, denominator in (
            ("admit.shed_fraction", "shed", "offered"),
            ("admit.deadline_fraction", "deadline_expired", "admitted")):
        b = _serve_fraction(before, numerator, denominator)
        a = _serve_fraction(after, numerator, denominator)
        increase = a - b
        if increase >= t.serve_shed_regression_increase:
            status = STATUS_REGRESSION
        elif increase >= t.serve_shed_warn_increase:
            status = STATUS_WARN
        elif -increase >= t.serve_shed_warn_increase:
            status = STATUS_OK         # reported, flagged as improved
        else:
            continue
        detail = f"{b:.1%} -> {a:.1%}"
        if status == STATUS_OK:
            detail += " (improved)"
        out.append(DiffFinding("serve", metric, status, b, a, detail))
    for sub, name, severity in _SERVE_INCIDENT_FIELDS:
        b = int((before.get(sub, {}) or {}).get(name, 0) or 0)
        a = int((after.get(sub, {}) or {}).get(name, 0) or 0)
        if a == b:
            continue
        status = severity if a > b else STATUS_OK
        detail = f"{b} -> {a}"
        if status == STATUS_OK:
            detail += " (improved)"
        out.append(DiffFinding("serve", f"{sub}.{name}", status,
                               float(b), float(a), detail))
    # Chaos schedules are seeded: any per-kind drift between comparable
    # runs means the injection schedule itself changed.
    old_chaos = before.get("chaos", {}) or {}
    new_chaos = after.get("chaos", {}) or {}
    for kind in sorted(set(old_chaos) | set(new_chaos)):
        b = int(old_chaos.get(kind, 0) or 0)
        a = int(new_chaos.get(kind, 0) or 0)
        if a != b:
            out.append(DiffFinding(
                "serve", f"chaos.{kind}", STATUS_WARN, float(b),
                float(a), f"seeded injection count drifted: {b} -> {a}"))
    _diff_serve_latency(before, after, t, out)


def _diff_serve_latency(before: Dict[str, object],
                        after: Dict[str, object], t: DiffThresholds,
                        out: List[DiffFinding]) -> None:
    def rows(section: Dict[str, object]) -> Dict[str, Dict[str, object]]:
        latency = section.get("latency") or {}
        flat: Dict[str, Dict[str, object]] = {}
        total = latency.get("total")
        if isinstance(total, dict):
            flat["total"] = total
        for endpoint, outcomes in (latency.get("endpoints") or {}).items():
            for outcome, summary in (outcomes or {}).items():
                if isinstance(summary, dict):
                    flat[f"{endpoint}.{outcome}"] = summary
        return flat

    old_rows = rows(before)
    new_rows = rows(after)
    if not old_rows and not new_rows:
        return
    if bool(old_rows) != bool(new_rows):
        side = "new" if not old_rows else "old"
        out.append(DiffFinding(
            "serve", "latency", STATUS_WARN, None, None,
            f"latency histograms recorded in the {side} run only "
            "(format 4 vs format 5?)"))
        return
    for row in sorted(set(old_rows) & set(new_rows)):
        for quantile in ("p50_ms", "p99_ms"):
            b = float(old_rows[row].get(quantile, 0.0) or 0.0)
            a = float(new_rows[row].get(quantile, 0.0) or 0.0)
            delta = a - b
            ratio = delta / b if b > 0 else None
            status = _classify_increase(ratio, delta,
                                        t.serve_latency_warn_ratio,
                                        t.serve_latency_regression_ratio,
                                        t.serve_latency_min_ms)
            if status == STATUS_OK and not (
                    -delta >= t.serve_latency_min_ms and ratio is not None
                    and -ratio >= t.serve_latency_warn_ratio):
                continue
            detail = (f"{b:.1f} ms -> {a:.1f} ms"
                      + ("" if ratio is None else f" ({ratio:+.0%})"))
            if status == STATUS_OK:
                detail += " (improved)"
            out.append(DiffFinding("serve", f"latency.{row}.{quantile}",
                                   status, b, a, detail))


def diff_manifests(old: RunManifest, new: RunManifest,
                   thresholds: Optional[DiffThresholds] = None, *,
                   force: bool = False,
                   ignore: Iterable[str] = ()) -> ManifestDiff:
    """Classify every change from ``old`` to ``new``.

    Raises :class:`ValidationError` when the runs are incomparable
    (different config / fault-plan digests) unless ``force=True``, in
    which case the reasons are carried on the returned diff instead.
    ``ignore`` drops whole finding categories (members of
    :data:`DIFF_CATEGORIES`) before classification — e.g. ``("wall",)``
    for cross-machine comparisons where absolute times mean nothing.
    """
    t = thresholds or DiffThresholds()
    t.validate()
    ignored = tuple(ignore)
    unknown = set(ignored) - set(DIFF_CATEGORIES)
    if unknown:
        raise ValidationError(
            f"unknown diff categories {sorted(unknown)}; expected a "
            f"subset of {DIFF_CATEGORIES}")
    reasons = comparability_errors(old, new)
    if reasons and not force:
        raise ValidationError(
            "manifests are not comparable: " + "; ".join(reasons)
            + " (pass force=True / --force to compare anyway)")

    findings: List[DiffFinding] = []
    if "wall" not in ignored:
        _diff_wall(old, new, t, findings)
    if "counter" not in ignored:
        _diff_numbers("counter", old.counters, new.counters, t, findings)
    gauge_findings: List[DiffFinding] = []
    _diff_numbers("gauge", old.gauges, new.gauges, t, gauge_findings)
    findings.extend(
        f for f in gauge_findings
        if (f.category == "memory" and "memory" not in ignored)
        or (f.category == "gauge" and "gauge" not in ignored))
    if "campaign" not in ignored:
        _diff_campaigns(old, new, t, findings)
    if "coverage" not in ignored:
        _diff_component_coverage(old, new, t, findings)
    if "route-cache" not in ignored:
        _diff_route_cache(old, new, t, findings)
    if "checkpoint" not in ignored:
        _diff_checkpoint(old, new, t, findings)
    if "serve" not in ignored:
        _diff_serve(old, new, t, findings)

    return ManifestDiff(
        old_created_unix=old.created_unix,
        new_created_unix=new.created_unix,
        config_hash=new.config_hash,
        findings=findings,
        ignored_categories=ignored,
        forced=bool(reasons),
        incomparable_reasons=tuple(reasons))
