"""Append-only run-history registry: the time series of build manifests.

Longitudinal measurement platforms (RIPE Atlas, the hypergiant off-net
tracking of Gigis et al.) live on their time series — a single
:class:`repro.obs.RunManifest` says what one build did, but the *drift*
between builds is where the findings are. A :class:`RunHistory` is a
JSONL file of schema-validated manifests, one entry per line, keyed by
the digests that decide comparability (config, fault plan, builder
options), so ``python -m repro compare`` and CI gates can pull any two
comparable runs out of it.

Durability discipline (shared with :mod:`repro.ckpt`): every append
rewrites the registry through a same-directory temp file with
``fsync`` + ``os.replace``, under an exclusive ``flock`` on a sidecar
lock file, so a crash mid-append leaves the previous registry intact
and concurrent appends serialize instead of clobbering each other. The
reader side is tolerant by construction: unparseable lines (e.g. a torn
append from a pre-lock writer) are skipped and reported, never fatal —
losing one entry is acceptable, losing the registry is not.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ValidationError
from .manifest import RunManifest, validate_manifest

try:                                    # POSIX only; harmless to miss.
    import fcntl
except ImportError:                     # pragma: no cover - non-POSIX
    fcntl = None

#: Entry envelope schema; bump on incompatible layout change.
HISTORY_SCHEMA_VERSION = 1

#: Default registry filename (the CLI's --history default).
DEFAULT_HISTORY_PATH = "run-history.jsonl"


@dataclass(frozen=True)
class RunKey:
    """The digests that decide whether two runs are comparable.

    ``fault_plan`` and ``options`` are None when unknown (a clean build,
    or a manifest recorded from a file without the builder at hand); two
    keys compare equal field-by-field, None included — an unknown
    options digest is only comparable with another unknown one.
    """

    config: str
    fault_plan: Optional[str] = None
    options: Optional[str] = None

    def describe(self) -> str:
        """Compact ``config/fault/options`` rendering for listings."""
        return (f"{self.config}/{self.fault_plan or '-'}"
                f"/{self.options or '-'}")


@dataclass(frozen=True)
class HistoryEntry:
    """One recorded run: envelope metadata plus the manifest payload."""

    index: int
    recorded_unix: float
    key: RunKey
    manifest: Dict[str, object]
    label: Optional[str] = None

    def load_manifest(self) -> RunManifest:
        """The entry's manifest as a validated :class:`RunManifest`."""
        return RunManifest.from_dict(self.manifest)


def run_key_of(manifest: Union[RunManifest, Dict[str, object]],
               options_digest: Optional[str] = None) -> RunKey:
    """The comparability key a manifest implies.

    ``options_digest`` comes from the builder when recording in-process
    (:func:`repro.obs.manifest.options_digest`); it stays None when a
    manifest is recorded from a file.
    """
    if isinstance(manifest, RunManifest):
        payload = manifest.to_dict()
    else:
        payload = manifest
    fault_plan = payload.get("fault_plan") or None
    fault_digest = fault_plan.get("digest") if fault_plan else None
    return RunKey(config=str(payload["config_hash"]),
                  fault_plan=fault_digest, options=options_digest)


class RunHistory:
    """An append-only JSONL registry of run manifests.

    ``RunHistory(path)`` never touches the filesystem until the first
    :meth:`record`; a missing file reads as an empty registry.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    # -- locking ----------------------------------------------------------

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock serializing appenders (POSIX flock).

        Each call opens its own descriptor, so concurrent threads of one
        process serialize exactly like separate processes do. On
        platforms without ``fcntl`` the lock degrades to a no-op; the
        temp+rename append then still cannot corrupt the registry, it
        can only lose the race's earlier entry.
        """
        if fcntl is None:               # pragma: no cover - non-POSIX
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- read -------------------------------------------------------------

    def scan(self) -> Tuple[List[HistoryEntry], List[int]]:
        """All readable entries plus the 1-based numbers of bad lines.

        A line is bad when it fails to parse, has the wrong envelope
        schema, or carries a manifest that fails
        :func:`validate_manifest` — e.g. the torn tail of an append that
        died before this registry's locking discipline existed. Bad
        lines are preserved on disk (the registry is append-only) but
        never surface as entries.
        """
        if not self.path.exists():
            return [], []
        entries: List[HistoryEntry] = []
        bad: List[int] = []
        with open(self.path) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if not isinstance(payload, dict) or \
                            payload.get("schema") != HISTORY_SCHEMA_VERSION:
                        raise ValidationError("bad envelope")
                    manifest = payload["manifest"]
                    validate_manifest(manifest)
                    key_fields = payload.get("key", {})
                    key = RunKey(
                        config=str(key_fields["config"]),
                        fault_plan=key_fields.get("fault_plan"),
                        options=key_fields.get("options"))
                except (ValidationError, KeyError, TypeError,
                        json.JSONDecodeError):
                    bad.append(lineno)
                    continue
                entries.append(HistoryEntry(
                    index=len(entries),
                    recorded_unix=float(payload.get("recorded_unix", 0.0)),
                    key=key,
                    manifest=manifest,
                    label=payload.get("label")))
        return entries, bad

    def entries(self) -> List[HistoryEntry]:
        """All readable entries, oldest first (bad lines skipped)."""
        return self.scan()[0]

    def __len__(self) -> int:
        return len(self.entries())

    def get(self, index: int) -> HistoryEntry:
        """Entry by listing index (negative indexes count from the end)."""
        entries = self.entries()
        try:
            return entries[index]
        except IndexError:
            raise ValidationError(
                f"history {self.path} has {len(entries)} entries; "
                f"no entry {index}") from None

    def latest(self, key: Optional[RunKey] = None
               ) -> Optional[HistoryEntry]:
        """The newest entry (optionally: newest with a matching key)."""
        for entry in reversed(self.entries()):
            if key is None or entry.key == key:
                return entry
        return None

    def comparable_runs(self, key: RunKey) -> List[HistoryEntry]:
        """Every entry sharing a comparability key, oldest first."""
        return [e for e in self.entries() if e.key == key]

    # -- append -----------------------------------------------------------

    def record(self, manifest: Union[RunManifest, Dict[str, object]], *,
               options_digest: Optional[str] = None,
               label: Optional[str] = None,
               require_same_key: bool = False) -> HistoryEntry:
        """Validate and atomically append one run; returns its entry.

        Raises :class:`ValidationError` when the manifest fails schema
        validation (an invalid manifest is never persisted), or — with
        ``require_same_key`` — when the registry already holds runs
        whose digests make this one incomparable with the latest entry.
        """
        payload = (manifest.to_dict() if isinstance(manifest, RunManifest)
                   else manifest)
        validate_manifest(payload)
        key = run_key_of(payload, options_digest)
        envelope = {
            "schema": HISTORY_SCHEMA_VERSION,
            "recorded_unix": time.time(),
            "label": label,
            "key": {"config": key.config, "fault_plan": key.fault_plan,
                    "options": key.options},
            "manifest": payload,
        }
        line = json.dumps(envelope, sort_keys=True,
                          separators=(",", ":"))
        with self._locked():
            entries = self.entries()
            if require_same_key and entries \
                    and entries[-1].key != key:
                raise ValidationError(
                    f"run is not comparable with the registry's latest "
                    f"entry: {key.describe()} vs "
                    f"{entries[-1].key.describe()}")
            self._append_line(line)
            return HistoryEntry(
                index=len(entries),
                recorded_unix=float(envelope["recorded_unix"]),
                key=key, manifest=payload, label=label)

    def _append_line(self, line: str) -> None:
        """Temp + fsync + rename append (the repro.ckpt discipline).

        The whole registry (existing bytes verbatim, bad lines included,
        plus the new line) lands in a same-directory temp file which
        replaces the original only after an fsync — an interrupted
        append therefore leaves the previous registry byte-identical,
        never truncated or half-written.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = b""
        if self.path.exists():
            existing = self.path.read_bytes()
            if existing and not existing.endswith(b"\n"):
                existing += b"\n"
        tmp = self.path.with_name("." + self.path.name + ".tmp")
        try:
            with open(tmp, "wb") as handle:
                handle.write(existing)
                handle.write(line.encode())
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise ValidationError(
                f"cannot append to run history {self.path}: {exc}") \
                from None
