"""Per-run manifests: what a build did, machine-readable.

A :class:`RunManifest` is the provenance record written next to a map
(``python -m repro --metrics out.json``): which config (by hash) and seed
produced it, under which fault plan, how long each stage took, what every
campaign sent/dropped/retried, how the route cache behaved, and what
coverage each map component ended up with. It is plain JSON — no
dependencies beyond the standard library — so dashboards, CI checks and
benchmark harnesses can consume it without importing the package.

Schema (``format_version`` 5), field by field, is documented in
``docs/observability.md``; :func:`validate_manifest` enforces it and the
counter invariants (e.g. per campaign ``units == delivered + giveups``,
for checkpointed runs ``reused + recomputed == total`` stages, and for
served runs ``offered == admitted + shed`` at the admission gate).
Format 1 (pre-checkpointing), format 2 (pre-delta), format 3
(pre-serving) and format 4 (pre-live-telemetry) manifests are still
accepted; the optional ``checkpoint`` lineage section needs format 2+,
the optional ``delta`` lineage section (incremental builds,
``docs/delta.md``) format 3+, the optional ``serve`` section
(query-service resilience counters, ``docs/serving.md``) format 4+,
and its ``serve.latency`` histogram summaries (live telemetry,
``repro.obs.live``) format 5.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ValidationError
from .recorder import Recorder, StageTiming

FORMAT_VERSION = 5

# Format 1 predates the checkpoint-lineage section, format 2 the delta
# section, format 3 the serve section, format 4 the serve.latency
# histogram summaries; all remain readable. Writers always emit
# FORMAT_VERSION.
SUPPORTED_FORMAT_VERSIONS = (1, 2, 3, 4, FORMAT_VERSION)

# The eleven measurement campaigns of repro.measure, by their canonical
# names. Kept as literals (not imports) so the manifest layer stays
# import-light and cycle-free; tests/test_obs.py cross-checks these
# against the *_CAMPAIGN constants in the campaign modules.
KNOWN_CAMPAIGNS = (
    "cache-probing",
    "root-logs",
    "tls-scan",
    "sni-scan",
    "ecs-mapping",
    "catchment-probing",
    "atlas-platform",
    "cloud-vantage",
    "ipid-monitoring",
    "resolver-association",
    "reverse-traceroute",
)

_CAMPAIGN_COUNTER_FIELDS = ("units", "attempts", "drops", "retries",
                            "giveups", "delivered")


@dataclass
class CampaignRecord:
    """One campaign's row in the manifest.

    Counter semantics match :class:`repro.faults.FaultCounters`:
    ``delivered = units - giveups`` and ``coverage = delivered / units``
    (1.0 when no units were at risk). ``wall_s`` is None when the
    campaign never opened a span this run.
    """

    ran: bool = False
    failed: bool = False
    failure_reason: Optional[str] = None
    units: int = 0
    attempts: int = 0
    drops: int = 0
    retries: int = 0
    giveups: int = 0
    delivered: int = 0
    backoff_s: float = 0.0
    coverage: float = 1.0
    wall_s: Optional[float] = None


@dataclass
class RunManifest:
    """The serializable provenance record of one instrumented run."""

    seed: int
    config_hash: str
    format_version: int = FORMAT_VERSION
    created_unix: float = 0.0
    command: Optional[str] = None
    scale: Optional[str] = None
    fault_plan: Optional[Dict[str, object]] = None
    stages: List[StageTiming] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    campaigns: Dict[str, CampaignRecord] = field(default_factory=dict)
    route_cache: Optional[Dict[str, float]] = None
    coverage: Dict[str, Dict[str, object]] = field(default_factory=dict)
    # Checkpoint lineage (format 2+, checkpointed runs only): where the
    # run resumed from, which stages were reused vs recomputed, and any
    # snapshots that failed verification and were quarantined.
    checkpoint: Optional[Dict[str, object]] = None
    # Delta lineage (format 3+, delta builds only): the mutation plan's
    # digest/kinds/aspects and the per-stage input digests that decided
    # which snapshots were reused (see repro.delta and docs/delta.md).
    delta: Optional[Dict[str, object]] = None
    # Serving-path resilience counters (format 4, served runs only):
    # admission gate outcomes, HTTP-transport aborts, watcher circuit
    # transitions and chaos injections (see repro.serve.resilience and
    # docs/serving.md).
    serve: Optional[Dict[str, object]] = None

    # -- lookups ----------------------------------------------------------

    def stage(self, name: str) -> Optional[StageTiming]:
        """A stage by span label or full dotted path (None if absent)."""
        for timing in self.stages:
            if timing.name == name or timing.path == name:
                return timing
        return None

    def campaign(self, name: str) -> CampaignRecord:
        try:
            return self.campaigns[name]
        except KeyError:
            raise ValidationError(
                f"manifest has no campaign {name!r}") from None

    def campaigns_ran(self) -> List[str]:
        return sorted(n for n, rec in self.campaigns.items() if rec.ran)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["stages"] = [dataclasses.asdict(s) for s in self.stages]
        payload["campaigns"] = {
            name: dataclasses.asdict(rec)
            for name, rec in self.campaigns.items()}
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunManifest":
        validate_manifest(payload)
        stages = [StageTiming(path=s["path"], name=s["name"],
                              calls=int(s["calls"]),
                              wall_s=float(s["wall_s"]))
                  for s in payload["stages"]]
        campaigns = {
            name: CampaignRecord(**rec)
            for name, rec in payload["campaigns"].items()}
        return cls(
            seed=int(payload["seed"]),
            config_hash=str(payload["config_hash"]),
            format_version=int(payload["format_version"]),
            created_unix=float(payload.get("created_unix", 0.0)),
            command=payload.get("command"),
            scale=payload.get("scale"),
            fault_plan=payload.get("fault_plan"),
            stages=stages,
            counters=dict(payload.get("counters", {})),
            gauges=dict(payload.get("gauges", {})),
            campaigns=campaigns,
            route_cache=payload.get("route_cache"),
            coverage=dict(payload.get("coverage", {})),
            checkpoint=payload.get("checkpoint"),
            delta=payload.get("delta"),
            serve=payload.get("serve"))

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path) as handle:
            return cls.from_json(handle.read())


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------

def config_digest(config) -> str:
    """Stable hash of a :class:`ScenarioConfig` (sub-configs included).

    Two runs share a ``config_hash`` iff every knob matched, which is
    what makes manifests comparable across machines and sessions.
    """
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def fault_plan_digest(plan) -> str:
    """Stable hash of a :class:`FaultPlan` (rates, seed and retry).

    ``crash_at`` is deliberately *excluded*: a crash schedule changes
    where a build dies, never what any completed stage computed, so a
    supervisor re-run (crash armed) may reuse snapshots written by —
    and comparable with — an uninterrupted build of the same weather.
    """
    fields = dataclasses.asdict(plan)
    fields.pop("crash_at", None)
    payload = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def options_digest(options) -> str:
    """Stable hash of a :class:`repro.core.builder.BuilderOptions`.

    Joins ``config_digest``/``fault_plan_digest`` in checkpoint snapshot
    envelopes: a snapshot written under different technique selections or
    budgets must not satisfy a resume.

    ``profile_memory`` is deliberately *excluded* (mirroring how
    ``crash_at`` is excluded from :func:`fault_plan_digest`): memory
    profiling observes allocations without changing any stage's output,
    so profiled and unprofiled builds of the same options may share
    snapshots and are comparable in the run-history registry.
    ``workers`` is excluded for the same reason: parallel execution is
    regression-locked bit-identical to serial, so builds at different
    worker counts share snapshots and compare cleanly.
    """
    fields = dataclasses.asdict(options)
    fields.pop("profile_memory", None)
    fields.pop("workers", None)
    payload = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------

def collect_manifest(recorder: Recorder, config, *, faults=None,
                     cache_stats=None, itm=None, checkpoint=None,
                     delta=None, serve=None,
                     command: Optional[str] = None,
                     scale: Optional[str] = None) -> RunManifest:
    """Fold a run's recorder, fault context and map into one manifest.

    ``faults`` is an optional :class:`repro.faults.FaultContext`;
    ``cache_stats`` an optional :class:`repro.net.routing.CacheStats`;
    ``itm`` an optional built :class:`InternetTrafficMap` (its coverage
    report becomes the manifest's ``coverage`` section); ``checkpoint``
    an optional :class:`repro.ckpt.CheckpointLineage` (or its dict form)
    for checkpointed builds; ``delta`` the delta-lineage dict of an
    incremental build (``MapBuilder._delta_lineage``); ``serve`` the
    serving-path counter section a ``repro serve`` run assembles via
    :func:`repro.serve.resilience.serve_manifest_section`. All are
    duck-typed so this module imports nothing above ``repro.errors``.
    """
    manifest = RunManifest(
        seed=int(config.seed),
        config_hash=config_digest(config),
        created_unix=time.time(),
        command=command,
        scale=scale,
        stages=recorder.spans(),
        counters=dict(recorder.counters),
        gauges=dict(recorder.gauges))

    scopes = {}
    if faults is not None:
        scopes = faults.scopes()
        if not faults.is_null:
            plan = faults.plan
            manifest.fault_plan = {
                "describe": plan.describe(),
                "seed": int(plan.seed),
                "digest": fault_plan_digest(plan),
                "retry_attempts": int(faults.retry.max_attempts),
                "backoff_base_s": float(faults.retry.backoff_base_s),
            }

    for name in list(KNOWN_CAMPAIGNS) + sorted(
            set(scopes) - set(KNOWN_CAMPAIGNS)):
        stage = recorder.stage(f"measure.{name}")
        scope = scopes.get(name)
        record = CampaignRecord(
            ran=stage is not None,
            wall_s=None if stage is None else stage.wall_s)
        if scope is not None:
            counters = scope.counters
            record.ran = record.ran or counters.units > 0 or scope.failed
            record.failed = scope.failed
            record.failure_reason = scope.failure_reason
            record.units = counters.units
            record.attempts = counters.attempts
            record.drops = counters.drops
            record.retries = counters.retries
            record.giveups = counters.giveups
            record.delivered = counters.delivered
            record.backoff_s = counters.backoff_s
            record.coverage = scope.coverage
        manifest.campaigns[name] = record

    if cache_stats is not None:
        manifest.route_cache = {
            "entries": int(cache_stats.entries),
            "max_entries": int(cache_stats.max_entries),
            "hits": int(cache_stats.hits),
            "misses": int(cache_stats.misses),
            "evictions": int(cache_stats.evictions),
            "hit_rate": float(cache_stats.hit_rate),
        }

    if itm is not None:
        for component, cov in itm.coverage.items():
            manifest.coverage[component] = {
                "coverage": float(cov.coverage),
                "techniques_intended": list(cov.techniques_intended),
                "techniques_delivered": list(cov.techniques_delivered),
                "notes": list(cov.notes),
            }

    if checkpoint is not None:
        manifest.checkpoint = (checkpoint if isinstance(checkpoint, dict)
                               else checkpoint.to_dict())
    if delta is not None:
        manifest.delta = dict(delta)
    if serve is not None:
        manifest.serve = dict(serve)
    return manifest


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def _check(errors: List[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


def _validate_checkpoint(errors: List[str],
                         section: Dict[str, object]) -> None:
    """Schema + invariants of the checkpoint-lineage section."""
    if not isinstance(section, dict):
        errors.append("checkpoint must be an object or null")
        return
    _check(errors, isinstance(section.get("checkpoint_dir"), str),
           "checkpoint.checkpoint_dir must be a string")
    _check(errors, isinstance(section.get("resumed"), bool),
           "checkpoint.resumed must be a boolean")
    total = section.get("stages_total")
    _check(errors, isinstance(total, int) and total >= 0,
           "checkpoint.stages_total must be a non-negative integer")
    lists: Dict[str, List[object]] = {}
    for key in ("stages_reused", "stages_recomputed"):
        value = section.get(key)
        if not isinstance(value, list) or not all(
                isinstance(s, str) for s in value):
            errors.append(f"checkpoint.{key} must be a list of stage "
                          "names")
            continue
        lists[key] = value
    if len(lists) == 2 and isinstance(total, int):
        reused, recomputed = (lists["stages_reused"],
                              lists["stages_recomputed"])
        # Name the stage lists, not just their lengths: when a lineage
        # is inconsistent the reader needs to see *which* stages were
        # claimed on each side to find the double-counted or dropped one.
        _check(errors, len(reused) + len(recomputed) == total,
               "checkpoint: reused + recomputed != stages_total "
               f"({len(reused)} + {len(recomputed)} != {total}; "
               f"stages_reused={reused!r}, "
               f"stages_recomputed={recomputed!r})")
        overlap = sorted(set(reused) & set(recomputed))
        _check(errors, not overlap,
               "checkpoint: stages cannot be both reused and recomputed: "
               f"{overlap!r}")
    quarantined = section.get("quarantined", [])
    if not isinstance(quarantined, list):
        errors.append("checkpoint.quarantined must be a list")
        return
    for i, entry in enumerate(quarantined):
        if not isinstance(entry, dict):
            errors.append(f"checkpoint.quarantined[{i}] must be an object")
            continue
        _check(errors, isinstance(entry.get("stage"), str)
               and isinstance(entry.get("reason"), str),
               f"checkpoint.quarantined[{i}] needs string stage/reason")


def _validate_delta(errors: List[str],
                    section: Dict[str, object]) -> None:
    """Schema + invariants of the delta-lineage section (format 3)."""
    if not isinstance(section, dict):
        errors.append("delta must be an object or null")
        return
    digest = section.get("mutation_digest")
    _check(errors, isinstance(digest, str) and len(digest) >= 8,
           "delta.mutation_digest must be a hex string")
    count = section.get("mutation_count")
    _check(errors, isinstance(count, int) and count >= 0,
           "delta.mutation_count must be a non-negative integer")
    for key in ("kinds", "aspects", "stages_reused",
                "stages_recomputed"):
        value = section.get(key)
        _check(errors, isinstance(value, list) and all(
                   isinstance(s, str) for s in value),
               f"delta.{key} must be a list of strings")
    reused = section.get("stages_reused")
    recomputed = section.get("stages_recomputed")
    if isinstance(reused, list) and isinstance(recomputed, list):
        overlap = sorted(set(reused) & set(recomputed))
        _check(errors, not overlap,
               "delta: stages cannot be both reused and recomputed: "
               f"{overlap!r}")
    digests = section.get("input_digests")
    if not isinstance(digests, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in digests.items()):
        errors.append("delta.input_digests must map stage names to "
                      "digests")


_SERVE_SECTION_FIELDS = {
    "admit": ("offered", "admitted", "shed", "deadline_expired"),
    "http": ("timeouts", "client_disconnects"),
    "watch": ("errors", "circuit_open", "circuit_close"),
}


def _validate_serve(errors: List[str],
                    section: Dict[str, object]) -> None:
    """Schema + invariants of the serve section (format ≥ 4)."""
    if not isinstance(section, dict):
        errors.append("serve must be an object or null")
        return
    for name, fields in _SERVE_SECTION_FIELDS.items():
        sub = section.get(name)
        if not isinstance(sub, dict):
            errors.append(f"serve.{name} must be an object")
            continue
        for field_name in fields:
            value = sub.get(field_name)
            _check(errors, isinstance(value, int) and value >= 0,
                   f"serve.{name}.{field_name} must be a non-negative "
                   "integer")
    admit = section.get("admit")
    if isinstance(admit, dict) and all(
            isinstance(admit.get(f), int)
            for f in _SERVE_SECTION_FIELDS["admit"]):
        _check(errors,
               admit["offered"] == admit["admitted"] + admit["shed"],
               "serve.admit: offered != admitted + shed "
               f"({admit['offered']} != {admit['admitted']} + "
               f"{admit['shed']})")
        _check(errors, admit["deadline_expired"] <= admit["admitted"],
               "serve.admit: deadline_expired exceeds admitted")
    chaos = section.get("chaos")
    if chaos is not None and (not isinstance(chaos, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v >= 0
            for k, v in chaos.items())):
        errors.append("serve.chaos must map fault kinds to non-negative "
                      "integers")
    latency = section.get("latency")
    if latency is not None:
        _validate_serve_latency(errors, latency)


_LATENCY_SUMMARY_FIELDS = ("count", "p50_ms", "p99_ms", "mean_ms",
                           "max_ms")


def _validate_latency_summary(errors: List[str], prefix: str,
                              summary: object) -> Optional[int]:
    """One histogram summary; returns its count when well-formed."""
    if not isinstance(summary, dict):
        errors.append(f"{prefix} must be an object")
        return None
    ok = True
    for name in _LATENCY_SUMMARY_FIELDS:
        value = summary.get(name)
        if name == "count":
            good = isinstance(value, int) and value >= 0
        else:
            good = (isinstance(value, (int, float))
                    and not isinstance(value, bool) and value >= 0)
        if not good:
            errors.append(f"{prefix}.{name} must be a non-negative "
                          f"{'integer' if name == 'count' else 'number'}")
            ok = False
    if ok:
        _check(errors, summary["p50_ms"] <= summary["p99_ms"],
               f"{prefix}: p50_ms exceeds p99_ms")
        _check(errors, summary["p99_ms"] <= summary["max_ms"] or
               summary["count"] == 0,
               f"{prefix}: p99_ms exceeds max_ms")
    return summary.get("count") if ok else None


def _validate_serve_latency(errors: List[str], latency: object) -> None:
    """Schema + invariants of serve.latency (format 5, live telemetry).

    Shape: ``{"unit": "ms", "total": summary, "endpoints": {endpoint:
    {outcome: summary}}}``; the per-(endpoint, outcome) counts must sum
    to the total count, because every summary derives from the same
    exact-count histograms (:class:`repro.obs.live.Histogram`).
    """
    if not isinstance(latency, dict):
        errors.append("serve.latency must be an object or null")
        return
    _check(errors, latency.get("unit") == "ms",
           "serve.latency.unit must be 'ms'")
    total = _validate_latency_summary(errors, "serve.latency.total",
                                      latency.get("total"))
    endpoints = latency.get("endpoints")
    if not isinstance(endpoints, dict):
        errors.append("serve.latency.endpoints must be an object")
        return
    summed = 0
    complete = total is not None
    for endpoint, outcomes in endpoints.items():
        if not isinstance(outcomes, dict) or not outcomes:
            errors.append(f"serve.latency.endpoints.{endpoint} must be "
                          "a non-empty object of outcome summaries")
            complete = False
            continue
        for outcome, summary in outcomes.items():
            count = _validate_latency_summary(
                errors, f"serve.latency.endpoints.{endpoint}.{outcome}",
                summary)
            if count is None:
                complete = False
            else:
                summed += count
    if complete:
        _check(errors, summed == total,
               "serve.latency: endpoint-outcome counts sum to "
               f"{summed}, total.count is {total}")


def validate_manifest(payload: Dict[str, object]) -> None:
    """Check a manifest dict against the format-1..5 schema.

    Raises :class:`ValidationError` listing every violation found:
    missing/ill-typed fields, malformed stage entries, broken counter
    invariants (``units == delivered + giveups``, coverages outside
    ``[0, 1]``), and — for format 2 — an inconsistent checkpoint-lineage
    section (``reused + recomputed != stages_total``).
    """
    errors: List[str] = []
    _check(errors, isinstance(payload, dict), "manifest must be an object")
    if errors:
        raise ValidationError("; ".join(errors))

    version = payload.get("format_version")
    _check(errors, version in SUPPORTED_FORMAT_VERSIONS,
           f"format_version must be one of {SUPPORTED_FORMAT_VERSIONS}")
    _check(errors, isinstance(payload.get("seed"), int),
           "seed must be an integer")
    config_hash = payload.get("config_hash")
    _check(errors, isinstance(config_hash, str) and len(config_hash) >= 8,
           "config_hash must be a hex string")

    stages = payload.get("stages")
    if not isinstance(stages, list):
        errors.append("stages must be a list")
    else:
        for i, stage in enumerate(stages):
            if not isinstance(stage, dict):
                errors.append(f"stages[{i}] must be an object")
                continue
            _check(errors, isinstance(stage.get("path"), str)
                   and isinstance(stage.get("name"), str),
                   f"stages[{i}] needs string path/name")
            _check(errors, isinstance(stage.get("calls"), int)
                   and stage.get("calls", 0) >= 1,
                   f"stages[{i}].calls must be a positive integer")
            wall = stage.get("wall_s")
            _check(errors, isinstance(wall, (int, float)) and wall >= 0,
                   f"stages[{i}].wall_s must be a non-negative number")

    for section in ("counters", "gauges"):
        values = payload.get(section, {})
        if not isinstance(values, dict):
            errors.append(f"{section} must be an object")
            continue
        for key, value in values.items():
            _check(errors, isinstance(key, str)
                   and isinstance(value, (int, float)),
                   f"{section}[{key!r}] must map a string to a number")

    campaigns = payload.get("campaigns")
    if not isinstance(campaigns, dict):
        errors.append("campaigns must be an object")
        campaigns = {}
    for name, record in campaigns.items():
        if not isinstance(record, dict):
            errors.append(f"campaigns[{name!r}] must be an object")
            continue
        for field_name in _CAMPAIGN_COUNTER_FIELDS:
            value = record.get(field_name)
            _check(errors, isinstance(value, int) and value >= 0,
                   f"campaigns[{name!r}].{field_name} must be a "
                   f"non-negative integer")
        if all(isinstance(record.get(f), int)
               for f in _CAMPAIGN_COUNTER_FIELDS):
            _check(errors,
                   record["units"] == record["delivered"]
                   + record["giveups"],
                   f"campaigns[{name!r}]: units != delivered + giveups")
        coverage = record.get("coverage")
        _check(errors, isinstance(coverage, (int, float))
               and 0.0 <= coverage <= 1.0,
               f"campaigns[{name!r}].coverage must be in [0, 1]")
        backoff = record.get("backoff_s", 0.0)
        _check(errors, isinstance(backoff, (int, float)) and backoff >= 0,
               f"campaigns[{name!r}].backoff_s must be non-negative")

    route_cache = payload.get("route_cache")
    if route_cache is not None:
        if not isinstance(route_cache, dict):
            errors.append("route_cache must be an object or null")
        else:
            for key in ("entries", "max_entries", "hits", "misses",
                        "evictions"):
                _check(errors, isinstance(route_cache.get(key), int)
                       and route_cache.get(key, -1) >= 0,
                       f"route_cache.{key} must be a non-negative integer")

    coverage = payload.get("coverage", {})
    if not isinstance(coverage, dict):
        errors.append("coverage must be an object")
    else:
        for component, record in coverage.items():
            if not isinstance(record, dict):
                errors.append(f"coverage[{component!r}] must be an object")
                continue
            value = record.get("coverage")
            _check(errors, isinstance(value, (int, float))
                   and 0.0 <= value <= 1.0,
                   f"coverage[{component!r}].coverage must be in [0, 1]")

    checkpoint = payload.get("checkpoint")
    if checkpoint is not None:
        _check(errors, isinstance(version, int) and version >= 2,
               "checkpoint lineage requires format_version >= 2")
        _validate_checkpoint(errors, checkpoint)

    delta = payload.get("delta")
    if delta is not None:
        _check(errors, isinstance(version, int) and version >= 3,
               "delta lineage requires format_version >= 3")
        _check(errors, checkpoint is not None,
               "delta lineage requires a checkpoint section (delta "
               "builds are checkpointed builds)")
        _validate_delta(errors, delta)

    serve = payload.get("serve")
    if serve is not None:
        _check(errors, isinstance(version, int) and version >= 4,
               "serve section requires format_version >= 4")
        if isinstance(serve, dict) and serve.get("latency") is not None:
            _check(errors, isinstance(version, int) and version >= 5,
                   "serve.latency requires format_version >= 5")
        _validate_serve(errors, serve)

    if errors:
        raise ValidationError("invalid manifest: " + "; ".join(errors))
