"""Live telemetry for long-running services.

The batch pipeline writes its telemetry into a manifest *after* the
process exits; a long-running ``repro serve`` needs to be observable
*while* it runs.  This module provides the in-process pieces the serve
stack wires together:

* :class:`Histogram` — a fixed-bucket latency histogram with committed
  log-spaced bucket boundaries.  Counts are exact integers, merging is
  associative and commutative (bucket-wise addition), and quantile
  estimation has a documented error bound (one bucket ratio, see
  :data:`BUCKET_GROWTH`).  Because bucketing is pure arithmetic on the
  observed duration, recording durations measured on a
  :class:`~repro.serve.resilience.VirtualClock` keeps same-seed chaos
  runs bit-identical, histograms included.
* :class:`RollingWindow` — a fixed ring of 1-second buckets covering the
  last :data:`WINDOW_SECONDS` seconds, backing the live ``repro obs
  top`` view (qps, shed fraction, p50/p99 per endpoint).
* :class:`AccessLog` — structured JSONL access logs with atomic
  ``O_APPEND`` writes, rotation detection (the inode is re-checked on
  every write), and seeded sampling for high-qps runs.
* :class:`LiveTelemetry` — the facade the service owns: it assigns
  request ids, records per-(endpoint, outcome) histograms, feeds the
  rolling window, and emits access-log records.
* :func:`render_prometheus` — Prometheus text exposition (format 0.0.4)
  for counters, gauges and latency histograms, served by
  ``GET /v1/metricsz``.

Everything here follows the observability ground rule: instrumentation
observes, it never steers.  No control-flow decision in the serve stack
depends on telemetry state, so enabling it cannot change what a run
computes.
"""

from __future__ import annotations

import json
import math
import os
import re
import sys
import threading
import time
from bisect import bisect_left
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from ..rand import substream

__all__ = [
    "ACCESS_LOG_FIELDS",
    "BUCKET_BOUNDS",
    "BUCKET_GROWTH",
    "OUTCOMES",
    "WINDOW_SECONDS",
    "AccessLog",
    "Histogram",
    "LiveTelemetry",
    "RollingWindow",
    "aggregate_access_log",
    "classify_status",
    "load_access_log",
    "render_prometheus",
]

# Committed bucket boundaries: 10 buckets per decade from 0.1 ms to
# 100 s, in seconds.  These are part of the telemetry contract — two
# histograms merge only when their boundaries are identical, and the
# manifest's latency quantiles are always one of these values (or the
# observed max), so recorded runs stay comparable across versions.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** ((i - 40) / 10) for i in range(61))

# Ratio between adjacent boundaries.  A quantile estimate is the least
# boundary at or above the order statistic it targets, so it exceeds
# that sample by at most this factor (~25.9 % relative error).
BUCKET_GROWTH: float = 10.0 ** 0.1

# Request outcomes, matching HTTP status classification (see
# :func:`classify_status`): 2xx/3xx ok, 429 shed, 504 deadline,
# everything else error.
OUTCOMES: Tuple[str, ...] = ("ok", "shed", "deadline", "error")

WINDOW_SECONDS = 60


def classify_status(status: int) -> str:
    """Map an HTTP status code onto a telemetry outcome label."""
    if status == 429:
        return "shed"
    if status == 504:
        return "deadline"
    if 200 <= status < 400:
        return "ok"
    return "error"


class Histogram:
    """Fixed-bucket histogram over non-negative durations in seconds.

    Bucket ``i`` (``0 <= i < len(bounds)``) counts values ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` (bucket 0 additionally absorbs
    everything at or below the first boundary); one overflow bucket
    counts values above the last boundary.  Counts are exact integers,
    so :meth:`merge` is associative and commutative and the final state
    is independent of recording order or partitioning.

    :meth:`quantile` returns the least bucket boundary at or above the
    nearest-rank order statistic ``ceil(q * count) - 1``, clamped to
    the observed maximum.  The estimate therefore never undershoots
    that sample and overshoots it by at most a factor of
    :data:`BUCKET_GROWTH` (values beyond the last boundary report the
    exact observed maximum).  The nearest-rank index is always within
    one order statistic of the interpolated position ``q * (count -
    1)`` that :func:`repro.serve.loadgen.percentile` uses, which is
    what keeps the two latency sources within one bucket of each other
    on identical, reasonably dense samples.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = BUCKET_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        if not self.bounds or any(b <= a for a, b in
                                  zip(self.bounds, self.bounds[1:])):
            raise ValueError("bounds must be strictly increasing and "
                             "non-empty")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, value_s: float) -> None:
        value = max(0.0, float(value_s))
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place and return self."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket boundaries")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def copy(self) -> "Histogram":
        dup = Histogram(self.bounds)
        dup.counts = list(self.counts)
        dup.count = self.count
        dup.sum = self.sum
        dup.min = self.min
        dup.max = self.max
        return dup

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile in seconds (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, float(q)))
        # Nearest-rank order statistic: at least ceil(q * count)
        # samples are <= the returned boundary.
        rank = max(0, math.ceil(q * self.count) - 1)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen > rank:
                if i >= len(self.bounds):          # overflow bucket
                    return self.max
                return min(self.bounds[i], self.max)
        return self.max                            # unreachable

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary_ms(self) -> Dict[str, Union[int, float]]:
        """Milli-second summary used by the manifest and the CLI."""
        return {
            "count": self.count,
            "p50_ms": round(self.quantile(0.5) * 1e3, 3),
            "p99_ms": round(self.quantile(0.99) * 1e3, 3),
            "mean_ms": round(self.mean() * 1e3, 3),
            "max_ms": round((self.max if self.count else 0.0) * 1e3, 3),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum_s": self.sum,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "counts": list(self.counts),
        }


class RollingWindow:
    """Ring of per-second buckets covering the trailing window.

    Each slot holds per-endpoint outcome counts plus a latency
    histogram over *ok* responses (sheds and errors return in
    micro-seconds and would drag the percentiles toward zero).  Slots
    are recycled lazily: writing into a slot whose second no longer
    matches resets it, so an idle service costs nothing.
    """

    def __init__(self, window_s: int = WINDOW_SECONDS) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = int(window_s)
        # slot: (second, {endpoint: {"outcomes": {...}, "hist": Histogram}})
        self._slots: List[Optional[tuple]] = [None] * self.window_s

    def record(self, endpoint: str, outcome: str, latency_s: float,
               now: float) -> None:
        second = int(now)
        idx = second % self.window_s
        slot = self._slots[idx]
        if slot is None or slot[0] != second:
            slot = (second, {})
            self._slots[idx] = slot
        stats = slot[1].get(endpoint)
        if stats is None:
            stats = {"outcomes": {}, "hist": Histogram()}
            slot[1][endpoint] = stats
        outcomes = stats["outcomes"]
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if outcome == "ok":
            stats["hist"].record(latency_s)

    def snapshot(self, now: float) -> Dict[str, object]:
        """Aggregate the slots inside ``(now - window, now]``."""
        horizon = int(now) - self.window_s
        merged: Dict[str, Dict[str, object]] = {}
        for slot in self._slots:
            if slot is None or slot[0] <= horizon or slot[0] > int(now):
                continue
            for endpoint, stats in slot[1].items():
                agg = merged.setdefault(
                    endpoint, {"outcomes": {}, "hist": Histogram()})
                for outcome, n in stats["outcomes"].items():
                    agg["outcomes"][outcome] = (
                        agg["outcomes"].get(outcome, 0) + n)
                agg["hist"].merge(stats["hist"])
        totals = {"outcomes": {}, "hist": Histogram()}
        endpoints = {}
        for endpoint in sorted(merged):
            stats = merged[endpoint]
            endpoints[endpoint] = self._entry(stats)
            for outcome, n in stats["outcomes"].items():
                totals["outcomes"][outcome] = (
                    totals["outcomes"].get(outcome, 0) + n)
            totals["hist"].merge(stats["hist"])
        return {"window_s": self.window_s, "endpoints": endpoints,
                "totals": self._entry(totals)}

    def _entry(self, stats: Dict[str, object]) -> Dict[str, object]:
        outcomes = stats["outcomes"]
        hist = stats["hist"]
        requests = sum(outcomes.values())
        shed = outcomes.get("shed", 0)
        return {
            "requests": requests,
            "qps": round(requests / self.window_s, 3),
            "shed_fraction": round(shed / requests, 4) if requests else 0.0,
            "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
            "p50_ms": round(hist.quantile(0.5) * 1e3, 3),
            "p99_ms": round(hist.quantile(0.99) * 1e3, 3),
        }


# Fields every access-log record carries, in the order the docs list
# them.  ``ts`` is seconds since the epoch (wall clock) except under an
# injected virtual clock, where it is virtual seconds.
ACCESS_LOG_FIELDS = ("ts", "request_id", "endpoint", "path", "status",
                     "outcome", "latency_ms", "digest")


class AccessLog:
    """Structured JSONL access log with atomic, rotation-safe appends.

    Each record is one ``json.dumps`` line written with a single
    ``os.write`` on an ``O_APPEND`` descriptor, so concurrent handler
    threads (and even separate processes sharing the file) never
    interleave partial lines.  Before every write the path's inode is
    compared against the open descriptor's; when a rotator has moved or
    deleted the file, the log transparently reopens it.  ``path="-"``
    streams to stdout instead.

    ``sample`` keeps every Nth-ish record via a seeded child RNG stream
    (``substream(seed, "serve", "access-log")``): sampling decisions are
    reproducible for a given seed and never influence serving.
    """

    def __init__(self, path: str, sample: float = 1.0, seed: int = 0)\
            -> None:
        if not 0.0 < sample <= 1.0:
            raise ValueError("sample must be in (0, 1]")
        self.path = path
        self.sample = float(sample)
        self._lock = threading.Lock()
        self._stdout = path == "-"
        self._fd: Optional[int] = None
        if not self._stdout:
            self._open()
        self._rng = (None if self.sample >= 1.0
                     else substream(seed, "serve", "access-log"))

    def _open(self) -> None:
        self._fd = os.open(self.path,
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def _maybe_reopen(self) -> None:
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            st = None
        current = os.fstat(self._fd)
        if st is None or (st.st_ino, st.st_dev) != (current.st_ino,
                                                    current.st_dev):
            os.close(self._fd)
            self._open()

    def emit(self, record: Dict[str, object]) -> bool:
        """Append one record; returns False when sampled out or closed."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._rng is not None \
                    and float(self._rng.random()) >= self.sample:
                return False
            if self._stdout:
                sys.stdout.write(line + "\n")
                sys.stdout.flush()
                return True
            if self._fd is None:
                return False
            self._maybe_reopen()
            os.write(self._fd, (line + "\n").encode("utf-8"))
            return True

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_access_log(path: str) -> Tuple[List[Dict[str, object]], int]:
    """Parse a JSONL access log; returns ``(records, malformed_lines)``.

    Malformed lines (e.g. a partial final line from a live log) are
    skipped and counted rather than raised, so tailing a file that is
    still being written works.
    """
    records: List[Dict[str, object]] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                malformed += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                malformed += 1
    return records, malformed


def aggregate_access_log(records: Iterable[Dict[str, object]])\
        -> Dict[str, object]:
    """Aggregate access-log records into the rolling-window shape.

    qps is computed over the observed time span (last ``ts`` minus
    first ``ts``); latency percentiles cover ok responses only, like
    the live window.
    """
    merged: Dict[str, Dict[str, object]] = {}
    first_ts = math.inf
    last_ts = -math.inf
    total = 0
    for record in records:
        endpoint = str(record.get("endpoint", "other"))
        outcome = str(record.get("outcome", "error"))
        stats = merged.setdefault(
            endpoint, {"outcomes": {}, "hist": Histogram()})
        stats["outcomes"][outcome] = stats["outcomes"].get(outcome, 0) + 1
        total += 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = min(first_ts, ts)
            last_ts = max(last_ts, ts)
        latency_ms = record.get("latency_ms")
        if outcome == "ok" and isinstance(latency_ms, (int, float)):
            stats["hist"].record(latency_ms / 1e3)
    span_s = max(0.0, last_ts - first_ts) if total else 0.0
    rate_span = max(span_s, 1.0)

    def entry(stats: Dict[str, object]) -> Dict[str, object]:
        outcomes = stats["outcomes"]
        hist = stats["hist"]
        requests = sum(outcomes.values())
        shed = outcomes.get("shed", 0)
        return {
            "requests": requests,
            "qps": round(requests / rate_span, 3),
            "shed_fraction": (round(shed / requests, 4)
                              if requests else 0.0),
            "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
            "p50_ms": round(hist.quantile(0.5) * 1e3, 3),
            "p99_ms": round(hist.quantile(0.99) * 1e3, 3),
        }

    totals = {"outcomes": {}, "hist": Histogram()}
    endpoints = {}
    for endpoint in sorted(merged):
        stats = merged[endpoint]
        endpoints[endpoint] = entry(stats)
        for outcome, n in stats["outcomes"].items():
            totals["outcomes"][outcome] = (
                totals["outcomes"].get(outcome, 0) + n)
        totals["hist"].merge(stats["hist"])
    return {"records": total, "span_s": round(span_s, 3),
            "endpoints": endpoints, "totals": entry(totals)}


class LiveTelemetry:
    """The service-side telemetry facade.

    ``clock`` may be ``None`` (wall clock), a callable returning
    seconds, or anything with a ``now()`` method — in particular a
    :class:`~repro.serve.resilience.VirtualClock`, which is what keeps
    seeded chaos runs bit-identical with telemetry enabled: every
    recorded duration is then pure simulated time.

    All mutation happens under one lock; reads return deep snapshots so
    scrapes never race handler threads.
    """

    def __init__(self, clock: Optional[object] = None,
                 access_log: Optional[AccessLog] = None,
                 window_s: int = WINDOW_SECONDS) -> None:
        if clock is None:
            self._now: Callable[[], float] = time.time
        elif hasattr(clock, "now"):
            self._now = clock.now
        elif callable(clock):
            self._now = clock
        else:
            raise TypeError("clock must be None, a callable, or expose "
                            "now()")
        self.access_log = access_log
        self._lock = threading.Lock()
        self._hists: Dict[Tuple[str, str], Histogram] = {}
        self._window = RollingWindow(window_s)
        self._request_seq = 0

    def now(self) -> float:
        return self._now()

    def next_request_id(self) -> str:
        with self._lock:
            self._request_seq += 1
            return f"req-{self._request_seq}"

    @property
    def empty(self) -> bool:
        with self._lock:
            return not self._hists

    def observe(self, endpoint: str, outcome: str, latency_s: float, *,
                status: Optional[int] = None, path: Optional[str] = None,
                request_id: Optional[str] = None,
                digest: Optional[str] = None) -> None:
        """Record one finished request.

        Purely observational: the histogram/window update draws no
        randomness and steers nothing, and the optional access-log
        record is emitted outside the serving path's control flow.
        """
        latency_s = max(0.0, float(latency_s))
        now = self.now()
        with self._lock:
            key = (endpoint, outcome)
            hist = self._hists.get(key)
            if hist is None:
                hist = Histogram()
                self._hists[key] = hist
            hist.record(latency_s)
            self._window.record(endpoint, outcome, latency_s, now)
        log = self.access_log
        if log is not None:
            log.emit({
                "ts": round(now, 6),
                "request_id": request_id,
                "endpoint": endpoint,
                "path": path if path is not None else f"/v1/{endpoint}",
                "status": status,
                "outcome": outcome,
                "latency_ms": round(latency_s * 1e3, 3),
                "digest": digest,
            })

    def histograms(self) -> Dict[Tuple[str, str], Histogram]:
        """Deep copy of every per-(endpoint, outcome) histogram."""
        with self._lock:
            return {key: hist.copy() for key, hist in self._hists.items()}

    def latency_snapshot(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """``{endpoint: {outcome: summary_ms}}`` with sorted keys."""
        hists = self.histograms()
        snapshot: Dict[str, Dict[str, Dict[str, object]]] = {}
        for endpoint, outcome in sorted(hists):
            snapshot.setdefault(endpoint, {})[outcome] = \
                hists[(endpoint, outcome)].summary_ms()
        return snapshot

    def window_snapshot(self) -> Dict[str, object]:
        with self._lock:
            return self._window.snapshot(self.now())

    def manifest_section(self) -> Optional[Dict[str, object]]:
        """The manifest's ``serve.latency`` block (None when empty).

        Shape: ``{"unit": "ms", "total": summary, "endpoints":
        {endpoint: {outcome: summary}}}`` where each summary carries
        exact ``count`` plus p50/p99/mean/max in milli-seconds and the
        endpoint-outcome counts sum to ``total["count"]``.
        """
        hists = self.histograms()
        if not hists:
            return None
        total = Histogram()
        endpoints: Dict[str, Dict[str, object]] = {}
        for endpoint, outcome in sorted(hists):
            hist = hists[(endpoint, outcome)]
            total.merge(hist)
            endpoints.setdefault(endpoint, {})[outcome] = hist.summary_ms()
        return {"unit": "ms", "total": total.summary_ms(),
                "endpoints": endpoints}


_METRIC_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + _METRIC_SANITIZE.sub("_", name) + suffix


def _fmt_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(counters: Dict[str, int],
                      gauges: Dict[str, float],
                      telemetry: Optional[LiveTelemetry] = None, *,
                      digest: Optional[str] = None,
                      draining: bool = False) -> str:
    """Render a Prometheus text-format (0.0.4) exposition page.

    Counter/gauge names are sanitised (``serve.requests.cdf`` becomes
    ``repro_serve_requests_cdf_total``); latency histograms are emitted
    with cumulative ``le`` buckets at the committed boundaries plus
    ``+Inf``, labelled by endpoint and outcome.  The map digest rides
    on ``repro_serve_map_info`` so scrapes can be joined to a specific
    map build.
    """
    lines: List[str] = []
    lines.append("# HELP repro_serve_map_info Map identity; the digest "
                 "label matches the X-Map-Digest response header.")
    lines.append("# TYPE repro_serve_map_info gauge")
    lines.append('repro_serve_map_info{digest="%s"} 1' % (digest or ""))
    lines.append("# HELP repro_serve_draining 1 while the service drains "
                 "after SIGTERM/SIGINT.")
    lines.append("# TYPE repro_serve_draining gauge")
    lines.append("repro_serve_draining %d" % (1 if draining else 0))
    for name in sorted(counters):
        metric = _metric_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt_value(counters[name])}")
    for name in sorted(gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt_value(gauges[name])}")
    if telemetry is not None:
        hists = telemetry.histograms()
        if hists:
            lines.append("# HELP repro_serve_latency_seconds Request "
                         "latency by endpoint and outcome.")
            lines.append("# TYPE repro_serve_latency_seconds histogram")
        for endpoint, outcome in sorted(hists):
            hist = hists[(endpoint, outcome)]
            labels = f'endpoint="{endpoint}",outcome="{outcome}"'
            cumulative = 0
            for bound, bucket_count in zip(hist.bounds, hist.counts):
                cumulative += bucket_count
                lines.append(
                    'repro_serve_latency_seconds_bucket{%s,le="%.6g"} %d'
                    % (labels, bound, cumulative))
            cumulative += hist.counts[-1]
            lines.append(
                'repro_serve_latency_seconds_bucket{%s,le="+Inf"} %d'
                % (labels, cumulative))
            lines.append('repro_serve_latency_seconds_sum{%s} %s'
                         % (labels, repr(hist.sum)))
            lines.append('repro_serve_latency_seconds_count{%s} %d'
                         % (labels, hist.count))
    return "\n".join(lines) + "\n"
