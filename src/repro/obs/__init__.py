"""Observability: span timers, counters and per-run manifests.

Zero-dependency instrumentation for the map pipeline. A
:class:`Recorder` threads through :class:`repro.core.builder.MapBuilder`,
every ``repro.measure`` campaign, :class:`repro.net.routing.BgpSimulator`
and :class:`repro.faults.FaultContext`; the collected spans/counters fold
into a :class:`RunManifest` JSON document (CLI ``--metrics out.json``,
live span log via ``--trace``). The :data:`NULL_RECORDER` default makes
all of it free — and bit-identical — when unused. See
``docs/observability.md``.
"""

from .manifest import (FORMAT_VERSION, KNOWN_CAMPAIGNS,
                       SUPPORTED_FORMAT_VERSIONS, CampaignRecord,
                       RunManifest, collect_manifest, config_digest,
                       fault_plan_digest, options_digest,
                       validate_manifest)
from .recorder import (NULL_RECORDER, NullRecorder, Recorder, StageTiming,
                       resolve_recorder)

__all__ = [
    "FORMAT_VERSION",
    "KNOWN_CAMPAIGNS",
    "CampaignRecord",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RunManifest",
    "StageTiming",
    "collect_manifest",
    "SUPPORTED_FORMAT_VERSIONS",
    "config_digest",
    "fault_plan_digest",
    "options_digest",
    "resolve_recorder",
    "validate_manifest",
]
