"""Observability: span timers, manifests, run history and diffing.

Zero-dependency instrumentation for the map pipeline. A
:class:`Recorder` threads through :class:`repro.core.builder.MapBuilder`,
every ``repro.measure`` campaign, :class:`repro.net.routing.BgpSimulator`
and :class:`repro.faults.FaultContext`; the collected spans/counters fold
into a :class:`RunManifest` JSON document (CLI ``--metrics out.json``,
live span log via ``--trace``, per-span tracemalloc gauges via
``BuilderOptions.profile_memory``). Manifests accumulate across builds
in an append-only :class:`RunHistory` JSONL registry, and
:func:`diff_manifests` classifies the drift between two comparable runs
into ``ok``/``warn``/``regression`` findings (CLI ``repro history`` /
``repro compare``). The :data:`NULL_RECORDER` default makes all of it
free — and bit-identical — when unused. See ``docs/observability.md``.
"""

from .diff import (DIFF_CATEGORIES, STATUS_OK, STATUS_REGRESSION,
                   STATUS_WARN, DiffFinding, DiffThresholds, ManifestDiff,
                   comparability_errors, diff_manifests)
from .history import (DEFAULT_HISTORY_PATH, HISTORY_SCHEMA_VERSION,
                      HistoryEntry, RunHistory, RunKey, run_key_of)
from .live import (ACCESS_LOG_FIELDS, BUCKET_BOUNDS, BUCKET_GROWTH,
                   OUTCOMES, WINDOW_SECONDS, AccessLog, Histogram,
                   LiveTelemetry, RollingWindow, aggregate_access_log,
                   classify_status, load_access_log, render_prometheus)
from .manifest import (FORMAT_VERSION, KNOWN_CAMPAIGNS,
                       SUPPORTED_FORMAT_VERSIONS, CampaignRecord,
                       RunManifest, collect_manifest, config_digest,
                       fault_plan_digest, options_digest,
                       validate_manifest)
from .recorder import (NULL_RECORDER, NullRecorder, Recorder, StageTiming,
                       resolve_recorder)

__all__ = [
    "ACCESS_LOG_FIELDS",
    "BUCKET_BOUNDS",
    "BUCKET_GROWTH",
    "DEFAULT_HISTORY_PATH",
    "DIFF_CATEGORIES",
    "FORMAT_VERSION",
    "HISTORY_SCHEMA_VERSION",
    "KNOWN_CAMPAIGNS",
    "OUTCOMES",
    "WINDOW_SECONDS",
    "AccessLog",
    "CampaignRecord",
    "DiffFinding",
    "DiffThresholds",
    "Histogram",
    "HistoryEntry",
    "LiveTelemetry",
    "ManifestDiff",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RollingWindow",
    "RunHistory",
    "RunKey",
    "RunManifest",
    "STATUS_OK",
    "STATUS_REGRESSION",
    "STATUS_WARN",
    "StageTiming",
    "SUPPORTED_FORMAT_VERSIONS",
    "aggregate_access_log",
    "classify_status",
    "collect_manifest",
    "comparability_errors",
    "config_digest",
    "diff_manifests",
    "fault_plan_digest",
    "load_access_log",
    "options_digest",
    "render_prometheus",
    "resolve_recorder",
    "run_key_of",
    "validate_manifest",
]
