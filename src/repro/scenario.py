"""Scenario assembly: build the whole simulated Internet from one config.

:func:`build_scenario` deterministically generates every substrate in
dependency order and returns a :class:`Scenario` holding both the
*privileged* ground truth (traffic matrix, actual topology, populations)
and the *public* surfaces measurement code is allowed to touch (GDNS probe
oracle, root-log archive, TLS store, collector view, PeeringDB registry).

Measurement modules must only consume the public surfaces; validation code
(and only validation code) compares their output against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .config import ScenarioConfig
from .errors import ConfigError
from .net.ases import ASRegistry
from .net.collectors import PublicTopologyView, build_public_view
from .net.geography import WorldAtlas
from .net.prefixes import PrefixKind, PrefixTable
from .net.relationships import ASGraph
from .net.routers import RouterPopulation, build_routers
from .net.routing import BgpSimulator
from .net.topology import TopologyBuild, build_topology
from .population.activity import DiurnalCurve
from .population.apnic import ApnicDataset, simulate_apnic
from .population.users import PopulationModel, build_population
from .rand import substream
from .services.anycast import AnycastModel
from .services.catalog import ServiceCatalog
from .services.cdn import CdnDeployment, deploy_cdns
from .services.dnsinfra import (AuthoritativeDns, CacheOracle,
                                GoogleDnsModel, RootLogArchive, RootSystem,
                                TemporalCacheOracle)
from .services.hypergiants import PUBLIC_DNS_OPERATOR_KEY, hypergiant_names
from .services.mapping import GroundTruthMapping
from .services.tls import CertificateStore, issue_certificates
from .traffic.flows import FlowAssignment, assign_flows
from .traffic.matrix import TrafficMatrix, build_traffic_matrix


@dataclass
class Scenario:
    """A fully-built simulated Internet (ground truth + public surfaces)."""

    config: ScenarioConfig
    atlas: WorldAtlas
    topology: TopologyBuild
    bgp: BgpSimulator
    prefixes: PrefixTable
    population: PopulationModel
    apnic: ApnicDataset
    catalog: ServiceCatalog
    deployment: CdnDeployment
    certstore: CertificateStore
    anycast_models: Dict[str, AnycastModel]
    mapping: GroundTruthMapping
    traffic: TrafficMatrix
    flows: FlowAssignment
    routers: RouterPopulation
    gdns: GoogleDnsModel
    cache_oracle: CacheOracle
    temporal_oracle: TemporalCacheOracle
    authoritative: AuthoritativeDns
    roots: RootSystem
    root_archive: RootLogArchive
    public_view: PublicTopologyView
    diurnal: DiurnalCurve
    # Delta-build state (repro.delta): the as-generated deployment and
    # the (hypergiant_key, pristine_site_id) pairs currently retired.
    # ``deployment`` above is always the *active* (filtered) one.
    pristine_deployment: Optional[CdnDeployment] = None
    retired_sites: Set[Tuple[str, int]] = field(default_factory=set)

    # -- convenience accessors ------------------------------------------------

    @property
    def registry(self) -> ASRegistry:
        return self.topology.registry

    @property
    def graph(self) -> ASGraph:
        return self.topology.graph

    def hypergiant_asn(self, key: str) -> int:
        spec = self.catalog.hypergiants.get(key)
        if spec is None:
            raise ConfigError(f"unknown hypergiant {key!r}")
        return self.topology.hypergiant_asns[spec.display_name]

    @property
    def gdns_operator_asn(self) -> int:
        return self.hypergiant_asn(PUBLIC_DNS_OPERATOR_KEY)

    def user_prefix_ids(self) -> np.ndarray:
        return self.population.prefixes_with_users()

    def routable_prefix_ids(self) -> np.ndarray:
        """All announced /24s — the public probing target list."""
        return np.arange(len(self.prefixes))


def build_scenario(config: Optional[ScenarioConfig] = None) -> Scenario:
    """Build the world. Deterministic in ``config`` (including its seed)."""
    if config is None:
        config = ScenarioConfig.default()
    config.validate()
    seed = config.seed

    atlas = WorldAtlas.default()
    if config.country_codes is not None:
        atlas = atlas.subset(config.country_codes)

    catalog = ServiceCatalog.build(config.services,
                                   substream(seed, "catalog"))
    open_peering = tuple(spec.display_name
                         for spec in catalog.hypergiants.values()
                         if spec.uses_anycast)
    topo = build_topology(config.topology, atlas, hypergiant_names(),
                          substream(seed, "topology"),
                          open_peering_names=open_peering)

    prefix_table = PrefixTable()
    population = build_population(config.population, atlas, topo,
                                  prefix_table,
                                  substream(seed, "population"))
    deployment = deploy_cdns(config.services, atlas, topo, catalog,
                             prefix_table, substream(seed, "cdn"))
    prefix_table.freeze()
    population.pad_to_table()

    apnic = simulate_apnic(config.population, population,
                           substream(seed, "apnic"))
    traffic = build_traffic_matrix(catalog, population, config.dns,
                                   substream(seed, "traffic"))

    bgp = BgpSimulator(topo.graph,
                       max_cache_entries=config.route_cache_entries)
    anycast_models: Dict[str, AnycastModel] = {}
    for key, spec in catalog.hypergiants.items():
        if spec.uses_anycast:
            anycast_models[key] = AnycastModel(
                hypergiant_key=key,
                hg_asn=topo.hypergiant_asns[spec.display_name],
                sites=deployment.sites(key),
                graph=topo.graph, registry=topo.registry,
                peeringdb=topo.peeringdb, bgp=bgp)

    mapping = GroundTruthMapping(
        prefix_table=prefix_table, registry=topo.registry,
        deployment=deployment, catalog=catalog,
        anycast_models=anycast_models,
        users_per_prefix=population.users_per_prefix,
        rng=substream(seed, "mapping"))

    certstore = issue_certificates(catalog, deployment, prefix_table,
                                   substream(seed, "tls"))
    flows = assign_flows(traffic, mapping, deployment, bgp)
    diurnal = DiurnalCurve()
    routers = build_routers(topo.registry, flows.volume_by_as, diurnal,
                            substream(seed, "routers"))

    gdns = GoogleDnsModel(config.dns, atlas, topo.registry, prefix_table,
                          substream(seed, "gdns"))
    # Query rate reaching GDNS caches = client resolutions * GDNS share.
    gdns_rate = traffic.queries_per_day * gdns.gdns_share[None, :]
    ttls = [s.dns_ttl for s in catalog.services]
    probe_sids = [s.sid for s in catalog.top_by_popularity(
        config.measurement.probe_top_k_domains)]
    cache_oracle = CacheOracle.calibrated(
        gdns_rate, ttls, probe_sids, population.prefixes_with_users())
    city_offsets = np.array([c.utc_offset for c in prefix_table.cities])
    temporal_oracle = TemporalCacheOracle.from_oracle(
        cache_oracle,
        utc_offsets=city_offsets[prefix_table.city_index_array],
        curve=diurnal)

    authoritative = AuthoritativeDns(catalog, mapping)
    roots = RootSystem(config.dns, topo.registry, substream(seed, "roots"))
    gdns_operator = topo.hypergiant_asns[
        catalog.hypergiants[PUBLIC_DNS_OPERATOR_KEY].display_name]
    root_archive = roots.generate_archive(
        registry=topo.registry, prefix_table=prefix_table,
        users_per_prefix=population.users_per_prefix,
        isp_resolver_share=gdns.isp_resolver_share,
        gdns_operator_asn=gdns_operator,
        config=config.dns, rng=substream(seed, "rootlogs"))

    public_view = build_public_view(topo.graph, topo.registry,
                                    substream(seed, "collectors"))

    return Scenario(
        config=config, atlas=atlas, topology=topo, bgp=bgp,
        prefixes=prefix_table, population=population, apnic=apnic,
        catalog=catalog, deployment=deployment, certstore=certstore,
        anycast_models=anycast_models, mapping=mapping, traffic=traffic,
        flows=flows, routers=routers, gdns=gdns,
        cache_oracle=cache_oracle, temporal_oracle=temporal_oracle,
        authoritative=authoritative,
        roots=roots, root_archive=root_archive, public_view=public_view,
        diurnal=diurnal)
