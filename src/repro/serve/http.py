"""HTTP transport for :class:`~repro.serve.service.MapService`.

Zero-dependency on purpose: a ``ThreadingHTTPServer`` with one GET
handler, so the serving layer stays cheap enough to sit next to the
measurement loop (the DIMES argument). All responses are JSON; errors
are ``{"error": ...}`` with the status carried by
:class:`~repro.serve.service.QueryError` (400 malformed parameters,
404 not covered by the map, 405 non-GET, 500 bugs). Every response
carries the served map's digest in an ``X-Map-Digest`` header so a
client can detect a hot swap mid-session.

Endpoint reference with parameters and response schemas:
``docs/serving.md``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from .service import MapService, QueryError


class QueryServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`MapService`.

    Handler threads are non-daemon and joined by ``server_close()``, so
    a bounded run (``--max-requests``) never cuts off an in-flight
    response at process exit; the per-connection socket timeout below
    bounds how long an idle keep-alive connection can delay that join.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(self, address, service: MapService,
                 quiet: bool = True) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


def serve_http(service: MapService, host: str = "127.0.0.1",
               port: int = 0, quiet: bool = True) -> QueryServer:
    """Bind a :class:`QueryServer` (``port=0`` picks a free port; the
    bound port is ``server.server_port``). The caller drives it with
    ``serve_forever()`` or ``handle_request()``."""
    return QueryServer((host, port), service, quiet=quiet)


def _single(params: Dict[str, List[str]], name: str,
            required: bool = False) -> Optional[str]:
    values = params.get(name, [])
    if len(values) > 1:
        raise QueryError(400, f"parameter {name!r} given more than once")
    if not values:
        if required:
            raise QueryError(400, f"missing required parameter {name!r}")
        return None
    return values[0]


def _int_param(raw: str, name: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise QueryError(
            400, f"parameter {name!r} must be an integer, "
                 f"got {raw!r}") from None


def _bool_param(raw: Optional[str], name: str) -> Optional[bool]:
    if raw is None:
        return None
    lowered = raw.lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise QueryError(
        400, f"parameter {name!r} must be true or false, got {raw!r}")


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # Idle keep-alive connections close after this many seconds; bounds
    # the server_close() join (see QueryServer).
    timeout = 10

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib override
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service: MapService = self.server.service
        url = urlsplit(self.path)
        params = parse_qs(url.query, keep_blank_values=True)
        try:
            answer = self._route(service, url.path, params)
        except QueryError as exc:
            self._send(exc.status, {"error": str(exc)}, service.digest)
            return
        except Exception as exc:  # pragma: no cover - bug surface
            self._send(500, {"error": f"internal error: {exc}"},
                       service.digest)
            return
        self._send(200, answer, service.digest)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._send(405, {"error": "only GET is supported"},
                   self.server.service.digest)

    do_PUT = do_DELETE = do_PATCH = do_POST

    def _route(self, service: MapService, path: str,
               params: Dict[str, List[str]]) -> Dict[str, Any]:
        if path == "/v1/health":
            return service.health()
        if path == "/v1/map":
            return service.map_summary()
        if path == "/v1/cdf":
            raw = _single(params, "as", required=True)
            asns = [_int_param(part, "as")
                    for part in raw.split(",") if part]
            weighted = _bool_param(_single(params, "weighted"), "weighted")
            return service.cdf(asns, weighted=weighted)
        if path == "/v1/outage":
            asn = _single(params, "asn")
            hypergiant = _single(params, "hypergiant")
            return service.outage(
                asn=None if asn is None else _int_param(asn, "asn"),
                hypergiant=hypergiant)
        if path == "/v1/anycast":
            service_key = _single(params, "service", required=True)
            prefix = _int_param(_single(params, "prefix", required=True),
                                "prefix")
            k_raw = _single(params, "k")
            k = 3 if k_raw is None else _int_param(k_raw, "k")
            return service.anycast(service_key, prefix, k=k)
        raise QueryError(404, f"unknown endpoint {path!r}")

    def _send(self, status: int, payload: Dict[str, Any],
              digest: str) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Map-Digest", digest)
        self.end_headers()
        self.wfile.write(body)
