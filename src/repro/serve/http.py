"""HTTP transport for :class:`~repro.serve.service.MapService`.

Zero-dependency on purpose: a ``ThreadingHTTPServer`` with one GET
handler, so the serving layer stays cheap enough to sit next to the
measurement loop (the DIMES argument). All responses are JSON; errors
are ``{"error": ...}`` with the status carried by
:class:`~repro.serve.service.QueryError` (400 malformed parameters,
404 not covered by the map, 405 non-GET, 429 shed at the admission
gate — with a ``Retry-After`` header, 503 draining or not ready, 504
deadline expired, 500 bugs). Every response carries the served map's
digest in an ``X-Map-Digest`` header so a client can detect a hot swap
mid-session.

Query endpoints pass through :meth:`MapService.admit` (overload
protection, ``docs/serving.md`` §resilience); the health probes
(``/v1/health``, ``/v1/healthz``, ``/v1/readyz``) and the telemetry
scrape (``/v1/metricsz``) bypass the gate so an overloaded or draining
replica still answers its orchestrator and its monitoring.

Every response also carries an ``X-Request-Id`` header (the inbound
header value when the client sent one, a fresh sequential id
otherwise); the same id lands in the JSONL access log when one is
attached, so a slow response can be joined to its log record.

Endpoint reference with parameters and response schemas:
``docs/serving.md``.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from ..obs.live import classify_status
from .resilience import AdmissionError
from .service import MapService, QueryError

#: Probe endpoints that bypass the admission gate: liveness, readiness
#: and the telemetry scrape must answer even when the replica is
#: saturated or draining.
UNGATED_PATHS = ("/v1/health", "/v1/healthz", "/v1/readyz",
                 "/v1/metricsz")

#: Endpoint labels used for latency histograms and access logs; paths
#: outside this set are folded into "other" to bound label cardinality.
_ENDPOINT_LABELS = ("health", "healthz", "readyz", "map", "cdf",
                    "outage", "anycast")


class QueryServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`MapService`.

    Handler threads are non-daemon and joined by ``server_close()``, so
    a bounded run (``--max-requests``) never cuts off an in-flight
    response at process exit; the per-connection socket timeout below
    bounds how long an idle keep-alive connection can delay that join.
    """

    daemon_threads = False
    block_on_close = True

    def __init__(self, address, service: MapService,
                 quiet: bool = True,
                 request_timeout: float = 10.0) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        self.request_timeout = float(request_timeout)


def serve_http(service: MapService, host: str = "127.0.0.1",
               port: int = 0, quiet: bool = True,
               request_timeout: float = 10.0) -> QueryServer:
    """Bind a :class:`QueryServer` (``port=0`` picks a free port; the
    bound port is ``server.server_port``). The caller drives it with
    ``serve_forever()`` or ``handle_request()``."""
    return QueryServer((host, port), service, quiet=quiet,
                       request_timeout=request_timeout)


def _single(params: Dict[str, List[str]], name: str,
            required: bool = False) -> Optional[str]:
    values = params.get(name, [])
    if len(values) > 1:
        raise QueryError(400, f"parameter {name!r} given more than once")
    if not values:
        if required:
            raise QueryError(400, f"missing required parameter {name!r}")
        return None
    return values[0]


def _int_param(raw: str, name: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise QueryError(
            400, f"parameter {name!r} must be an integer, "
                 f"got {raw!r}") from None


def _bool_param(raw: Optional[str], name: str) -> Optional[bool]:
    if raw is None:
        return None
    lowered = raw.lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise QueryError(
        400, f"parameter {name!r} must be true or false, got {raw!r}")


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # Idle keep-alive connections close after this many seconds; bounds
    # the server_close() join (see QueryServer). Overridden per server
    # by setup() from QueryServer.request_timeout (--request-timeout).
    timeout = 10

    def setup(self) -> None:  # noqa: D102 - stdlib override
        self.timeout = self.server.request_timeout
        super().setup()

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib override
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def log_error(self, fmt, *args):  # noqa: D102 - stdlib override
        # handle_one_request swallows socket timeouts after logging
        # them here; count the abort instead of dropping it silently.
        if args and isinstance(args[0], TimeoutError):
            self.server.service._recorder.count("serve.http.timeouts")
        self.log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service: MapService = self.server.service
        url = urlsplit(self.path)
        params = parse_qs(url.query, keep_blank_values=True)
        telemetry = service.telemetry
        request_id = service.begin_request(self.headers.get("X-Request-Id"))
        if url.path == "/v1/metricsz":
            # The scrape observes the service without becoming part of
            # what it observes: it is never timed, logged or counted, so
            # a scrape taken after the last query exactly matches the
            # manifest flushed at shutdown.
            try:
                self._metricsz(service, params, request_id)
            finally:
                service.end_request()
            return
        started = telemetry.now()
        retry_after = None
        disconnected = False
        try:
            try:
                if url.path in UNGATED_PATHS:
                    answer = self._route(service, url.path, params)
                else:
                    with service.admit():
                        answer = self._route(service, url.path, params)
            except AdmissionError as exc:
                status, answer = exc.status, {"error": str(exc)}
                retry_after = exc.retry_after
            except QueryError as exc:
                status, answer = exc.status, {"error": str(exc)}
            except Exception as exc:  # pragma: no cover - bug surface
                status, answer = 500, {"error": f"internal error: {exc}"}
            else:
                status = 200
                if url.path == "/v1/readyz" \
                        and answer.get("status") != "ok":
                    status = 503
                chaos = service.chaos
                if chaos is not None and chaos.client_disconnect():
                    # The simulated client went away before the body:
                    # abort the response and tear the connection down,
                    # exactly the failure a real disconnect leaves
                    # behind. The request still did the work, so it is
                    # observed below with the status it computed.
                    service._recorder.count(
                        "serve.http.client_disconnects")
                    self.close_connection = True
                    disconnected = True
            digest = service.digest
            elapsed = max(0.0, telemetry.now() - started)
            if not disconnected:
                self._send(status, answer, digest,
                           retry_after=retry_after,
                           request_id=request_id)
            telemetry.observe(self._endpoint_label(url.path),
                              classify_status(status), elapsed,
                              status=status, path=url.path,
                              request_id=request_id, digest=digest)
        finally:
            service.end_request()

    @staticmethod
    def _endpoint_label(path: str) -> str:
        name = path.rsplit("/", 1)[-1]
        if path.startswith("/v1/") and name in _ENDPOINT_LABELS:
            return name
        return "other"

    def _metricsz(self, service: MapService,
                  params: Dict[str, List[str]],
                  request_id: Optional[str]) -> None:
        try:
            fmt = _single(params, "format")
        except QueryError as exc:
            self._send(exc.status, {"error": str(exc)}, service.digest,
                       request_id=request_id)
            return
        if fmt in (None, "text"):
            self._send_bytes(200, service.metrics_text().encode("utf-8"),
                             "text/plain; version=0.0.4; charset=utf-8",
                             service.digest, request_id=request_id)
        elif fmt == "json":
            self._send(200, service.metrics_snapshot(), service.digest,
                       request_id=request_id)
        else:
            self._send(400, {"error": f"unknown format {fmt!r} "
                                      "(expected text or json)"},
                       service.digest, request_id=request_id)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._send(405, {"error": "only GET is supported"},
                   self.server.service.digest)

    do_PUT = do_DELETE = do_PATCH = do_POST

    def _route(self, service: MapService, path: str,
               params: Dict[str, List[str]]) -> Dict[str, Any]:
        if path == "/v1/health":
            return service.health()
        if path == "/v1/healthz":
            return service.alive()
        if path == "/v1/readyz":
            return service.ready()
        if path == "/v1/map":
            return service.map_summary()
        if path == "/v1/cdf":
            raw = _single(params, "as", required=True)
            asns = [_int_param(part, "as")
                    for part in raw.split(",") if part]
            weighted = _bool_param(_single(params, "weighted"), "weighted")
            return service.cdf(asns, weighted=weighted)
        if path == "/v1/outage":
            asn = _single(params, "asn")
            hypergiant = _single(params, "hypergiant")
            return service.outage(
                asn=None if asn is None else _int_param(asn, "asn"),
                hypergiant=hypergiant)
        if path == "/v1/anycast":
            service_key = _single(params, "service", required=True)
            prefix = _int_param(_single(params, "prefix", required=True),
                                "prefix")
            k_raw = _single(params, "k")
            k = 3 if k_raw is None else _int_param(k_raw, "k")
            return service.anycast(service_key, prefix, k=k)
        raise QueryError(404, f"unknown endpoint {path!r}")

    def _send(self, status: int, payload: Dict[str, Any],
              digest: str, retry_after: Optional[float] = None,
              request_id: Optional[str] = None) -> None:
        self._send_bytes(status, json.dumps(payload).encode(),
                         "application/json", digest,
                         retry_after=retry_after, request_id=request_id)

    def _send_bytes(self, status: int, body: bytes, content_type: str,
                    digest: str, retry_after: Optional[float] = None,
                    request_id: Optional[str] = None) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Map-Digest", digest)
            if request_id is not None:
                self.send_header("X-Request-Id", request_id)
            if retry_after is not None:
                # Whole seconds, rounded up — never tell a client to
                # retry immediately into the same refill window.
                self.send_header("Retry-After",
                                 str(max(1, math.ceil(retry_after))))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The real client went away mid-response; account for it
            # rather than letting the handler thread die noisily.
            self.server.service._recorder.count(
                "serve.http.client_disconnects")
            self.close_connection = True
