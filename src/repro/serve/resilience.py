"""Overload protection and lifecycle primitives for the query service.

The serving path gets the same "defined behavior under bad weather"
treatment the build path got from :mod:`repro.faults` (PR 2):

* :class:`AdmissionGate` — a concurrency bound plus a deterministic
  token-bucket rate limit with a bounded wait budget. A request past
  capacity is *shed* with a ``Retry-After`` hint (HTTP 429) instead of
  queueing unboundedly inside the stdlib server; an admitted request
  carries a :class:`Deadline` budget and is abandoned at the next
  cancellation checkpoint once the budget expires (HTTP 504). Everything
  is surfaced as ``serve.admit.{offered,admitted,shed,deadline_expired}``
  counters in the run manifest (format 4).
* :class:`CircuitBreaker` — consecutive-failure trip wire with
  exponential backoff, used by the artefact watcher so a broken rewrite
  loop polls gently instead of at full rate
  (``serve.watch.circuit_{open,close}`` counters).
* :class:`VirtualClock` — an injectable clock/sleep pair. The gate and
  breaker take their notion of time from it, which is what makes chaos
  runs (:mod:`repro.serve.chaos`) bit-reproducible: simulated seconds
  advance identically on every run of the same seed.

Nothing here imports the transport: the HTTP layer maps
:class:`AdmissionError` to 429 + ``Retry-After`` and
:class:`DeadlineExpired` to 504, but the primitives are plain objects a
test can drive on a virtual clock without sockets.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..obs.recorder import NULL_RECORDER, Recorder, resolve_recorder
from .service import QueryError


class AdmissionError(QueryError):
    """Request shed at the admission gate (HTTP 429).

    ``retry_after`` is the gate's estimate, in seconds, of when capacity
    frees up — the token bucket's refill horizon, never negative. The
    HTTP layer rounds it up into a ``Retry-After`` header; the loadgen's
    backoff client honors it.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(429, message)
        self.retry_after = max(0.0, float(retry_after))


class DeadlineExpired(QueryError):
    """An admitted request outlived its deadline budget (HTTP 504).

    Raised from a cancellation checkpoint (:meth:`Deadline.check`); the
    computation is abandoned there, so a batched query stops burning
    capacity on targets nobody will receive.
    """

    def __init__(self, message: str = "deadline expired") -> None:
        super().__init__(504, message)


class VirtualClock:
    """A deterministic clock: ``sleep`` advances time instead of waiting.

    Injected into :class:`AdmissionGate`, :class:`CircuitBreaker` and the
    chaos harness so a whole overload scenario runs in simulated seconds
    — bit-identical across runs and fast enough for tier-1 tests.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current simulated time in seconds."""
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        """Advance simulated time; never blocks."""
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (negative is a no-op)."""
        with self._lock:
            self._now += max(0.0, float(seconds))


class Deadline:
    """A per-request time budget with explicit cancellation checkpoints.

    Compute paths call :meth:`check` at natural abandonment points (per
    cached answer, per batch target); past the budget the checkpoint
    raises :class:`DeadlineExpired` and the rest of the computation is
    skipped. ``None`` budget means unbounded (checkpoints are no-ops).
    """

    def __init__(self, budget_s: Optional[float], clock=None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self.budget_s = None if budget_s is None else float(budget_s)
        self.expires_at = (None if self.budget_s is None
                           else self._now() + self.budget_s)

    def _now(self) -> float:
        clock = self._clock
        return clock.now() if hasattr(clock, "now") else clock()

    def remaining(self) -> Optional[float]:
        """Seconds left in the budget (None when unbounded)."""
        if self.expires_at is None:
            return None
        return self.expires_at - self._now()

    @property
    def expired(self) -> bool:
        """True once the budget has run out."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self) -> None:
        """Cancellation checkpoint: raise if the budget is gone."""
        if self.expired:
            raise DeadlineExpired(
                f"deadline of {self.budget_s:.3f}s expired")


class TokenBucket:
    """A deterministic token bucket: ``rate`` tokens/second, ``burst``
    capacity, refilled lazily from the injected clock.

    Not thread-safe on its own — :class:`AdmissionGate` serialises calls
    under its lock. Determinism: the token count is a pure function of
    the acquisition times, so identical request schedules (virtual-time
    chaos runs) shed identically.
    """

    def __init__(self, rate: float, burst: int, clock=None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(int(burst))
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._updated = self._now()

    def _now(self) -> float:
        clock = self._clock
        return clock.now() if hasattr(clock, "now") else clock()

    def _refill(self) -> None:
        now = self._now()
        if now > self._updated:
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self) -> float:
        """Take one token if available.

        Returns 0.0 on success, else the seconds until the next token
        exists — the ``Retry-After`` hint for a shed request.
        """
        self._refill()
        # Epsilon absorbs float error when a caller slept exactly the
        # returned horizon: the refill then lands at 1.0 - ~1e-16
        # tokens, and an exact >= 1.0 test would spin on ever-smaller
        # waits instead of granting.
        if self._tokens >= 1.0 - 1e-9:
            self._tokens = max(0.0, self._tokens - 1.0)
            return 0.0
        return (1.0 - self._tokens) / self.rate


class AdmissionGate:
    """Bounded admission for the serving path.

    A request is admitted when (a) fewer than ``max_inflight`` requests
    are currently inside the gate and (b) the token bucket grants a
    token, possibly after waiting up to ``max_wait_s`` simulated/real
    seconds. Otherwise it is shed with :class:`AdmissionError` carrying
    the refill horizon as the retry hint. Admitted requests receive a
    :class:`Deadline` of ``deadline_s`` seconds.

    Counters (mirrored into the run manifest's ``serve`` section):
    ``serve.admit.offered`` / ``.admitted`` / ``.shed`` /
    ``.deadline_expired``.
    """

    def __init__(self, max_inflight: int = 64,
                 rate: Optional[float] = None, burst: Optional[int] = None,
                 max_wait_s: float = 0.05,
                 deadline_s: Optional[float] = None,
                 recorder: Optional[Recorder] = None,
                 clock=None, sleep=None) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight!r}")
        self.max_inflight = int(max_inflight)
        self.deadline_s = deadline_s
        self.max_wait_s = max(0.0, float(max_wait_s))
        self._clock = clock if clock is not None else time.monotonic
        if sleep is not None:
            self._sleep = sleep
        elif hasattr(self._clock, "sleep"):
            self._sleep = self._clock.sleep
        else:
            self._sleep = time.sleep
        self._bucket = (None if rate is None else TokenBucket(
            rate, burst if burst is not None else max(1, int(rate)),
            clock=self._clock))
        self._recorder = resolve_recorder(recorder)
        self._lock = threading.Lock()
        self._inflight = 0
        self._drained = threading.Condition(self._lock)

    @property
    def inflight(self) -> int:
        """Requests currently inside the gate."""
        with self._lock:
            return self._inflight

    def _shed(self, reason: str, retry_after: float) -> AdmissionError:
        self._recorder.count("serve.admit.shed")
        return AdmissionError(f"{reason}: request shed",
                              retry_after=retry_after)

    def _acquire(self) -> None:
        self._recorder.count("serve.admit.offered")
        waited = 0.0
        while True:
            with self._lock:
                # Concurrency bound first: wait on the release condition
                # (real time — only the threaded server ever fills the
                # gate; the single-threaded chaos harness never blocks
                # here, keeping virtual-time runs deterministic).
                slot_deadline = time.monotonic() + max(
                    0.0, self.max_wait_s - waited)
                while self._inflight >= self.max_inflight:
                    remaining = slot_deadline - time.monotonic()
                    if remaining <= 0:
                        hint = (1.0 / self._bucket.rate
                                if self._bucket is not None
                                else max(self.max_wait_s, 0.05))
                        raise self._shed("over capacity", hint)
                    self._drained.wait(remaining)
                needed = (self._bucket.try_acquire()
                          if self._bucket is not None else 0.0)
                if needed <= 0.0:
                    self._inflight += 1
                    self._recorder.count("serve.admit.admitted")
                    return
            # Token refill horizon: sleep on the injected clock so a
            # virtual-time run waits in simulated seconds.
            if waited + needed > self.max_wait_s:
                raise self._shed("rate limit", needed)
            self._sleep(needed)
            waited += needed

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1
            self._drained.notify_all()

    def admit(self) -> "_Admission":
        """Context manager guarding one request.

        Raises :class:`AdmissionError` (already counted as shed) when the
        request cannot be admitted within the wait budget. On the way
        out, a :class:`DeadlineExpired` escaping the handler is counted
        as ``serve.admit.deadline_expired``.
        """
        return _Admission(self)

    def deadline(self) -> Deadline:
        """A fresh per-request deadline on this gate's clock."""
        return Deadline(self.deadline_s, clock=self._clock)

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until no request is inside the gate (drain support)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True


class _Admission:
    """The context manager :meth:`AdmissionGate.admit` returns."""

    def __init__(self, gate: AdmissionGate) -> None:
        self._gate = gate
        self.deadline: Optional[Deadline] = None

    def __enter__(self) -> "_Admission":
        self._gate._acquire()
        self.deadline = self._gate.deadline()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._gate._release()
        if exc_type is not None and issubclass(exc_type, DeadlineExpired):
            self._gate._recorder.count("serve.admit.deadline_expired")
        return False


class CircuitBreaker:
    """Consecutive-failure circuit with exponential backoff.

    ``threshold`` consecutive failures open the circuit; while open,
    :meth:`backoff_interval` grows exponentially (doubling per further
    failure, capped at ``max_backoff_s``) so the caller polls gently.
    The first success closes it again. Counters:
    ``<prefix>.circuit_open`` / ``<prefix>.circuit_close``.
    """

    def __init__(self, threshold: int = 3, base_backoff_s: float = 1.0,
                 max_backoff_s: float = 60.0,
                 recorder: Optional[Recorder] = None,
                 counter_prefix: str = "serve.watch") -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold!r}")
        self.threshold = int(threshold)
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self._recorder = resolve_recorder(recorder)
        self._prefix = counter_prefix
        self._lock = threading.Lock()
        self._failures = 0

    @property
    def is_open(self) -> bool:
        """True while the circuit is tripped."""
        with self._lock:
            return self._failures >= self.threshold

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success."""
        with self._lock:
            return self._failures

    def record_failure(self) -> None:
        """One more consecutive failure; may open the circuit."""
        with self._lock:
            self._failures += 1
            if self._failures == self.threshold:
                self._recorder.count(f"{self._prefix}.circuit_open")

    def record_success(self) -> None:
        """A success: close the circuit if it was open."""
        with self._lock:
            if self._failures >= self.threshold:
                self._recorder.count(f"{self._prefix}.circuit_close")
            self._failures = 0

    def backoff_interval(self, default: float) -> float:
        """The caller's poll interval right now.

        ``default`` while closed; exponential in the failures past the
        threshold while open, capped at ``max_backoff_s`` (and never
        below ``default`` — backoff may only slow polling down).
        """
        with self._lock:
            if self._failures < self.threshold:
                return default
            exponent = self._failures - self.threshold
            backoff = self.base_backoff_s * (2.0 ** exponent)
            return max(default, min(backoff, self.max_backoff_s))


def serve_manifest_section(recorder: Recorder,
                           telemetry=None) -> Optional[Dict[str, Any]]:
    """The manifest's ``serve`` section (format ≥ 4) from a recorder.

    Collects the serving-path counters into the nested shape
    ``{admit: {...}, http: {...}, watch: {...}, chaos: {...}}`` that
    :func:`repro.obs.manifest.validate_manifest` checks. With a
    :class:`repro.obs.live.LiveTelemetry` attached, its histogram
    summaries land in a ``latency`` subsection (format 5). Returns
    ``None`` when the recorder saw no admission gate at all (e.g. a
    plain build) *and* no telemetry samples were recorded, so old-style
    manifests stay byte-identical.
    """
    if recorder is NULL_RECORDER or not recorder.enabled:
        return None
    counters = recorder.counters

    def take(name: str) -> int:
        return int(counters.get(name, 0))

    latency = telemetry.manifest_section() if telemetry is not None \
        else None
    if latency is None \
            and not any(name.startswith("serve.admit.")
                        for name in counters):
        return None
    section: Dict[str, Any] = {
        "admit": {
            "offered": take("serve.admit.offered"),
            "admitted": take("serve.admit.admitted"),
            "shed": take("serve.admit.shed"),
            "deadline_expired": take("serve.admit.deadline_expired"),
        },
        "http": {
            "timeouts": take("serve.http.timeouts"),
            "client_disconnects": take("serve.http.client_disconnects"),
        },
        "watch": {
            "errors": take("serve.watch.errors"),
            "circuit_open": take("serve.watch.circuit_open"),
            "circuit_close": take("serve.watch.circuit_close"),
        },
    }
    chaos = {name.split(".", 2)[2]: int(value)
             for name, value in sorted(counters.items())
             if name.startswith("serve.chaos.")}
    if chaos:
        section["chaos"] = chaos
    if latency is not None:
        section["latency"] = latency
    return section
