"""Hot-reload: watch a map artefact and swap it into a live service.

``--delta`` rebuilds (see ``docs/delta.md``) end by rewriting the map
JSON artefact. :class:`ArtefactWatcher` polls that path; when the file's
(mtime, size) signature changes it reloads the artefact into a fresh
:class:`~repro.core.mapstore.MapStore` and calls
:meth:`~repro.serve.service.MapService.swap`. The swap is a single
reference assignment under the service lock, so in-flight requests
finish against the store they started with and the next request answers
from the new map — no request is ever dropped or mixed across digests.

A broken artefact (mid-write, truncated, wrong format) never takes the
service down: the reload error is counted (``serve.watch.errors``),
reported to stderr, and the old store keeps serving. The failed
signature is *not* recorded, so the next poll retries — a mid-write
file heals on its own — but consecutive failures trip a
:class:`~repro.serve.resilience.CircuitBreaker`
(``serve.watch.circuit_open``) that backs the poll interval off
exponentially, so a persistently broken rewrite loop costs retries at a
gentle, bounded rate instead of one per poll tick. The first successful
reload closes the circuit (``serve.watch.circuit_close``) and restores
the configured interval.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Optional, Tuple

from .resilience import CircuitBreaker
from .service import MapArtefactError, MapService, load_store


class ArtefactWatcher(threading.Thread):
    """Daemon thread polling one artefact path into one service.

    ``scenario`` supplies the ground-truth context each reload re-attaches
    (prefix table, atlas, AS graph) — the same context the initial
    :func:`~repro.serve.service.load_store` used, so a reloaded map
    answers exactly as a fresh serve of the same artefact would.

    ``circuit`` may be a pre-built breaker (tests inject one with a
    virtual recorder); by default one is created against the service's
    recorder with ``circuit_threshold`` consecutive failures and a base
    backoff of twice the poll interval. ``chaos`` is an optional
    :class:`~repro.serve.chaos.ChaosEngine` whose ``artefact_corrupted``
    draw simulates a corrupt rewrite landing mid-swap.
    """

    def __init__(self, service: MapService, path: str, scenario,
                 interval: float = 2.0,
                 circuit: Optional[CircuitBreaker] = None,
                 circuit_threshold: int = 3,
                 chaos=None) -> None:
        super().__init__(name="repro-serve-watch", daemon=True)
        self._service = service
        self._path = path
        self._scenario = scenario
        self._interval = max(0.05, float(interval))
        self._chaos = chaos
        self.circuit = circuit if circuit is not None else CircuitBreaker(
            threshold=circuit_threshold,
            base_backoff_s=self._interval * 2,
            recorder=service._recorder)
        self._halt = threading.Event()
        self._signature = self._stat()

    def _stat(self) -> Optional[Tuple[float, int]]:
        try:
            stat = os.stat(self._path)
        except OSError:
            return None
        return (stat.st_mtime, stat.st_size)

    def poll_interval(self) -> float:
        """Seconds until the next poll: the configured interval while
        the circuit is closed, its exponential backoff while open."""
        return self.circuit.backoff_interval(self._interval)

    def poll_once(self) -> bool:
        """One poll step: reload and swap if the artefact changed.

        Returns True when a new digest was swapped in. Exposed so tests
        (and the CI smoke job) can drive the watcher deterministically
        without sleeping.
        """
        signature = self._stat()
        if signature is None or signature == self._signature:
            return False
        recorder = self._service._recorder
        try:
            store = load_store(self._path, self._scenario)
            if self._chaos is not None and \
                    self._chaos.artefact_corrupted():
                raise MapArtefactError(
                    "chaos: artefact corrupted mid-swap")
        except MapArtefactError as exc:
            # Keep the old signature so the next poll retries; the
            # circuit breaker bounds how fast those retries come.
            recorder.count("serve.watch.errors")
            self.circuit.record_failure()
            print(f"serve: artefact reload failed, keeping map "
                  f"{self._service.store.short_digest}: {exc}",
                  file=sys.stderr)
            return False
        self._signature = signature
        self.circuit.record_success()
        if self._service.swap(store):
            print(f"serve: hot-swapped map {store.short_digest} "
                  f"from {self._path}", file=sys.stderr)
            return True
        return False

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the thread to exit and join it (bounded by ``timeout``).

        Joining closes the shutdown race: after ``stop()`` returns no
        ``poll_once`` can be mid-flight against a torn-down service.
        Safe to call from any thread (including before ``start()``),
        except the watcher thread itself.
        """
        self._halt.set()
        if self.is_alive() and threading.current_thread() is not self:
            self.join(timeout)

    def run(self) -> None:
        """Poll until :meth:`stop` (daemon: dies with the process)."""
        while not self._halt.wait(self.poll_interval()):
            self.poll_once()
