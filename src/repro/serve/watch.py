"""Hot-reload: watch a map artefact and swap it into a live service.

``--delta`` rebuilds (see ``docs/delta.md``) end by rewriting the map
JSON artefact. :class:`ArtefactWatcher` polls that path; when the file's
(mtime, size) signature changes it reloads the artefact into a fresh
:class:`~repro.core.mapstore.MapStore` and calls
:meth:`~repro.serve.service.MapService.swap`. The swap is a single
reference assignment under the service lock, so in-flight requests
finish against the store they started with and the next request answers
from the new map — no request is ever dropped or mixed across digests.

A broken artefact (mid-write, truncated, wrong format) never takes the
service down: the reload error is counted (``serve.watch.errors``),
reported to stderr, and the old store keeps serving until the next poll
finds a loadable file.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Optional, Tuple

from .service import MapArtefactError, MapService, load_store


class ArtefactWatcher(threading.Thread):
    """Daemon thread polling one artefact path into one service.

    ``scenario`` supplies the ground-truth context each reload re-attaches
    (prefix table, atlas, AS graph) — the same context the initial
    :func:`~repro.serve.service.load_store` used, so a reloaded map
    answers exactly as a fresh serve of the same artefact would.
    """

    def __init__(self, service: MapService, path: str, scenario,
                 interval: float = 2.0) -> None:
        super().__init__(name="repro-serve-watch", daemon=True)
        self._service = service
        self._path = path
        self._scenario = scenario
        self._interval = max(0.05, float(interval))
        self._stop = threading.Event()
        self._signature = self._stat()

    def _stat(self) -> Optional[Tuple[float, int]]:
        try:
            stat = os.stat(self._path)
        except OSError:
            return None
        return (stat.st_mtime, stat.st_size)

    def poll_once(self) -> bool:
        """One poll step: reload and swap if the artefact changed.

        Returns True when a new digest was swapped in. Exposed so tests
        (and the CI smoke job) can drive the watcher deterministically
        without sleeping.
        """
        signature = self._stat()
        if signature is None or signature == self._signature:
            return False
        self._signature = signature
        recorder = self._service._recorder
        try:
            store = load_store(self._path, self._scenario)
        except MapArtefactError as exc:
            recorder.count("serve.watch.errors")
            print(f"serve: artefact reload failed, keeping map "
                  f"{self._service.store.short_digest}: {exc}",
                  file=sys.stderr)
            return False
        if self._service.swap(store):
            print(f"serve: hot-swapped map {store.short_digest} "
                  f"from {self._path}", file=sys.stderr)
            return True
        return False

    def stop(self) -> None:
        """Ask the thread to exit; it wakes from its poll sleep."""
        self._stop.set()

    def run(self) -> None:
        """Poll until :meth:`stop` (daemon: dies with the process)."""
        while not self._stop.wait(self._interval):
            self.poll_once()
