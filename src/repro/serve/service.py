"""Transport-free query service over a :class:`~repro.core.mapstore.\
MapStore`.

:class:`MapService` is what the HTTP layer, the load generator and the
tests all talk to: plain methods returning JSON-serialisable dicts. It
owns three cross-cutting concerns so the transport does not have to:

* **Answer cache** — a :class:`repro.lru.BoundedLru` keyed by
  ``(map_digest, endpoint, params)``. The digest in the key is the
  hot-swap invalidation: after :meth:`MapService.swap` every lookup
  misses naturally and stale entries age out of the LRU — nothing is
  ever explicitly flushed, so a swap cannot race an in-flight answer.
* **Counters** — ``serve.requests.<endpoint>``, ``serve.errors``,
  ``serve.swaps`` and the cache's ``serve.cache.*`` mirror on the
  attached :class:`repro.obs.Recorder`, so a served build's run manifest
  shows the query mix and the cache hit rate. Counters only: recorder
  *spans* share a stack across threads and belong to the single-threaded
  build path.
* **Locking** — one lock serialises answer computation, so concurrent
  identical queries cannot double-compute (which would make the cache
  counters nondeterministic under the benchmark's seeded replay).
  Answers are array slices over an immutable store; serialising them is
  cheaper than the bookkeeping to avoid it.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..core.mapstore import MapStore
from ..core.uncertainty import coverage_caveats
from ..errors import ReproError, ValidationError
from ..lru import BoundedLru, CacheStats
from ..obs.live import LiveTelemetry, render_prometheus
from ..obs.recorder import Recorder, resolve_recorder

#: Endpoints whose answers are memoized (identity-keyed by map digest).
CACHED_ENDPOINTS = ("cdf", "outage", "anycast", "map")

#: Hard cap on ``?as=`` batch size: a single request cannot monopolise
#: the service by smuggling an unbounded target list past the admission
#: gate (each target is one cached computation).
MAX_CDF_BATCH = 32


class QueryError(ReproError):
    """A query the map cannot answer; carries the HTTP status to emit.

    ``400`` for malformed parameters, ``404`` for entities the map does
    not cover (unknown AS, unmapped service, unknown organisation).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


class MapArtefactError(ReproError):
    """A map artefact that cannot be served: missing file, invalid JSON,
    wrong format version, or prefix ids outside the scenario context."""


def load_store(path: str, scenario) -> MapStore:
    """Load a map artefact from ``path`` into a query-ready store.

    The artefact carries only measurement-derived content (see
    :mod:`repro.core.serialize`); ``scenario`` re-attaches the ground
    truth context cross-component queries need — the prefix→AS table,
    the city atlas, the AS graph. Any unreadable, unparseable or
    incompatible artefact raises :class:`MapArtefactError` with a
    one-line reason.
    """
    from ..core.serialize import map_from_json
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise MapArtefactError(f"cannot read map artefact: {exc}") \
            from None
    try:
        itm = map_from_json(text, atlas=scenario.atlas,
                            prefix_asn=scenario.prefixes.asn_array)
        return MapStore.from_map(itm, graph=scenario.graph)
    except ValidationError as exc:
        raise MapArtefactError(str(exc)) from None


class MapService:
    """Answers the §2 endpoint queries, with caching, counters and an
    atomic hot-swap hook (see module docstring)."""

    def __init__(self, store: MapStore,
                 recorder: Optional[Recorder] = None,
                 cache_entries: int = 4096,
                 gate=None, chaos=None,
                 max_cdf_batch: int = MAX_CDF_BATCH,
                 telemetry: Optional[LiveTelemetry] = None) -> None:
        self._lock = threading.RLock()
        self._store = store
        self._recorder = resolve_recorder(recorder)
        self._cache: BoundedLru = BoundedLru(
            cache_entries, recorder=self._recorder,
            counter_prefix="serve.cache")
        # Optional resilience attachments (see repro.serve.resilience /
        # repro.serve.chaos); both are duck-typed so the core service
        # never imports the modules that build on top of it.
        self.gate = gate
        self.chaos = chaos
        self.max_cdf_batch = int(max_cdf_batch)
        # Live telemetry (latency histograms, rolling window, access
        # log, request ids).  Always present so callers never branch;
        # observation never steers, so a default instance costs a few
        # dict updates per request and changes no answer.
        self.telemetry = (telemetry if telemetry is not None
                          else LiveTelemetry())
        self._draining = threading.Event()
        self._watch_circuit = None
        self._local = threading.local()

    @property
    def store(self) -> MapStore:
        """The store currently answering queries."""
        with self._lock:
            return self._store

    @property
    def digest(self) -> str:
        """Content digest of the currently-served map."""
        return self.store.digest

    def swap(self, store: MapStore) -> bool:
        """Atomically replace the served store; no-op (returns False)
        when ``store`` has the digest already being served.

        Cached answers for the old digest are not flushed — their keys
        can simply never be built again, so they age out of the LRU.
        """
        with self._lock:
            if store.digest == self._store.digest:
                return False
            self._store = store
            self._recorder.count("serve.swaps")
            return True

    def cache_stats(self) -> CacheStats:
        """Counter snapshot of the answer cache."""
        with self._lock:
            return self._cache.cache_stats()

    def flush_cache(self) -> None:
        """Drop every cached answer (the eviction-storm chaos hook).

        Correctness is untouched — every key rebuilds from the immutable
        store — but warm entries recompute, which is exactly the latency
        weather the chaos harness wants to inject.
        """
        with self._lock:
            self._cache.clear()

    # -- lifecycle ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting new requests; in-flight answers complete.

        Called from the SIGTERM/SIGINT handler. Subsequent
        :meth:`admit` calls fail with a 503 ``QueryError`` while the
        transport finishes the handlers already inside the gate.
        """
        self._draining.set()

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` has been called."""
        return self._draining.is_set()

    def attach_watch_circuit(self, breaker) -> None:
        """Let readiness reflect the artefact watcher's circuit state."""
        self._watch_circuit = breaker

    # -- live telemetry ----------------------------------------------------

    def begin_request(self, request_id: Optional[str] = None) -> str:
        """Bind a request id to the calling thread and return it.

        An inbound ``X-Request-Id`` header wins (so a caller can thread
        its own correlation id through); otherwise a fresh sequential
        ``req-<n>`` is assigned.  The id rides the thread through
        admission → cache → compute and back out on the response.
        """
        rid = request_id or self.telemetry.next_request_id()
        self._local.request_id = rid
        return rid

    @property
    def current_request_id(self) -> Optional[str]:
        """The id bound to the calling thread's in-flight request."""
        return getattr(self._local, "request_id", None)

    def end_request(self) -> None:
        self._local.request_id = None

    def metrics_snapshot(self) -> Dict[str, Any]:
        """``/v1/metricsz?format=json``: full telemetry snapshot."""
        return {
            "digest": self.digest,
            "draining": self.draining,
            "counters": dict(self._recorder.counters),
            "gauges": dict(self._recorder.gauges),
            "latency": self.telemetry.latency_snapshot(),
            "window": self.telemetry.window_snapshot(),
        }

    def metrics_text(self) -> str:
        """``/v1/metricsz``: Prometheus text exposition (format 0.0.4)."""
        return render_prometheus(dict(self._recorder.counters),
                                 dict(self._recorder.gauges),
                                 self.telemetry,
                                 digest=self.digest,
                                 draining=self.draining)

    @contextlib.contextmanager
    def admit(self) -> Iterator[None]:
        """Admission guard for one request (the overload front door).

        Raises a 503 ``QueryError`` while draining and
        :class:`~repro.serve.resilience.AdmissionError` (429) when the
        gate sheds; otherwise arms the per-request deadline the
        computation checkpoints against. A service without a gate admits
        everything with an unbounded deadline.
        """
        if self._draining.is_set():
            self._recorder.count("serve.admit.drained")
            raise QueryError(503, "service is draining")
        if self.gate is None:
            yield
            return
        with self.gate.admit() as admission:
            self._local.deadline = admission.deadline
            try:
                yield
            finally:
                self._local.deadline = None

    def alive(self) -> Dict[str, Any]:
        """``/v1/healthz``: pure liveness — the process answers."""
        self._recorder.count("serve.requests.healthz")
        return {"status": "alive"}

    def ready(self) -> Dict[str, Any]:
        """``/v1/readyz``: should this replica receive traffic?

        Ready means a map is loaded, the service is not draining, and
        the artefact watcher's circuit (when one is attached) is closed.
        The transport maps a not-ok status to HTTP 503.
        """
        self._recorder.count("serve.requests.readyz")
        reasons = []
        if self._draining.is_set():
            reasons.append("draining")
        circuit = self._watch_circuit
        if circuit is not None and circuit.is_open:
            reasons.append("watch circuit open")
        return {"status": "ok" if not reasons else "unavailable",
                "digest": self.digest,
                "reasons": reasons}

    # -- endpoints ---------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``/v1/health``: liveness plus the served digest (not cached)."""
        with self._lock:
            self._recorder.count("serve.requests.health")
            return {"status": "ok",
                    "digest": self._store.digest,
                    "format_version": self._store.format_version}

    def map_summary(self) -> Dict[str, Any]:
        """``/v1/map``: identity, sizes and honesty labels of the served
        map — digest, format version, seed, component sizes, degraded
        components and their coverage caveats (§4.2)."""
        return self._answer("map", (), self._compute_map_summary)

    def cdf(self, asns: Sequence[int],
            weighted: Optional[bool] = None) -> Dict[str, Any]:
        """``/v1/cdf``: AS-path-length CDFs to each target AS, weighted
        by client activity (§2.1's "weighted CDF for AS X").

        ``asns`` may name several targets (the batched
        ``?as=64500,64501`` form); each target is answered — and cached —
        independently, so a batch warms the same entries the single-AS
        queries would. ``weighted`` selects one curve (``True``/``False``)
        or both plus their contrast (``None``).
        """
        if not asns:
            raise QueryError(400, "no target AS given")
        if len(asns) > self.max_cdf_batch:
            raise QueryError(
                400, f"batch of {len(asns)} targets exceeds the "
                     f"limit of {self.max_cdf_batch}")
        results = [self._answer("cdf", (int(asn), weighted),
                                lambda a=int(asn): self._compute_cdf(
                                    a, weighted))
                   for asn in asns]
        return {"digest": self.digest, "results": results}

    def outage(self, asn: Optional[int] = None,
               hypergiant: Optional[str] = None) -> Dict[str, Any]:
        """``/v1/outage``: blast radius of losing one AS (``asn=``) or a
        hypergiant's whole serving footprint (``hypergiant=``), §2.1's
        outage question.

        A hypergiant resolves to its on-net site ASes; one AS answers
        with the full single-AS report, several aggregate into the
        region-outage form.
        """
        if (asn is None) == (hypergiant is None):
            raise QueryError(
                400, "exactly one of asn= and hypergiant= is required")
        return self._answer("outage", (asn, hypergiant),
                            lambda: self._compute_outage(asn, hypergiant))

    def anycast(self, service_key: str, prefix: int,
                k: int = 3) -> Dict[str, Any]:
        """``/v1/anycast``: which site serves a client prefix for one
        mapped service, and the k nearest same-organisation alternatives
        (§2.1's anycast-placement question)."""
        if k < 0:
            raise QueryError(400, f"k must be >= 0, got {k}")
        return self._answer("anycast", (service_key, int(prefix), int(k)),
                            lambda: self._compute_anycast(
                                service_key, int(prefix), int(k)))

    # -- computation (store snapshot in hand, lock held) -------------------

    def _answer(self, endpoint: str, params: Tuple,
                compute) -> Dict[str, Any]:
        # Cancellation checkpoint: a batched query abandons its
        # remaining targets the moment the admission deadline runs out
        # (the per-target loop in cdf() re-enters here).
        deadline = getattr(self._local, "deadline", None)
        if deadline is not None:
            deadline.check()
        # Chaos injection point: stalls and eviction storms land before
        # the lock so an injected stall never serialises other handlers.
        chaos = self.chaos
        if chaos is not None:
            chaos.on_answer(self, endpoint)
        with self._lock:
            self._recorder.count(f"serve.requests.{endpoint}")
            key = (self._store.digest, endpoint, params)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            try:
                answer = compute()
            except ValidationError as exc:
                self._recorder.count("serve.errors")
                raise QueryError(404, str(exc)) from None
            except QueryError:
                self._recorder.count("serve.errors")
                raise
            self._cache.put(key, answer)
            return answer

    def _compute_map_summary(self) -> Dict[str, Any]:
        store = self._store
        return {
            "digest": store.digest,
            "format_version": store.format_version,
            "seed": store.seed,
            "counts": store.counts(),
            "techniques": list(store.techniques),
            "route_predictability": store.predictability,
            "degraded_components": store.degraded_components(),
            "caveats": [{
                "component": caveat.component,
                "coverage": caveat.coverage,
                "missing_techniques": list(caveat.missing_techniques),
                "detail": caveat.detail,
            } for caveat in coverage_caveats(store)],
        }

    def _compute_cdf(self, asn: int,
                     weighted: Optional[bool]) -> Dict[str, Any]:
        contrast = self._store.cdf_contrast(asn)
        out: Dict[str, Any] = {"as": asn, "metric": contrast.metric_name,
                               "samples": len(contrast.weighted)}
        if weighted is not True:
            out["unweighted"] = _cdf_to_dict(contrast.unweighted)
        if weighted is not False:
            out["weighted"] = _cdf_to_dict(contrast.weighted)
        if weighted is None:
            out["median_shift"] = contrast.median_shift()
        return out

    def _compute_outage(self, asn: Optional[int],
                        hypergiant: Optional[str]) -> Dict[str, Any]:
        store = self._store
        if asn is not None:
            return {"digest": store.digest, "kind": "as",
                    "report": _outage_to_dict(store.outage_report(asn))}
        asns = store.hypergiant_asns(hypergiant)
        if len(asns) == 1:
            report = _outage_to_dict(store.outage_report(asns[0]))
            kind = "as"
        else:
            region = store.region_outage_report(asns)
            report = {
                "asns": list(region.asns),
                "activity_share": region.activity_share,
                "affected_prefix_count": region.affected_prefix_count,
                "affected_services": list(region.affected_services),
                "offnet_orgs_inside": list(region.offnet_orgs_inside),
            }
            kind = "region"
        return {"digest": store.digest, "kind": kind,
                "hypergiant": hypergiant, "asns": list(asns),
                "report": report}

    def _compute_anycast(self, service_key: str, prefix: int,
                         k: int) -> Dict[str, Any]:
        answer = self._store.anycast_answer(service_key, prefix, k=k)
        return {
            "digest": self._store.digest,
            "service": answer.service_key,
            "client_prefix": answer.client_pid,
            "host_prefix": answer.host_pid,
            "host_asn": answer.host_asn,
            "organization": answer.organization,
            "candidates": [{
                "organization": c.organization,
                "prefix_id": c.prefix_id,
                "asn": c.asn,
                "distance_km": c.distance_km,
                "is_offnet": c.is_offnet,
            } for c in answer.candidates],
        }


def _cdf_to_dict(cdf) -> Dict[str, Any]:
    return {"points": [[x, f] for x, f in cdf.points()],
            "median": cdf.median,
            "mean": cdf.mean()}


def _outage_to_dict(report) -> Dict[str, Any]:
    return {
        "asn": report.asn,
        "activity_share": report.activity_share,
        "affected_prefix_count": report.affected_prefix_count,
        "affected_services": list(report.affected_services),
        "offnet_orgs_inside": list(report.offnet_orgs_inside),
        "alternate_transit": report.alternate_transit,
        "rerouted_service_asns": {str(k): v for k, v in
                                  report.rerouted_service_asns.items()},
        "headline": report.headline(),
    }
