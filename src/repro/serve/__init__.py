"""Query service over a built traffic map (the §2 "ask the map" layer).

The paper's position is that a traffic map earns its keep when operators
can query it — weighted CDFs for an AS, outage blast radius, anycast
placement — so this package serves those §2 use-case questions over
plain HTTP/JSON using only the standard library:

* :mod:`repro.serve.service` — :class:`MapService`, the transport-free
  query layer: answers off a read-optimized
  :class:`repro.core.mapstore.MapStore`, memoizes through a bounded LRU
  keyed by map digest, counts everything on a :class:`repro.obs`
  recorder, and hot-swaps stores atomically under live traffic;
* :mod:`repro.serve.http` — the ``ThreadingHTTPServer`` endpoints
  (``/v1/health``, ``/v1/map``, ``/v1/cdf``, ``/v1/outage``,
  ``/v1/anycast``; see ``docs/serving.md``);
* :mod:`repro.serve.watch` — artefact watcher that reloads a map JSON
  written by a ``--delta`` rebuild and swaps it in without dropping
  requests, with a circuit breaker bounding broken-rewrite retries;
* :mod:`repro.serve.resilience` — overload protection: the admission
  gate (429 + ``Retry-After``), per-request deadlines (504), the
  watcher's circuit breaker and the virtual clock that makes chaos
  runs deterministic;
* :mod:`repro.serve.chaos` — seeded serve-side fault injection
  (:data:`repro.faults.SERVE_KINDS`) and the bit-reproducible
  virtual-time overload harness;
* :mod:`repro.serve.loadgen` — seeded query streams (closed- or
  open-loop, with a ``Retry-After``-honoring backoff client) and the
  latency/throughput summaries the serving benchmarks gate on.

``python -m repro serve`` wires the pieces together.
"""

from .chaos import ChaosEngine, run_chaos
from .loadgen import (Query, percentile, replay, replay_http,
                      seeded_queries)
from .resilience import (AdmissionError, AdmissionGate, CircuitBreaker,
                         Deadline, DeadlineExpired, TokenBucket,
                         VirtualClock, serve_manifest_section)
from .service import MapArtefactError, MapService, QueryError, load_store
from .http import QueryServer, serve_http
from .watch import ArtefactWatcher

__all__ = [
    "AdmissionError",
    "AdmissionGate",
    "ArtefactWatcher",
    "ChaosEngine",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExpired",
    "MapArtefactError",
    "MapService",
    "Query",
    "QueryError",
    "QueryServer",
    "TokenBucket",
    "VirtualClock",
    "load_store",
    "percentile",
    "replay",
    "replay_http",
    "run_chaos",
    "seeded_queries",
    "serve_http",
    "serve_manifest_section",
]
