"""Seeded query streams and replay harnesses for the serving layer.

The benchmark (``benchmarks/test_bench_serve.py``) and the CI smoke job
need realistic, *reproducible* load: :func:`seeded_queries` draws a
query mix from the served store's own keys (real route targets, mapped
services, covered client prefixes) using :func:`repro.rand.substream`,
so the same seed against the same map yields byte-identical streams —
which is what makes the answer-cache hit counters deterministic and
gateable.

:func:`replay` drives a :class:`~repro.serve.service.MapService`
in-process (measures the query layer alone); :func:`replay_http` drives
a running server over ``urllib`` (measures the full transport), either
closed-loop (next request waits for the previous answer) or open-loop
(``open_loop_rate``: seeded Poisson arrivals fire on schedule no matter
how slow the server is — the arrival pattern overload actually has).
Shed requests (HTTP 429) are retried with client-side jittered
exponential backoff that honors the server's ``Retry-After`` hint.

Both replays return the same summary shape: query counts, the outcome
split (``http_errors`` / ``shed`` / ``retries``), wall time, qps
(completed and errored round trips only — shed requests never count
toward throughput), and latency percentiles in milliseconds.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mapstore import MapStore
from ..rand import substream
from .resilience import AdmissionError, DeadlineExpired
from .service import MapService, QueryError

#: Relative odds of each endpoint in a seeded stream. CDF dominates (it
#: is the paper's headline query), health is the keep-alive noise floor.
ENDPOINT_MIX: Tuple[Tuple[str, int], ...] = (
    ("cdf", 5), ("anycast", 3), ("outage", 2), ("map", 1), ("health", 1),
)


@dataclass(frozen=True)
class Query:
    """One generated request: an endpoint name plus its parameters."""

    endpoint: str
    params: Tuple[Tuple[str, str], ...]

    def url_path(self) -> str:
        """The ``/v1/...`` path+query form of this query."""
        query = urllib.parse.urlencode(list(self.params))
        return f"/v1/{self.endpoint}" + (f"?{query}" if query else "")


def seeded_queries(store: MapStore, n: int,
                   seed: int = 0) -> List[Query]:
    """``n`` queries drawn from the store's own keys, deterministically
    in ``(store content, n, seed)``.

    Batched CDF queries (2–4 targets) appear alongside single-target
    ones, and a bounded key pool guarantees repeats, so replays exercise
    both the batch path and the answer cache.
    """
    rng = substream(seed, "serve", "loadgen")
    targets = [int(a) for a in store.route_targets()]
    services = list(store.service_keys)
    orgs = list(store.organizations)
    clients: List[Tuple[str, int]] = []
    for key in services[:8]:
        svc = store._svc_index[key]
        for pid in store.svc_clients[svc][:32]:
            clients.append((key, int(pid)))

    queries: List[Query] = []
    names = [name for name, __ in ENDPOINT_MIX]
    odds = [float(weight) for __, weight in ENDPOINT_MIX]
    probabilities = [w / sum(odds) for w in odds]
    for __ in range(n):
        endpoint = names[int(rng.choice(len(names), p=probabilities))]
        params: Tuple[Tuple[str, str], ...] = ()
        if endpoint == "cdf" and targets:
            batch = int(rng.integers(1, 5))
            chosen = rng.choice(len(targets), size=min(batch, len(targets)),
                                replace=False)
            value = ",".join(str(targets[int(i)]) for i in sorted(chosen))
            params = (("as", value),)
        elif endpoint == "anycast" and clients:
            key, pid = clients[int(rng.integers(0, len(clients)))]
            params = (("service", key), ("prefix", str(pid)),
                      ("k", str(int(rng.integers(1, 5)))))
        elif endpoint == "outage":
            if orgs and rng.random() < 0.5:
                org = orgs[int(rng.integers(0, len(orgs)))]
                params = (("hypergiant", org),)
            elif targets:
                params = (("asn",
                           str(targets[int(rng.integers(0,
                                                        len(targets)))])),)
        queries.append(Query(endpoint=endpoint, params=params))
    return queries


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-quantile of ``values`` by linear interpolation between
    the closest order statistics (numpy's default "linear" method).

    Interpolating (rather than rounding to the nearest rank, which this
    replaced) keeps client-side percentiles within one bucket width of
    the server-side :class:`repro.obs.live.Histogram` quantiles on
    identical samples — the agreement is locked by a shared fixture
    test, so the two latency sources cannot silently diverge.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = min(1.0, max(0.0, float(p))) * (len(ordered) - 1)
    lower = int(position)
    upper = min(len(ordered) - 1, lower + 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def _summary(latencies_ns: List[int], wall_seconds: float,
             http_errors: int = 0, shed: int = 0,
             retries: int = 0) -> Dict[str, Any]:
    ordered = sorted(latencies_ns)
    # Shed requests never produced an answer, so they carry no latency
    # sample and are excluded from throughput.
    count = len(ordered)
    return {
        "queries": count + shed,
        "http_errors": http_errors,
        "shed": shed,
        "retries": retries,
        "wall_seconds": wall_seconds,
        "qps": count / wall_seconds if wall_seconds > 0 else 0.0,
        "latency_ms": {
            "p50": percentile(ordered, 0.50) / 1e6,
            "p90": percentile(ordered, 0.90) / 1e6,
            "p99": percentile(ordered, 0.99) / 1e6,
            "max": ordered[-1] / 1e6 if ordered else 0.0,
        },
    }


def _dispatch(service: MapService, query: Query) -> Dict[str, Any]:
    params = dict(query.params)
    if query.endpoint == "health":
        return service.health()
    if query.endpoint == "map":
        return service.map_summary()
    if query.endpoint == "cdf":
        asns = [int(part) for part in params["as"].split(",")]
        return service.cdf(asns)
    if query.endpoint == "outage":
        asn = params.get("asn")
        return service.outage(
            asn=None if asn is None else int(asn),
            hypergiant=params.get("hypergiant"))
    if query.endpoint == "anycast":
        return service.anycast(params["service"], int(params["prefix"]),
                               k=int(params.get("k", 3)))
    raise QueryError(400, f"unknown endpoint {query.endpoint!r}")


def replay(service: MapService,
           queries: Sequence[Query]) -> Dict[str, Any]:
    """Replay a stream against the service in-process; returns the
    latency/throughput summary plus the answer cache's counters.

    With an admission gate attached, shed and deadline-expired requests
    are counted (``shed`` / ``http_errors``) rather than retried — the
    in-process replay is a microbenchmark, not a client."""
    latencies: List[int] = []
    http_errors = 0
    shed = 0
    telemetry = service.telemetry
    started = time.perf_counter()
    for query in queries:
        outcome = "ok"
        t0 = time.perf_counter_ns()
        try:
            with service.admit():
                _dispatch(service, query)
        except AdmissionError:
            telemetry.observe(query.endpoint, "shed",
                              (time.perf_counter_ns() - t0) / 1e9,
                              digest=service.digest)
            shed += 1
            continue
        except (QueryError, DeadlineExpired) as exc:
            outcome = ("deadline" if getattr(exc, "status", None) == 504
                       else "error")
            http_errors += 1
        elapsed_ns = time.perf_counter_ns() - t0
        telemetry.observe(query.endpoint, outcome, elapsed_ns / 1e9,
                          digest=service.digest)
        latencies.append(elapsed_ns)
    summary = _summary(latencies, time.perf_counter() - started,
                       http_errors=http_errors, shed=shed)
    stats = service.cache_stats()
    summary["cache"] = {
        "entries": stats.entries, "hits": stats.hits,
        "misses": stats.misses, "evictions": stats.evictions,
        "hit_rate": stats.hit_rate,
    }
    return summary


def _fetch(url: str, timeout: float, max_attempts: int,
           backoffs: Sequence[float]) -> Tuple[str, Optional[int], int]:
    """One query's HTTP round trips: ``(outcome, latency_ns, retries)``.

    Retries only 429 responses, sleeping the server's ``Retry-After``
    plus this attempt's pre-drawn jittered backoff; any other failure —
    4xx/5xx, torn connection, socket timeout — is terminal. The latency
    sample is the *final* attempt's round trip (backoff wait is client
    policy, not server latency).
    """
    attempt = 1
    retries = 0
    while True:
        t0 = time.perf_counter_ns()
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                json.load(response)
            return "completed", time.perf_counter_ns() - t0, retries
        except urllib.error.HTTPError as exc:
            exc.read()
            if exc.code == 429 and attempt < max_attempts:
                retry_after = float(exc.headers.get("Retry-After") or 0.0)
                time.sleep(retry_after + backoffs[attempt - 1])
                attempt += 1
                retries += 1
                continue
            if exc.code == 429:
                return "shed", None, retries
            return "http_error", time.perf_counter_ns() - t0, retries
        except OSError:
            # URLError, connection reset by a chaos disconnect, timeout.
            return "http_error", time.perf_counter_ns() - t0, retries


def replay_http(base_url: str, queries: Sequence[Query],
                timeout: float = 10.0, max_attempts: int = 1,
                backoff_base_s: float = 0.2, backoff_cap_s: float = 5.0,
                seed: int = 0, open_loop_rate: Optional[float] = None,
                max_workers: int = 32) -> Dict[str, Any]:
    """Replay a stream over HTTP against ``base_url`` (e.g.
    ``http://127.0.0.1:8211``).

    Closed-loop by default (one request at a time, like the original
    replay). With ``open_loop_rate`` set, arrivals follow a seeded
    Poisson schedule at that rate and fire from a thread pool whether or
    not earlier requests have answered — open-loop load, the shape that
    actually overloads a server. ``max_attempts > 1`` enables the
    backoff client: 429 responses are retried after ``Retry-After`` plus
    a seeded jittered exponential backoff (base ``backoff_base_s``,
    doubling per retry, capped at ``backoff_cap_s``).
    """
    n = len(queries)
    jitter = substream(seed, "serve", "loadgen", "backoff")
    steps = max(0, max_attempts - 1)
    # Pre-drawn per-(query, retry) backoffs: deterministic in the seed
    # and safe to read from worker threads.
    scale = np.minimum(backoff_cap_s,
                       backoff_base_s * 2.0 ** np.arange(max(steps, 1)))
    backoffs = (jitter.random((n, steps)) * scale[:steps]
                if steps else np.zeros((n, 0)))
    urls = [base_url.rstrip("/") + query.url_path() for query in queries]

    results: List[Tuple[str, Optional[int], int]] = [None] * n  # type: ignore
    started = time.perf_counter()
    if open_loop_rate is None:
        for i, url in enumerate(urls):
            results[i] = _fetch(url, timeout, max_attempts,
                                backoffs[i].tolist())
    else:
        gaps = substream(seed, "serve", "loadgen", "arrivals") \
            .exponential(1.0 / float(open_loop_rate), size=n)
        offsets = np.cumsum(gaps)
        t0 = time.monotonic()

        def fire(i: int) -> Tuple[str, Optional[int], int]:
            delay = t0 + float(offsets[i]) - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            return _fetch(urls[i], timeout, max_attempts,
                          backoffs[i].tolist())

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            for i, result in enumerate(pool.map(fire, range(n))):
                results[i] = result
    wall = time.perf_counter() - started

    latencies = [lat for __, lat, __r in results if lat is not None]
    return _summary(
        latencies, wall,
        http_errors=sum(1 for kind, __, __r in results
                        if kind == "http_error"),
        shed=sum(1 for kind, __, __r in results if kind == "shed"),
        retries=sum(r for __, __lat, r in results))
