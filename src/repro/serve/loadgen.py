"""Seeded query streams and replay harnesses for the serving layer.

The benchmark (``benchmarks/test_bench_serve.py``) and the CI smoke job
need realistic, *reproducible* load: :func:`seeded_queries` draws a
query mix from the served store's own keys (real route targets, mapped
services, covered client prefixes) using :func:`repro.rand.substream`,
so the same seed against the same map yields byte-identical streams —
which is what makes the answer-cache hit counters deterministic and
gateable.

:func:`replay` drives a :class:`~repro.serve.service.MapService`
in-process (measures the query layer alone); :func:`replay_http` drives
a running server over ``urllib`` (measures the full transport). Both
return the same summary shape: query/error counts, wall time, qps, and
latency percentiles in milliseconds.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..core.mapstore import MapStore
from ..rand import substream
from .service import MapService, QueryError

#: Relative odds of each endpoint in a seeded stream. CDF dominates (it
#: is the paper's headline query), health is the keep-alive noise floor.
ENDPOINT_MIX: Tuple[Tuple[str, int], ...] = (
    ("cdf", 5), ("anycast", 3), ("outage", 2), ("map", 1), ("health", 1),
)


@dataclass(frozen=True)
class Query:
    """One generated request: an endpoint name plus its parameters."""

    endpoint: str
    params: Tuple[Tuple[str, str], ...]

    def url_path(self) -> str:
        """The ``/v1/...`` path+query form of this query."""
        query = urllib.parse.urlencode(list(self.params))
        return f"/v1/{self.endpoint}" + (f"?{query}" if query else "")


def seeded_queries(store: MapStore, n: int,
                   seed: int = 0) -> List[Query]:
    """``n`` queries drawn from the store's own keys, deterministically
    in ``(store content, n, seed)``.

    Batched CDF queries (2–4 targets) appear alongside single-target
    ones, and a bounded key pool guarantees repeats, so replays exercise
    both the batch path and the answer cache.
    """
    rng = substream(seed, "serve", "loadgen")
    targets = [int(a) for a in store.route_targets()]
    services = list(store.service_keys)
    orgs = list(store.organizations)
    clients: List[Tuple[str, int]] = []
    for key in services[:8]:
        svc = store._svc_index[key]
        for pid in store.svc_clients[svc][:32]:
            clients.append((key, int(pid)))

    queries: List[Query] = []
    names = [name for name, __ in ENDPOINT_MIX]
    odds = [float(weight) for __, weight in ENDPOINT_MIX]
    probabilities = [w / sum(odds) for w in odds]
    for __ in range(n):
        endpoint = names[int(rng.choice(len(names), p=probabilities))]
        params: Tuple[Tuple[str, str], ...] = ()
        if endpoint == "cdf" and targets:
            batch = int(rng.integers(1, 5))
            chosen = rng.choice(len(targets), size=min(batch, len(targets)),
                                replace=False)
            value = ",".join(str(targets[int(i)]) for i in sorted(chosen))
            params = (("as", value),)
        elif endpoint == "anycast" and clients:
            key, pid = clients[int(rng.integers(0, len(clients)))]
            params = (("service", key), ("prefix", str(pid)),
                      ("k", str(int(rng.integers(1, 5)))))
        elif endpoint == "outage":
            if orgs and rng.random() < 0.5:
                org = orgs[int(rng.integers(0, len(orgs)))]
                params = (("hypergiant", org),)
            elif targets:
                params = (("asn",
                           str(targets[int(rng.integers(0,
                                                        len(targets)))])),)
        queries.append(Query(endpoint=endpoint, params=params))
    return queries


def _summary(latencies_ns: List[int], errors: int,
             wall_seconds: float) -> Dict[str, Any]:
    ordered = sorted(latencies_ns)

    def percentile(p: float) -> float:
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1,
                   max(0, int(round(p * (len(ordered) - 1)))))
        return ordered[rank] / 1e6

    count = len(ordered)
    return {
        "queries": count,
        "errors": errors,
        "wall_seconds": wall_seconds,
        "qps": count / wall_seconds if wall_seconds > 0 else 0.0,
        "latency_ms": {
            "p50": percentile(0.50),
            "p90": percentile(0.90),
            "p99": percentile(0.99),
            "max": ordered[-1] / 1e6 if ordered else 0.0,
        },
    }


def _dispatch(service: MapService, query: Query) -> Dict[str, Any]:
    params = dict(query.params)
    if query.endpoint == "health":
        return service.health()
    if query.endpoint == "map":
        return service.map_summary()
    if query.endpoint == "cdf":
        asns = [int(part) for part in params["as"].split(",")]
        return service.cdf(asns)
    if query.endpoint == "outage":
        asn = params.get("asn")
        return service.outage(
            asn=None if asn is None else int(asn),
            hypergiant=params.get("hypergiant"))
    if query.endpoint == "anycast":
        return service.anycast(params["service"], int(params["prefix"]),
                               k=int(params.get("k", 3)))
    raise QueryError(400, f"unknown endpoint {query.endpoint!r}")


def replay(service: MapService,
           queries: Sequence[Query]) -> Dict[str, Any]:
    """Replay a stream against the service in-process; returns the
    latency/throughput summary plus the answer cache's counters."""
    latencies: List[int] = []
    errors = 0
    started = time.perf_counter()
    for query in queries:
        t0 = time.perf_counter_ns()
        try:
            _dispatch(service, query)
        except QueryError:
            errors += 1
        latencies.append(time.perf_counter_ns() - t0)
    summary = _summary(latencies, errors, time.perf_counter() - started)
    stats = service.cache_stats()
    summary["cache"] = {
        "entries": stats.entries, "hits": stats.hits,
        "misses": stats.misses, "evictions": stats.evictions,
        "hit_rate": stats.hit_rate,
    }
    return summary


def replay_http(base_url: str, queries: Sequence[Query],
                timeout: float = 10.0) -> Dict[str, Any]:
    """Replay a stream over HTTP against ``base_url`` (e.g.
    ``http://127.0.0.1:8211``); 4xx responses count as errors, and every
    200 body must parse as JSON."""
    latencies: List[int] = []
    errors = 0
    started = time.perf_counter()
    for query in queries:
        url = base_url.rstrip("/") + query.url_path()
        t0 = time.perf_counter_ns()
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                json.load(response)
        except urllib.error.HTTPError as exc:
            exc.read()
            errors += 1
        latencies.append(time.perf_counter_ns() - t0)
    return _summary(latencies, errors, time.perf_counter() - started)
