"""Deterministic serve-side chaos: seeded fault injection for the
serving path, plus a virtual-time harness that replays a whole overload
scenario bit-reproducibly.

The build path has had seeded fault injection since PR 2
(:mod:`repro.faults`); this module points the same machinery at the
query service. A :class:`ChaosEngine` wraps a
:class:`~repro.faults.FaultContext` whose single campaign is ``serve``,
so every injection decision comes from the
``substream(seed, "faults", "serve", <kind>)`` streams — two engines
built from the same plan fire bit-identical schedules, which is the
chaos determinism lock (``tests/test_serve_resilience.py``).

Injection points (the serve-side ``FaultKind``\\ s):

* ``slow_handler`` — :meth:`ChaosEngine.on_answer` stalls before the
  answer computes (simulated seconds on a
  :class:`~repro.serve.resilience.VirtualClock`, real sleep otherwise);
* ``cache_eviction_storm`` — the answer cache is flushed under the
  request, recomputing warm entries;
* ``client_disconnect`` — the transport abandons the response after
  computing it (HTTP: the connection closes without a body);
* ``artefact_corruption`` — the watcher's freshly loaded artefact is
  declared corrupt, exercising the reload-failure circuit.

:func:`run_chaos` is the deterministic driver: a single-threaded
open-loop replay on a virtual clock — seeded Poisson arrivals, shed
requests retried with jittered exponential backoff honoring the gate's
retry hint — whose outcome counts are a pure function of
``(map, queries, plan seed, chaos seed)``.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from ..faults import FaultContext, FaultKind, FaultPlan
from ..obs.recorder import Recorder, resolve_recorder
from ..rand import substream
from .loadgen import Query, _dispatch
from .resilience import AdmissionError, DeadlineExpired, VirtualClock
from .service import MapService, QueryError

#: Campaign name the engine's draws bind to (mirrored onto the recorder
#: as ``faults.serve.*`` counters, like any build campaign).
SERVE_CAMPAIGN = "serve"


class ChaosEngine:
    """Seeded serve-side fault injector (one per service).

    Draws are serialised under a lock: the threaded HTTP server may call
    in concurrently (each run is still seeded, but interleaving follows
    request arrival), while the single-threaded :func:`run_chaos`
    harness gets fully deterministic schedules. Fired injections are
    counted per kind as ``serve.chaos.<kind>`` alongside the
    ``faults.serve.*`` unit/drop bookkeeping.
    """

    def __init__(self, plan: FaultPlan,
                 recorder: Optional[Recorder] = None,
                 clock=None, slow_handler_max_s: float = 0.2) -> None:
        self._context = FaultContext(plan)
        self._recorder = resolve_recorder(recorder)
        if recorder is not None:
            self._context.attach_recorder(self._recorder)
        self._scope = self._context.campaign(SERVE_CAMPAIGN)
        if clock is not None and hasattr(clock, "sleep"):
            self._sleep = clock.sleep
        else:
            self._sleep = time.sleep
        self.slow_handler_max_s = float(slow_handler_max_s)
        self._lock = threading.Lock()

    @property
    def plan(self) -> FaultPlan:
        """The fault plan this engine draws from."""
        return self._context.plan

    def counters(self) -> Dict[str, int]:
        """Fired-injection counts per kind (for tests and summaries)."""
        with self._lock:
            return {kind.value: counters.drops for kind, counters
                    in sorted(self._scope.by_kind.items(),
                              key=lambda item: item[0].value)}

    def _inject(self, kind: FaultKind) -> bool:
        with self._lock:
            fired = self._scope.inject(kind)
        if fired:
            self._recorder.count(f"serve.chaos.{kind.value}")
        return fired

    def on_answer(self, service: MapService, endpoint: str) -> None:
        """Per-answer injection point (called from ``_answer``).

        A slow-handler hit stalls for a seeded fraction of
        ``slow_handler_max_s`` — simulated seconds on a virtual clock,
        a real sleep against a live server — and an eviction storm
        flushes the service's answer cache.
        """
        if self._inject(FaultKind.SLOW_HANDLER):
            with self._lock:
                fraction = self._scope.draw(FaultKind.SLOW_HANDLER)
            self._sleep(self.slow_handler_max_s * fraction)
        if self._inject(FaultKind.CACHE_EVICTION_STORM):
            service.flush_cache()

    def client_disconnect(self) -> bool:
        """Does the simulated client abandon this response?"""
        return self._inject(FaultKind.CLIENT_DISCONNECT)

    def artefact_corrupted(self) -> bool:
        """Did this artefact reload land corrupt (watcher hook)?"""
        return self._inject(FaultKind.ARTEFACT_CORRUPTION)


def run_chaos(service: MapService, queries: Sequence[Query],
              arrival_rate: float, seed: int = 0,
              clock: Optional[VirtualClock] = None,
              max_attempts: int = 4,
              backoff_base_s: float = 0.2,
              backoff_cap_s: float = 5.0) -> Dict[str, Any]:
    """Replay ``queries`` open-loop through a (gated, chaos-armed)
    service on a virtual clock; deterministic in every input.

    Arrivals are Poisson at ``arrival_rate``/second (seeded exponential
    gaps); requests shed by the admission gate are retried up to
    ``max_attempts`` total tries with jittered exponential backoff that
    never undercuts the gate's ``Retry-After`` hint. The clock must be
    the same :class:`VirtualClock` the service's gate and chaos engine
    were built on, so stalls and refills share one timeline.

    Returns outcome counts (``completed``, ``shed``, ``retries``,
    ``giveups``, ``deadline_expired``, ``http_errors``,
    ``disconnects``), the chaos engine's per-kind fires, and the total
    simulated duration.
    """
    clock = clock if clock is not None else VirtualClock()
    arrivals = substream(seed, "serve", "chaos", "arrivals")
    jitter = substream(seed, "serve", "chaos", "backoff")

    # (due time, sequence, query index, attempt) — the sequence number
    # makes heap order total, so simultaneous events pop identically.
    events: List = []
    now = clock.now()
    for index in range(len(queries)):
        now += float(arrivals.exponential(1.0 / arrival_rate))
        heapq.heappush(events, (now, index, index, 1))
    sequence = len(queries)

    outcome = {"queries": len(queries), "completed": 0, "shed": 0,
               "retries": 0, "giveups": 0, "deadline_expired": 0,
               "http_errors": 0, "disconnects": 0}
    # Live telemetry rides the same virtual clock: every attempt is
    # timed in simulated seconds, so histograms are a pure function of
    # the run's inputs and same-seed runs stay bit-identical with
    # telemetry enabled. Observation never feeds back into scheduling.
    telemetry = service.telemetry

    def observe(query: Query, label: str, started: float) -> None:
        telemetry.observe(query.endpoint, label,
                          clock.now() - started,
                          request_id=telemetry.next_request_id(),
                          digest=service.digest)

    while events:
        due, __, index, attempt = heapq.heappop(events)
        clock.advance(due - clock.now())
        query = queries[index]
        started = clock.now()
        try:
            with service.admit():
                _dispatch(service, query)
        except AdmissionError as exc:
            observe(query, "shed", started)
            outcome["shed"] += 1
            if attempt >= max_attempts:
                outcome["giveups"] += 1
                continue
            backoff = min(backoff_cap_s,
                          backoff_base_s * (2.0 ** (attempt - 1)))
            # Full jitter on top of the server's hint: spread retries
            # out without ever retrying into the same refill window.
            delay = exc.retry_after + float(jitter.random()) * backoff
            outcome["retries"] += 1
            heapq.heappush(events,
                           (clock.now() + delay, sequence, index,
                            attempt + 1))
            sequence += 1
            continue
        except DeadlineExpired:
            observe(query, "deadline", started)
            outcome["deadline_expired"] += 1
            continue
        except QueryError:
            observe(query, "error", started)
            outcome["http_errors"] += 1
            continue
        observe(query, "ok", started)
        chaos = service.chaos
        if chaos is not None and chaos.client_disconnect():
            outcome["disconnects"] += 1
            continue
        outcome["completed"] += 1
    outcome["duration_s"] = clock.now()
    if service.chaos is not None:
        outcome["chaos"] = service.chaos.counters()
    return outcome
