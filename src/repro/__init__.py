"""Reproduction of "Towards a traffic map of the Internet" (HotNets 2021).

The package builds a seeded simulated Internet (topology, users, services,
DNS, TLS, routing — :mod:`repro.scenario`), implements every measurement
technique the paper proposes (:mod:`repro.measure`), and assembles them
into the paper's contribution: the Internet Traffic Map
(:mod:`repro.core`).

Quickstart::

    from repro import ScenarioConfig, build_scenario
    from repro.core.builder import MapBuilder

    scenario = build_scenario(ScenarioConfig.small())
    itm = MapBuilder(scenario).build()
    print(itm.summary())
"""

from .config import (DnsConfig, MeasurementConfig, PopulationConfig,
                     ScenarioConfig, ServiceConfig, TopologyConfig)
from .errors import (ConfigError, MeasurementError, ReproError,
                     TopologyError, ValidationError)
from .scenario import Scenario, build_scenario

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "DnsConfig",
    "MeasurementConfig",
    "MeasurementError",
    "PopulationConfig",
    "ReproError",
    "Scenario",
    "ScenarioConfig",
    "ServiceConfig",
    "TopologyConfig",
    "TopologyError",
    "ValidationError",
    "build_scenario",
    "__version__",
]
