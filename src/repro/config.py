"""Scenario configuration.

A :class:`ScenarioConfig` fully determines a simulated Internet: pass the
same config (same seed) to :func:`repro.scenario.build_scenario` twice and
you get bit-identical worlds. Sub-configs group the knobs by subsystem.

Presets:

* :meth:`ScenarioConfig.default` — the paper-scale world used by the
  benchmark harness (~1200 ASes, ~30k routable /24s, 38 countries).
* :meth:`ScenarioConfig.small` — a fast world for unit tests
  (~150 ASes, ~2k /24s, 10 countries).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from .errors import ConfigError


@dataclass(frozen=True)
class TopologyConfig:
    """Sizes and wiring probabilities for the AS-level topology."""

    n_tier1: int = 12
    n_transit: int = 80
    n_eyeball: int = 420
    n_stub: int = 620
    n_research: int = 30
    # Eyeballs multi-home to this many transit providers on average.
    eyeball_provider_mean: float = 1.8
    # Fraction of eyeball ASes a hypergiant peers with directly (Internet
    # flattening, §3.3.2): large hypergiants reach most user networks.
    hypergiant_eyeball_peering: float = 0.45
    # Fraction of transit ASes a hypergiant peers with.
    hypergiant_transit_peering: float = 0.85
    # Probability two eyeball/transit ASes co-located at a facility peer.
    colo_peering_prob: float = 0.18
    # Research networks (root operators, NRENs) peer openly when
    # co-located — a much higher rate than commercial networks.
    research_colo_peering_prob: float = 0.80
    # Facilities per city with facility presence.
    facilities_per_major_city: int = 2
    # Mean number of facilities an eyeball/transit AS joins.
    facility_join_mean: float = 2.5
    # Structural extras for scaled worlds (both default off so historic
    # presets keep their exact wiring): chain each region's transit ASes
    # into a lateral p2p ring, and hang upstream-less countries off their
    # region's transit subtree instead of the global pool.
    transit_region_ring: bool = False
    regional_subtrees: bool = False

    def validate(self) -> None:
        for name in ("n_tier1", "n_transit", "n_eyeball", "n_stub", "n_research"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        for name in ("hypergiant_eyeball_peering", "hypergiant_transit_peering",
                     "colo_peering_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class PopulationConfig:
    """User populations and their distribution over prefixes."""

    # Target number of routable /24 prefixes in the whole world.
    target_prefixes: int = 30_000
    # Zipf exponent for subscriber counts across an ISP's country peers.
    subscriber_zipf_exponent: float = 1.1
    # Log-normal sigma for users-per-prefix dispersion within an AS.
    prefix_dispersion_sigma: float = 0.8
    # Fraction of routable prefixes that host no users (infrastructure,
    # servers, empty allocations) — the false-positive pool for §3.1.2.
    userless_prefix_fraction: float = 0.18
    # Simulated-APNIC estimator noise (log-normal sigma) and coverage.
    apnic_noise_sigma: float = 0.35
    apnic_min_users_covered: float = 2000.0

    def validate(self) -> None:
        if self.target_prefixes < 100:
            raise ConfigError("target_prefixes too small")
        if not 0.0 <= self.userless_prefix_fraction < 1.0:
            raise ConfigError("userless_prefix_fraction must be in [0, 1)")
        if self.apnic_noise_sigma < 0:
            raise ConfigError("apnic_noise_sigma must be >= 0")


@dataclass(frozen=True)
class ServiceConfig:
    """Service catalogue and serving-infrastructure deployment."""

    # Number of long-tail third-party services hosted on clouds.
    n_longtail_services: int = 80
    longtail_zipf_exponent: float = 0.9
    # Off-net deployment: fraction of eyeball ASes (weighted by users) that
    # host an off-net cache, per hypergiant deployment aggressiveness.
    offnet_reach_major: float = 0.38
    offnet_reach_minor: float = 0.15
    # Anycast deployments announce from this many sites.
    anycast_site_count: int = 24
    # Default DNS TTL (seconds) for service records.
    default_dns_ttl: int = 60

    def validate(self) -> None:
        if self.n_longtail_services < 0:
            raise ConfigError("n_longtail_services must be >= 0")
        if self.anycast_site_count < 1:
            raise ConfigError("anycast_site_count must be >= 1")
        if self.default_dns_ttl <= 0:
            raise ConfigError("default_dns_ttl must be positive")


@dataclass(frozen=True)
class DnsConfig:
    """The DNS resolution ecosystem."""

    # Share of client queries sent to Google-Public-DNS-like resolver
    # (paper: GDNS answers 30-35% of DNS queries).
    gdns_query_share_mean: float = 0.32
    gdns_query_share_spread: float = 0.10
    # Number of GDNS PoP locations worldwide.
    gdns_pop_count: int = 24
    # Share of clients running Chromium-based browsers (root-probe source).
    chromium_share: float = 0.70
    # Root server letters and the fraction whose logs are usable
    # (some operators anonymise, §3.1.3).
    root_server_count: int = 13
    roots_with_usable_logs: int = 8
    # Per-user DNS queries per day for a service with unit demand.
    queries_per_user_day: float = 40.0

    def validate(self) -> None:
        if not 0.0 < self.gdns_query_share_mean < 1.0:
            raise ConfigError("gdns_query_share_mean must be in (0, 1)")
        if not 0 < self.roots_with_usable_logs <= self.root_server_count:
            raise ConfigError("roots_with_usable_logs out of range")
        if not 0.0 <= self.chromium_share <= 1.0:
            raise ConfigError("chromium_share must be in [0, 1]")


@dataclass(frozen=True)
class MeasurementConfig:
    """Budgets for the measurement campaigns."""

    # Cache probing: probe rounds in one day, domains from the top-k sites.
    probe_rounds_per_day: int = 16
    probe_top_k_domains: int = 20
    # IP ID monitoring: ping interval in seconds and campaign length.
    ipid_ping_interval_s: int = 900
    ipid_campaign_hours: int = 48
    # Atlas-like vantage points (ASes hosting probes).
    atlas_vantage_points: int = 120
    # Fault-injection retry budget (see repro.faults): attempts per failed
    # operation and base simulated backoff between them. Used when a
    # FaultPlan is handed to the builder without a custom policy.
    fault_retry_attempts: int = 3
    fault_retry_backoff_s: float = 0.5

    def validate(self) -> None:
        if self.probe_rounds_per_day < 1:
            raise ConfigError("probe_rounds_per_day must be >= 1")
        if self.ipid_ping_interval_s < 1:
            raise ConfigError("ipid_ping_interval_s must be >= 1")
        if self.atlas_vantage_points < 1:
            raise ConfigError("atlas_vantage_points must be >= 1")
        if self.fault_retry_attempts < 1:
            raise ConfigError("fault_retry_attempts must be >= 1")
        if self.fault_retry_backoff_s < 0:
            raise ConfigError("fault_retry_backoff_s must be >= 0")


@dataclass(frozen=True)
class ScenarioConfig:
    """Top-level configuration: everything that defines a simulated world."""

    seed: int = 20211110  # HotNets '21 started November 10, 2021.
    country_codes: Optional[Tuple[str, ...]] = None  # None = full atlas
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    services: ServiceConfig = field(default_factory=ServiceConfig)
    dns: DnsConfig = field(default_factory=DnsConfig)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    # Max origin sets kept in the BGP simulator's LRU route cache. Large
    # anycast sweeps touch many origin sets; the bound keeps memory flat
    # (see BgpSimulator.cache_stats()).
    route_cache_entries: int = 256

    def validate(self) -> None:
        self.topology.validate()
        self.population.validate()
        self.services.validate()
        self.dns.validate()
        self.measurement.validate()
        if self.route_cache_entries < 1:
            raise ConfigError("route_cache_entries must be >= 1")

    # -- presets ----------------------------------------------------------

    @classmethod
    def default(cls, seed: int = 20211110) -> "ScenarioConfig":
        """Paper-scale world used by the benchmark harness."""
        return cls(seed=seed)

    @classmethod
    def small(cls, seed: int = 20211110) -> "ScenarioConfig":
        """Fast world for unit tests (builds in well under a second)."""
        return cls(
            seed=seed,
            country_codes=("US", "FR", "DE", "GB", "JP", "KR", "BR", "IN",
                           "ZA", "AU"),
            topology=TopologyConfig(
                n_tier1=4, n_transit=12, n_eyeball=40, n_stub=50,
                n_research=6, facility_join_mean=2.0),
            population=PopulationConfig(target_prefixes=2_000),
            services=ServiceConfig(n_longtail_services=15,
                                   anycast_site_count=8),
            dns=DnsConfig(gdns_pop_count=8),
            measurement=MeasurementConfig(
                probe_rounds_per_day=8, atlas_vantage_points=25),
        )

    @classmethod
    def medium(cls, seed: int = 20211110) -> "ScenarioConfig":
        """Mid-size world: integration tests and quick benchmarks."""
        return cls(
            seed=seed,
            country_codes=("US", "CA", "BR", "GB", "FR", "DE", "NL", "ES",
                           "IT", "RU", "ZA", "NG", "IN", "CN", "JP", "KR",
                           "SG", "AU"),
            topology=TopologyConfig(
                n_tier1=8, n_transit=40, n_eyeball=160, n_stub=220,
                n_research=14),
            population=PopulationConfig(target_prefixes=10_000),
            services=ServiceConfig(n_longtail_services=40,
                                   anycast_site_count=16),
            dns=DnsConfig(gdns_pop_count=14),
            measurement=MeasurementConfig(
                probe_rounds_per_day=12, atlas_vantage_points=60),
        )

    @classmethod
    def scale10(cls, seed: int = 20211110) -> "ScenarioConfig":
        """10x substrate (~12k ASes, ~150k routable /24s, full atlas).

        Prefix count grows sub-linearly with the AS count so the dense
        services-by-prefixes matrices stay within a laptop's memory; the
        region rings / subtrees keep the bigger hierarchy geographic.
        """
        return cls(
            seed=seed,
            topology=TopologyConfig(
                n_tier1=14, n_transit=800, n_eyeball=4_200, n_stub=6_200,
                n_research=38, transit_region_ring=True,
                regional_subtrees=True),
            population=PopulationConfig(target_prefixes=150_000),
            services=ServiceConfig(n_longtail_services=120,
                                   anycast_site_count=36),
            dns=DnsConfig(gdns_pop_count=32),
            measurement=MeasurementConfig(atlas_vantage_points=360),
        )

    @classmethod
    def scale50(cls, seed: int = 20211110) -> "ScenarioConfig":
        """50x substrate (~57k ASes) approaching the real ~75k-AS Internet."""
        return cls(
            seed=seed,
            topology=TopologyConfig(
                n_tier1=16, n_transit=4_000, n_eyeball=21_000,
                n_stub=31_000, n_research=60, transit_region_ring=True,
                regional_subtrees=True),
            population=PopulationConfig(target_prefixes=300_000),
            services=ServiceConfig(n_longtail_services=160,
                                   anycast_site_count=48),
            dns=DnsConfig(gdns_pop_count=40),
            measurement=MeasurementConfig(atlas_vantage_points=600),
        )

    def with_seed(self, seed: int) -> "ScenarioConfig":
        """Same world shape, different random draw."""
        return replace(self, seed=seed)
