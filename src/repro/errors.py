"""Exception hierarchy for the ITM reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Subclasses distinguish configuration problems from
modelling inconsistencies and from misuse of measurement views.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A scenario or component configuration is invalid."""


class TopologyError(ReproError):
    """The AS graph or routing state is inconsistent (e.g. unknown ASN)."""


class MeasurementError(ReproError):
    """A measurement was issued with invalid parameters or against a view
    that cannot answer it (e.g. ECS query for a non-ECS service)."""


class ValidationError(ReproError):
    """Ground-truth validation was asked to score incompatible artefacts."""
