"""Approach 3 of §3.2.2: locating serving infrastructure at fine
granularity.

"The first two approaches uncover IP addresses of serving infrastructure
hosting a particular service, but many use cases need to know the
city/facility of serving infrastructure. Starting points may be
client-centric geolocation [13] and constraint-based localization from
in-facility vantage points [26, 47]."

Two estimators:

* :func:`client_centric_geolocate` — a serving address is near the mass of
  the client prefixes mapped to it (works when an ECS mapping exists);
* :class:`RttGeolocator` — constraint-based: ping from distributed vantage
  points; each RTT bounds the feasible distance, and the candidate city
  violating the constraints least wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..net.geography import City, haversine_km
from ..net.prefixes import PrefixTable
from .atlas import KM_PER_RTT_MS, RTT_FLOOR_MS, AtlasPlatform, VantagePoint


@dataclass(frozen=True)
class GeolocationEstimate:
    """An estimated location with its supporting evidence size."""

    city: City
    evidence_count: int
    method: str


def client_centric_geolocate(client_cities: Sequence[City],
                             candidates: Sequence[City],
                             weights: Optional[Sequence[float]] = None
                             ) -> GeolocationEstimate:
    """Estimate a server's city from the clients mapped to it [13].

    Computes the (weighted) spherical centroid of the client locations and
    snaps it to the nearest candidate city.
    """
    if not client_cities:
        raise MeasurementError("no client locations given")
    if not candidates:
        raise MeasurementError("no candidate cities given")
    if weights is None:
        w = np.ones(len(client_cities))
    else:
        w = np.asarray(list(weights), dtype=float)
        if len(w) != len(client_cities) or (w < 0).any() or w.sum() <= 0:
            raise MeasurementError("invalid weights")
    # Average on the unit sphere to handle longitude wraparound.
    lats = np.radians([c.lat for c in client_cities])
    lons = np.radians([c.lon for c in client_cities])
    x = float((np.cos(lats) * np.cos(lons) * w).sum())
    y = float((np.cos(lats) * np.sin(lons) * w).sum())
    z = float((np.sin(lats) * w).sum())
    norm = math.sqrt(x * x + y * y + z * z)
    if norm <= 0:
        raise MeasurementError("degenerate client distribution")
    centroid_lat = math.degrees(math.asin(z / norm))
    centroid_lon = math.degrees(math.atan2(y, x))
    best = min(candidates, key=lambda c: (
        haversine_km(centroid_lat, centroid_lon, c.lat, c.lon), c.name))
    return GeolocationEstimate(city=best,
                               evidence_count=len(client_cities),
                               method="client-centric")


class RttGeolocator:
    """Constraint-based localisation from distributed pings [26, 47]."""

    def __init__(self, platform: AtlasPlatform,
                 candidates: Sequence[City]) -> None:
        if not candidates:
            raise MeasurementError("no candidate cities")
        self._platform = platform
        self._candidates = list(candidates)

    def locate(self, target_pid: int,
               max_vps: Optional[int] = 40) -> GeolocationEstimate:
        """Ping the target and pick the least-violating candidate city.

        Each RTT sample upper-bounds the distance to the pinging vantage
        point (light cannot be outrun); the score of a candidate is the
        total constraint violation plus a soft fit to the observed RTTs.
        """
        samples = self._platform.ping_from_all(target_pid, max_vps=max_vps)
        if not samples:
            raise MeasurementError("no vantage points answered")
        best_city = None
        best_score = math.inf
        for city in self._candidates:
            violation = 0.0
            fit = 0.0
            for vp, rtt in samples:
                dist = haversine_km(vp.city.lat, vp.city.lon,
                                    city.lat, city.lon)
                bound = max(0.0, (rtt - RTT_FLOOR_MS)) * KM_PER_RTT_MS
                violation += max(0.0, dist - bound)
                fit += abs(dist - bound) * 0.05
            score = violation + fit
            if score < best_score or (score == best_score and best_city and
                                      city.name < best_city.name):
                best_score = score
                best_city = city
        assert best_city is not None
        return GeolocationEstimate(city=best_city,
                                   evidence_count=len(samples),
                                   method="rtt-constraint")

    def locate_many(self, target_pids: Sequence[int],
                    max_vps: Optional[int] = 40
                    ) -> List[Tuple[int, GeolocationEstimate]]:
        return [(pid, self.locate(pid, max_vps=max_vps))
                for pid in target_pids]
