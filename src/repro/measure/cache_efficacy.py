"""Community cache efficacy study (§3.2.3).

"To refine this intuition, it is critical to understand the efficacy of
these caches. A community-driven project could host caches inside
research networks/universities, to measure the cache hit rate under
normal operation and during flash events."

A small but faithful edge-cache simulator: an LRU cache serves a request
stream whose object popularity follows a Zipf law; during a *flash event*
one object's request share spikes. The study reports hit rates in both
regimes — under flash crowds the cache gets *more* effective (one hot
object), which is why custom-URL VOD redirection from nearby caches works
even under load, supporting the paper's §3.2.3 intuition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MeasurementError
from ..lru import BoundedLru, CacheStats
from ..rand import zipf_weights

_SENTINEL = object()


class LruCache:
    """Fixed-capacity LRU cache over opaque object ids.

    A request-oriented face over the repo-wide :class:`repro.lru.BoundedLru`
    (the same implementation behind the ``BgpSimulator`` route cache): one
    ``request`` is a lookup that installs the object on miss.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise MeasurementError("capacity must be >= 1")
        self._lru: "BoundedLru[int, None]" = BoundedLru(capacity)

    def request(self, object_id: int) -> bool:
        """Serve one request; returns True on cache hit."""
        if self._lru.get(object_id, _SENTINEL) is not _SENTINEL:
            return True
        self._lru.put(object_id, None)
        return False

    @property
    def hits(self) -> int:
        return self._lru.cache_stats().hits

    @property
    def misses(self) -> int:
        return self._lru.cache_stats().misses

    @property
    def hit_rate(self) -> float:
        return self._lru.cache_stats().hit_rate

    def cache_stats(self) -> CacheStats:
        """Counter snapshot, same shape as the route cache's."""
        return self._lru.cache_stats()

    def reset_counters(self) -> None:
        self._lru.reset_counters()

    def __len__(self) -> int:
        return len(self._lru)


@dataclass
class CacheEfficacyStudy:
    """Hit rates of a community-hosted edge cache in two regimes."""

    normal_hit_rate: float
    flash_hit_rate: float
    catalog_size: int
    cache_capacity: int

    @property
    def flash_improves_hit_rate(self) -> bool:
        return self.flash_hit_rate > self.normal_hit_rate


def run_cache_efficacy_study(rng: np.random.Generator,
                             catalog_size: int = 10_000,
                             cache_capacity: int = 500,
                             zipf_exponent: float = 0.9,
                             requests_per_phase: int = 60_000,
                             flash_object_share: float = 0.45,
                             warmup_requests: Optional[int] = None
                             ) -> CacheEfficacyStudy:
    """Simulate normal operation, then a flash event, on one cache."""
    if not 0.0 < flash_object_share < 1.0:
        raise MeasurementError("flash_object_share must be in (0, 1)")
    if cache_capacity >= catalog_size:
        raise MeasurementError("cache must be smaller than the catalogue")
    popularity = zipf_weights(catalog_size, zipf_exponent)
    cache = LruCache(cache_capacity)

    warmup = warmup_requests if warmup_requests is not None \
        else cache_capacity * 4
    for object_id in rng.choice(catalog_size, size=warmup, p=popularity):
        cache.request(int(object_id))

    cache.reset_counters()
    for object_id in rng.choice(catalog_size, size=requests_per_phase,
                                p=popularity):
        cache.request(int(object_id))
    normal_rate = cache.hit_rate

    # Flash event: a (previously unpopular) object takes a large share of
    # all requests — a live event or a viral release.
    flash_object = catalog_size - 1
    flash_popularity = popularity * (1.0 - flash_object_share)
    flash_popularity[flash_object] += flash_object_share
    cache.reset_counters()
    for object_id in rng.choice(catalog_size, size=requests_per_phase,
                                p=flash_popularity):
        cache.request(int(object_id))
    flash_rate = cache.hit_rate

    return CacheEfficacyStudy(
        normal_hit_rate=normal_rate, flash_hit_rate=flash_rate,
        catalog_size=catalog_size, cache_capacity=cache_capacity)
