"""Community cache efficacy study (§3.2.3).

"To refine this intuition, it is critical to understand the efficacy of
these caches. A community-driven project could host caches inside
research networks/universities, to measure the cache hit rate under
normal operation and during flash events."

A small but faithful edge-cache simulator: an LRU cache serves a request
stream whose object popularity follows a Zipf law; during a *flash event*
one object's request share spikes. The study reports hit rates in both
regimes — under flash crowds the cache gets *more* effective (one hot
object), which is why custom-URL VOD redirection from nearby caches works
even under load, supporting the paper's §3.2.3 intuition.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MeasurementError
from ..rand import zipf_weights


class LruCache:
    """Fixed-capacity LRU cache over opaque object ids."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise MeasurementError("capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def request(self, object_id: int) -> bool:
        """Serve one request; returns True on cache hit."""
        if object_id in self._entries:
            self._entries.move_to_end(object_id)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[object_id] = None
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class CacheEfficacyStudy:
    """Hit rates of a community-hosted edge cache in two regimes."""

    normal_hit_rate: float
    flash_hit_rate: float
    catalog_size: int
    cache_capacity: int

    @property
    def flash_improves_hit_rate(self) -> bool:
        return self.flash_hit_rate > self.normal_hit_rate


def run_cache_efficacy_study(rng: np.random.Generator,
                             catalog_size: int = 10_000,
                             cache_capacity: int = 500,
                             zipf_exponent: float = 0.9,
                             requests_per_phase: int = 60_000,
                             flash_object_share: float = 0.45,
                             warmup_requests: Optional[int] = None
                             ) -> CacheEfficacyStudy:
    """Simulate normal operation, then a flash event, on one cache."""
    if not 0.0 < flash_object_share < 1.0:
        raise MeasurementError("flash_object_share must be in (0, 1)")
    if cache_capacity >= catalog_size:
        raise MeasurementError("cache must be smaller than the catalogue")
    popularity = zipf_weights(catalog_size, zipf_exponent)
    cache = LruCache(cache_capacity)

    warmup = warmup_requests if warmup_requests is not None \
        else cache_capacity * 4
    for object_id in rng.choice(catalog_size, size=warmup, p=popularity):
        cache.request(int(object_id))

    cache.reset_counters()
    for object_id in rng.choice(catalog_size, size=requests_per_phase,
                                p=popularity):
        cache.request(int(object_id))
    normal_rate = cache.hit_rate

    # Flash event: a (previously unpopular) object takes a large share of
    # all requests — a live event or a viral release.
    flash_object = catalog_size - 1
    flash_popularity = popularity * (1.0 - flash_object_share)
    flash_popularity[flash_object] += flash_object_share
    cache.reset_counters()
    for object_id in rng.choice(catalog_size, size=requests_per_phase,
                                p=flash_popularity):
        cache.request(int(object_id))
    flash_rate = cache.hit_rate

    return CacheEfficacyStudy(
        normal_hit_rate=normal_rate, flash_hit_rate=flash_rate,
        catalog_size=catalog_size, cache_capacity=cache_capacity)
