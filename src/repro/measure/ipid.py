"""IP ID velocity measurement (§3.1.3).

"By pinging a router interface, one can monitor the growth of its counter
over time ... We have observed that the IP ID values of most routers
display diurnal patterns, suggesting that the rate at which the routers
source packets may be proportional to the rate at which they forward
traffic ... We propose measuring IP ID velocity over time (e.g., at peak
time) to estimate the rate at which routers forward user traffic."

The monitor pings interfaces at a fixed interval, unwraps the 16-bit
counter, and computes a velocity time series. Analysis separates
usable counters from randomised-ID interfaces (velocity variance blows
up), extracts a mean velocity (the relative-activity estimate) and a
diurnal amplitude via a 24-hour cosine fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.routers import IPID_MODULUS, RouterInterface
from ..obs.recorder import Recorder, resolve_recorder

IPID_CAMPAIGN = "ipid-monitoring"
SECONDS_PER_DAY = 86_400.0


@dataclass
class IpIdSeries:
    """Raw samples from one interface (None = lost probe)."""

    address: str
    times: np.ndarray
    values: List[Optional[int]]

    def velocity_series(self) -> "Tuple[np.ndarray, np.ndarray]":
        """(midpoint times, velocities in IDs/second), unwrapped mod 2^16.

        Pairs spanning a lost probe are skipped. Velocities are only
        meaningful if the counter advances less than one full wrap per
        sampling interval — routers faster than that alias, as in reality.
        """
        mid_times: List[float] = []
        velocities: List[float] = []
        prev_t: Optional[float] = None
        prev_v: Optional[int] = None
        for t, v in zip(self.times, self.values):
            if v is None:
                prev_t, prev_v = None, None
                continue
            if prev_v is not None:
                delta = (v - prev_v) % IPID_MODULUS
                dt = t - prev_t
                if dt > 0:
                    mid_times.append((t + prev_t) / 2.0)
                    velocities.append(delta / dt)
            prev_t, prev_v = t, v
        return np.asarray(mid_times), np.asarray(velocities)


@dataclass
class IpIdAnalysis:
    """Derived signal for one interface."""

    address: str
    mean_velocity: float          # IDs/second ~ relative forwarded volume
    diurnal_amplitude: float      # fitted 24h cosine amplitude / mean
    fit_residual: float           # RMS residual / mean (counter sanity)
    usable: bool                  # False for randomised-ID interfaces

    @property
    def looks_diurnal(self) -> bool:
        """Whether the velocity shows a credible daily cycle."""
        return self.usable and self.diurnal_amplitude > 0.15


def analyze_series(series: IpIdSeries,
                   unusable_residual: float = 0.35) -> IpIdAnalysis:
    """Fit mean + 24h cosine to the velocity series."""
    times, velocity = series.velocity_series()
    if len(velocity) < 6:
        raise MeasurementError(
            f"{series.address}: too few samples to analyse")
    mean = float(velocity.mean())
    if mean <= 0:
        return IpIdAnalysis(address=series.address, mean_velocity=0.0,
                            diurnal_amplitude=0.0, fit_residual=0.0,
                            usable=False)
    # Least-squares fit: v(t) = a + b*cos(wt) + c*sin(wt).
    omega = 2.0 * math.pi / SECONDS_PER_DAY
    design = np.column_stack([
        np.ones_like(times), np.cos(omega * times), np.sin(omega * times)])
    coef, *_ = np.linalg.lstsq(design, velocity, rcond=None)
    amplitude = float(math.hypot(coef[1], coef[2]) / mean)
    residual = float(np.sqrt(np.mean(
        (velocity - design @ coef) ** 2)) / mean)
    return IpIdAnalysis(
        address=series.address, mean_velocity=mean,
        diurnal_amplitude=amplitude, fit_residual=residual,
        usable=residual < unusable_residual)


class IpIdMonitor:
    """Ping campaign over a set of router interfaces.

    With an active :class:`FaultContext`, injected ``probe_loss`` is
    layered on top of the baseline ping-loss probability: pings that
    exhaust their retries leave holes in the ID series, exactly like
    ordinary loss does.
    """

    def __init__(self, interval_s: int, duration_hours: int,
                 rng: np.random.Generator,
                 loss_probability: float = 0.02,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        if interval_s < 1 or duration_hours < 1:
            raise MeasurementError("invalid campaign timing")
        if not 0.0 <= loss_probability < 1.0:
            raise MeasurementError("invalid loss probability")
        self._interval = interval_s
        self._duration = duration_hours * 3600
        self._rng = rng
        self._loss = loss_probability
        self._faults = faults
        self._recorder = resolve_recorder(recorder)

    def monitor(self, router: RouterInterface,
                start_time: float = 0.0) -> IpIdSeries:
        times = np.arange(start_time, start_time + self._duration,
                          self._interval, dtype=float)
        scope = (self._faults.campaign(IPID_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.PROBE_LOSS):
            delivered = scope.survive_mask(FaultKind.PROBE_LOSS,
                                           len(times))
        else:
            delivered = None
        values: List[Optional[int]] = []
        for i, t in enumerate(times):
            if delivered is not None and not delivered[i]:
                values.append(None)
            elif self._rng.random() < self._loss:
                values.append(None)
            else:
                values.append(router.ipid_at(float(t), rng=self._rng))
        rec = self._recorder
        rec.count(f"measure.{IPID_CAMPAIGN}.pings_sent", len(times))
        rec.count(f"measure.{IPID_CAMPAIGN}.pings_lost",
                  sum(1 for v in values if v is None))
        return IpIdSeries(address=router.address, times=times,
                          values=values)

    def campaign(self, routers: Sequence[RouterInterface],
                 start_time: float = 0.0) -> List[IpIdAnalysis]:
        """Monitor many interfaces and analyse each."""
        with self._recorder.span(f"measure.{IPID_CAMPAIGN}"):
            analyses: List[IpIdAnalysis] = []
            for router in routers:
                series = self.monitor(router, start_time=start_time)
                analyses.append(analyze_series(series))
            self._recorder.count(
                f"measure.{IPID_CAMPAIGN}.interfaces_monitored",
                len(routers))
            return analyses
