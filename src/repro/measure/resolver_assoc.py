"""Associating recursive resolvers with their clients (§3.1.3).

"Since logs capture the address of the recursive resolver (rather than of
the client), we either need to make simplifying assumptions ... or deploy
techniques to associate recursive resolvers with their clients (e.g.,
embedding measurements of the associations in popular pages [43]). Such an
association would enable joining of resolver-based techniques with
client-based techniques."

The campaign embeds a one-pixel measurement in popular pages: each
*sampled page view* resolves a unique per-view hostname, so the
measurement platform observes the pair (client /24 from the HTTP fetch,
resolver that asked the authoritative). Sampling follows real traffic —
busy prefixes are sampled more — so the association is naturally
activity-weighted.

:func:`attribute_rootlog_volume` then uses the association to convert
per-resolver Chromium volumes into per-client-AS activity *without* the
"clients are in their resolver's AS" assumption — including re-attributing
the public-resolver volume that plain root-log crawling must discard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.prefixes import PrefixTable
from ..obs.recorder import Recorder, resolve_recorder
from ..services.dnsinfra import GoogleDnsModel
from .rootlogs import RootLogCrawlResult

RESOLVER_ASSOC_CAMPAIGN = "resolver-association"

# Resolver identity observed at the measurement authoritative: either the
# ISP resolver of some AS, or the shared public DNS service.
PUBLIC_RESOLVER = -1


@dataclass
class ResolverAssociation:
    """Sampled (resolver -> client AS) association weights.

    ``weights[resolver][client_asn]`` is the fraction of the resolver's
    observed page views that came from that client AS. Resolver id is the
    ISP's ASN, or :data:`PUBLIC_RESOLVER` for the public DNS service.
    """

    weights: Dict[int, Dict[int, float]]
    sample_size: int

    def clients_of(self, resolver_id: int) -> Dict[int, float]:
        return dict(self.weights.get(resolver_id, {}))

    def resolver_count(self) -> int:
        return len(self.weights)


class PageMeasurementCampaign:
    """Samples page views to learn resolver-client associations.

    Consumes only public-ish surfaces: the simulated measurement platform
    sees, per sampled view, the client /24 (HTTP side) and the resolver
    that fetched the unique hostname (DNS side). The underlying sampling
    distribution is driven by true per-prefix activity, as real page-view
    sampling would be.
    """

    def __init__(self, prefix_table: PrefixTable, gdns: GoogleDnsModel,
                 view_weights: np.ndarray,
                 rng: np.random.Generator,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        if len(view_weights) != len(prefix_table):
            raise MeasurementError("view weights must cover every prefix")
        total = float(view_weights.sum())
        if total <= 0:
            raise MeasurementError("no page views to sample")
        self._prefixes = prefix_table
        self._gdns = gdns
        self._probabilities = np.asarray(view_weights, dtype=float) / total
        self._rng = rng
        self._faults = faults
        self._recorder = resolve_recorder(recorder)

    def run(self, sample_size: int = 50_000) -> ResolverAssociation:
        with self._recorder.span(f"measure.{RESOLVER_ASSOC_CAMPAIGN}"):
            return self._run(sample_size)

    def _run(self, sample_size: int) -> ResolverAssociation:
        if sample_size < 1:
            raise MeasurementError("sample_size must be positive")
        pids = self._rng.choice(len(self._prefixes), size=sample_size,
                                p=self._probabilities)
        use_gdns = self._rng.random(sample_size) < \
            self._gdns.gdns_share[pids]
        scope = (self._faults.campaign(RESOLVER_ASSOC_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.RESOLVER_TIMEOUT):
            # The DNS side of a sampled view timing out loses the pair:
            # the platform never sees which resolver fetched the hostname.
            observed = scope.survive_mask(FaultKind.RESOLVER_TIMEOUT,
                                          sample_size)
            if not observed.any():
                raise MeasurementError(
                    "every sampled page view lost its DNS side")
            pids = pids[observed]
            use_gdns = use_gdns[observed]
        rec = self._recorder
        rec.count(f"measure.{RESOLVER_ASSOC_CAMPAIGN}.views_sampled",
                  sample_size)
        rec.count(f"measure.{RESOLVER_ASSOC_CAMPAIGN}.pairs_observed",
                  len(pids))
        asns = self._prefixes.asn_array[pids]
        counts: Dict[int, Dict[int, float]] = {}
        for pid, asn, via_gdns in zip(pids, asns, use_gdns):
            asn = int(asn)
            if via_gdns or self._gdns.outsourced_by_asn.get(asn, False):
                resolver = PUBLIC_RESOLVER
            else:
                resolver = asn   # the ISP resolver announces the ISP's ASN
            counts.setdefault(resolver, {})
            counts[resolver][asn] = counts[resolver].get(asn, 0.0) + 1.0
        weights: Dict[int, Dict[int, float]] = {}
        for resolver, clients in counts.items():
            total = sum(clients.values())
            weights[resolver] = {asn: c / total
                                 for asn, c in clients.items()}
        return ResolverAssociation(weights=weights,
                                   sample_size=sample_size)


def attribute_rootlog_volume(crawl: RootLogCrawlResult,
                             association: ResolverAssociation,
                             min_volume: float = 1.0
                             ) -> Dict[int, float]:
    """Per-client-AS activity from root logs + the learned association.

    ISP-resolver volume is spread over that resolver's observed client
    ASes; the public-resolver aggregate — unattributable to plain root-log
    crawling — is spread over the public resolver's client mix. The result
    covers networks the same-AS assumption must miss (§3.1.3's promised
    join of resolver-based and client-based techniques).
    """
    activity: Dict[int, float] = {}

    def spread(volume: float, clients: Dict[int, float]) -> None:
        for asn, weight in clients.items():
            activity[asn] = activity.get(asn, 0.0) + volume * weight

    for resolver_asn, volume in crawl.volume_by_as.items():
        clients = association.clients_of(resolver_asn)
        if clients:
            spread(volume, clients)
        else:
            # Unsampled resolver: fall back to the same-AS assumption.
            activity[resolver_asn] = activity.get(resolver_asn, 0.0) \
                + volume
    public_clients = association.clients_of(PUBLIC_RESOLVER)
    if public_clients and crawl.public_resolver_volume > 0:
        spread(crawl.public_resolver_volume, public_clients)
    return {asn: v for asn, v in activity.items() if v >= min_volume}
