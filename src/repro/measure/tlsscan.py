"""Approach 1 of §3.2.2: TLS scans to identify serving infrastructure.

"TLS certificates validate the owner of a resource. With the recent
dramatic increase in web encryption, we used TLS scans to identify the
global serving infrastructure of large content providers and CDNs [25]."

The scanner connects to every routable /24 (one representative address per
prefix — real scans use full zmap sweeps, the per-/24 granularity loses
nothing in our model) and records the certificate, if any. Prefix origin
ASes come from the public routing table.

From the raw scan it derives an infrastructure inventory per organisation:

* the organisation's *home AS* — inferred as the AS originating the most
  of its certificate-bearing prefixes (no privileged data needed);
* **on-net** serving prefixes (inside the home AS) and **off-net** serving
  prefixes (the same org's certificate served from someone else's AS —
  the off-net-cache fingerprint of [25]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.prefixes import PrefixTable
from ..obs.recorder import Recorder, resolve_recorder
from ..services.tls import Certificate, CertificateStore

TLS_SCAN_CAMPAIGN = "tls-scan"


@dataclass(frozen=True)
class ScanObservation:
    """One TLS endpoint observed by the scanner."""

    prefix_id: int
    origin_asn: int
    certificate: Certificate


@dataclass
class OrgFootprint:
    """Inferred serving infrastructure of one certificate organisation."""

    organization: str
    home_asn: int
    onnet_prefixes: List[int] = field(default_factory=list)
    offnet_prefixes: List[int] = field(default_factory=list)
    offnet_asns: "set[int]" = field(default_factory=set)

    @property
    def total_prefixes(self) -> int:
        return len(self.onnet_prefixes) + len(self.offnet_prefixes)


@dataclass
class TlsScanResult:
    """Raw observations plus the derived per-organisation footprints."""

    observations: List[ScanObservation]
    footprints: Dict[str, OrgFootprint]

    def footprint_of(self, organization: str) -> OrgFootprint:
        try:
            return self.footprints[organization]
        except KeyError:
            raise MeasurementError(
                f"no TLS footprint observed for {organization!r}") from None

    def organizations(self) -> List[str]:
        return sorted(self.footprints)

    def serving_prefixes(self) -> List[int]:
        return [obs.prefix_id for obs in self.observations]


class TlsScanner:
    """Internet-wide TLS scan over the routable prefix list.

    With an active :class:`FaultContext`, scan shards churn away
    (``vantage_churn``): the prefixes a churned shard was responsible for
    go unscanned, thinning every organisation's observed footprint.
    """

    def __init__(self, certstore: CertificateStore,
                 prefix_table: PrefixTable,
                 min_footprint_prefixes: int = 2,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        self._certstore = certstore
        self._prefixes = prefix_table
        self._min_footprint = min_footprint_prefixes
        self._faults = faults
        self._recorder = resolve_recorder(recorder)

    def run(self, prefix_ids: Optional[np.ndarray] = None) -> TlsScanResult:
        """Scan the given prefixes (default: the whole routing table)."""
        with self._recorder.span(f"measure.{TLS_SCAN_CAMPAIGN}"):
            return self._run(prefix_ids)

    def _run(self, prefix_ids: Optional[np.ndarray]) -> TlsScanResult:
        if prefix_ids is None:
            pids = range(len(self._prefixes))
        else:
            pids = [int(p) for p in prefix_ids]
        scope = (self._faults.campaign(TLS_SCAN_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.VANTAGE_CHURN):
            pids = list(pids)
            scanned = scope.survive_mask(FaultKind.VANTAGE_CHURN,
                                         len(pids))
            pids = [pid for pid, ok in zip(pids, scanned) if ok]
        self._recorder.count(
            f"measure.{TLS_SCAN_CAMPAIGN}.prefixes_scanned", len(pids))
        observations: List[ScanObservation] = []
        for pid in pids:
            cert = self._certstore.cert_for_prefix(pid)
            if cert is None:
                continue
            observations.append(ScanObservation(
                prefix_id=pid,
                origin_asn=self._prefixes.asn_of(pid),
                certificate=cert))
        footprints = self._derive_footprints(observations)
        rec = self._recorder
        rec.count(f"measure.{TLS_SCAN_CAMPAIGN}.certs_observed",
                  len(observations))
        rec.count(f"measure.{TLS_SCAN_CAMPAIGN}.orgs_identified",
                  len(footprints))
        return TlsScanResult(
            observations=observations,
            footprints=footprints)

    def _derive_footprints(self, observations: List[ScanObservation]
                           ) -> Dict[str, OrgFootprint]:
        by_org: Dict[str, List[ScanObservation]] = {}
        for obs in observations:
            by_org.setdefault(obs.certificate.organization, []).append(obs)
        footprints: Dict[str, OrgFootprint] = {}
        for org, group in by_org.items():
            if len(group) < self._min_footprint:
                continue
            counts: Dict[int, int] = {}
            for obs in group:
                counts[obs.origin_asn] = counts.get(obs.origin_asn, 0) + 1
            home_asn = max(sorted(counts), key=lambda a: counts[a])
            footprint = OrgFootprint(organization=org, home_asn=home_asn)
            for obs in group:
                if obs.origin_asn == home_asn:
                    footprint.onnet_prefixes.append(obs.prefix_id)
                else:
                    footprint.offnet_prefixes.append(obs.prefix_id)
                    footprint.offnet_asns.add(obs.origin_asn)
            footprints[org] = footprint
        return footprints
