"""RIPE-Atlas-like measurement platform: distributed traceroute and ping.

Provides the distributed vantage points the paper repeatedly leans on:
§3.3.1 ("when we tried to predict paths from RIPE Atlas probes to root DNS
servers, more than half could not be predicted due to missing links") and
§3.2.2's constraint-based localisation.

Vantage points sit in a mixed set of networks (research nets, eyeballs,
stubs). ``traceroute`` returns the true AS path the simulated Internet
routes — what a real traceroute would reveal after IP-to-AS mapping.
``ping`` returns a speed-of-light-in-fiber RTT plus noise; the platform
computes the true geometry internally and exposes only the latency, like a
real network would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.ases import ASRegistry, ASType
from ..net.geography import City, haversine_km
from ..net.prefixes import PrefixTable
from ..net.routing import BgpSimulator
from ..obs.recorder import Recorder, resolve_recorder

ATLAS_CAMPAIGN = "atlas-platform"

# RTT model: ~200 km/ms propagation one way -> RTT ms = km / 100, plus a
# queueing/processing floor and multiplicative circuitousness noise.
KM_PER_RTT_MS = 100.0
RTT_FLOOR_MS = 2.0


@dataclass(frozen=True, slots=True)
class VantagePoint:
    """One measurement probe."""

    vp_id: int
    asn: int
    city: City


@dataclass(frozen=True, slots=True)
class TracerouteResult:
    """AS-level traceroute output (after IP-to-AS mapping)."""

    vp: VantagePoint
    dst_asn: int
    as_path: Optional[Tuple[int, ...]]   # None if unreachable

    @property
    def reached(self) -> bool:
        return self.as_path is not None


class AtlasPlatform:
    """Vantage-point selection plus traceroute/ping primitives.

    With an active :class:`FaultContext`, hosted probes churn away
    (``vantage_churn``) — the platform keeps only the vantage points
    that stay connected for the measurement window, as hosted-probe
    fleets really do.
    """

    def __init__(self, registry: ASRegistry, bgp: BgpSimulator,
                 prefix_table: PrefixTable,
                 rng: np.random.Generator, vp_count: int = 120,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        if vp_count < 1:
            raise MeasurementError("need at least one vantage point")
        self._registry = registry
        self._bgp = bgp
        self._prefixes = prefix_table
        self._rng = rng
        self._recorder = resolve_recorder(recorder)
        with self._recorder.span(f"measure.{ATLAS_CAMPAIGN}"):
            self.vantage_points = self._place_vps(vp_count)
            scope = (faults.campaign(ATLAS_CAMPAIGN)
                     if faults is not None else None)
            if scope is not None and scope.active(FaultKind.VANTAGE_CHURN):
                alive = scope.survive_mask(FaultKind.VANTAGE_CHURN,
                                           len(self.vantage_points))
                self.vantage_points = [
                    vp for vp, ok in zip(self.vantage_points, alive) if ok]
                if not self.vantage_points:
                    raise MeasurementError(
                        "every vantage point churned away mid-campaign")
            self._recorder.count(
                f"measure.{ATLAS_CAMPAIGN}.vantage_points",
                len(self.vantage_points))

    def _place_vps(self, count: int) -> List[VantagePoint]:
        """Probes live mostly in eyeballs, plus research nets and stubs —
        roughly the RIPE Atlas host demographics."""
        eyeballs = self._registry.of_type(ASType.EYEBALL)
        research = self._registry.of_type(ASType.RESEARCH)
        stubs = self._registry.of_type(ASType.STUB)
        pools = [(eyeballs, 0.6), (research, 0.2), (stubs, 0.2)]
        vps: List[VantagePoint] = []
        for pool, share in pools:
            if not pool:
                continue
            take = max(1, int(count * share))
            idx = self._rng.choice(len(pool), size=min(take, len(pool)),
                                   replace=False)
            for i in sorted(int(j) for j in idx):
                asys = pool[i]
                vps.append(VantagePoint(
                    vp_id=len(vps), asn=asys.asn, city=asys.home_city))
        return vps[:count]

    # -- primitives ------------------------------------------------------------

    def traceroute(self, vp: VantagePoint, dst_asn: int) -> TracerouteResult:
        """AS path from the vantage point to a destination AS."""
        path = self._bgp.path(vp.asn, dst_asn)
        return TracerouteResult(vp=vp, dst_asn=dst_asn, as_path=path)

    def traceroute_all(self, dst_asn: int) -> List[TracerouteResult]:
        """Traceroute from every vantage point (one bulk path lookup)."""
        with self._recorder.span(f"measure.{ATLAS_CAMPAIGN}"):
            paths = self._bgp.routes_to([dst_asn]).paths_for(
                vp.asn for vp in self.vantage_points)
            results = [TracerouteResult(vp=vp, dst_asn=dst_asn,
                                        as_path=paths[vp.asn])
                       for vp in self.vantage_points]
        rec = self._recorder
        rec.count(f"measure.{ATLAS_CAMPAIGN}.traceroutes_sent",
                  len(results))
        rec.count(f"measure.{ATLAS_CAMPAIGN}.traceroutes_reached",
                  sum(1 for r in results if r.reached))
        return results

    def ping_rtt_ms(self, vp: VantagePoint, target_pid: int) -> float:
        """RTT to an address in a prefix. The platform resolves the true
        endpoint location internally; the caller sees only latency."""
        target_city = self._prefixes.city_of(target_pid)
        distance = haversine_km(vp.city.lat, vp.city.lon,
                                target_city.lat, target_city.lon)
        circuitousness = float(self._rng.lognormal(0.15, 0.12))
        return (RTT_FLOOR_MS + distance / KM_PER_RTT_MS * circuitousness
                + float(self._rng.exponential(1.0)))

    def ping_from_all(self, target_pid: int,
                      max_vps: Optional[int] = None
                      ) -> List[Tuple[VantagePoint, float]]:
        vps = self.vantage_points if max_vps is None else \
            self.vantage_points[:max_vps]
        return [(vp, self.ping_rtt_ms(vp, target_pid)) for vp in vps]
