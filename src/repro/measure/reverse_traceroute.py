"""Reverse traceroute and path asymmetry (§3.3.2, [36]).

"Measuring out from cloud VMs uncovers most peering links between the
cloud and users [7], and Reverse Traceroute can measure reverse paths
[36]."

Forward traceroute shows the path *from* a vantage point; the path back
is generally different (valley-free routing is not symmetric), and no
amount of forward probing reveals it. Reverse Traceroute measures it with
record-route/spoofing tricks from a controlled host. Here the primitive
returns the true reverse AS path, and :func:`asymmetry_study` quantifies
how often forward != reverse — the measurement gap the technique closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.routing import BgpSimulator
from ..obs.recorder import Recorder, resolve_recorder
from .atlas import VantagePoint

REVERSE_TRACEROUTE_CAMPAIGN = "reverse-traceroute"


@dataclass(frozen=True, slots=True)
class PathPair:
    """Forward and reverse AS paths between a vantage point and an AS."""

    vp_asn: int
    remote_asn: int
    forward: Optional[Tuple[int, ...]]   # vp -> remote
    reverse: Optional[Tuple[int, ...]]   # remote -> vp

    @property
    def measurable(self) -> bool:
        return self.forward is not None and self.reverse is not None

    @property
    def symmetric(self) -> bool:
        """True iff the reverse path is the forward path reversed."""
        if not self.measurable:
            return False
        return tuple(reversed(self.reverse)) == self.forward


class ReverseTraceroute:
    """Reverse-path measurement from a controlled vantage point.

    Requires control of the vantage host (to stamp and receive
    record-route probes), like the real system; usable from any Atlas VP.
    """

    def __init__(self, bgp: BgpSimulator,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        self._bgp = bgp
        self._faults = faults
        self._recorder = resolve_recorder(recorder)

    def _scope(self):
        if self._faults is None:
            return None
        return self._faults.campaign(REVERSE_TRACEROUTE_CAMPAIGN)

    def measure(self, vp: VantagePoint, remote_asn: int) -> PathPair:
        """Both directions between the VP's AS and a remote AS."""
        scope = self._scope()
        if scope is not None and scope.active(FaultKind.PROBE_LOSS) \
                and not scope.survive(FaultKind.PROBE_LOSS):
            # Record-route probes never came back; the pair is
            # unmeasurable, like a filtered reverse hop in reality.
            return PathPair(vp_asn=vp.asn, remote_asn=remote_asn,
                            forward=None, reverse=None)
        return PathPair(
            vp_asn=vp.asn, remote_asn=remote_asn,
            forward=self._bgp.path(vp.asn, remote_asn),
            reverse=self._bgp.path(remote_asn, vp.asn))

    def measure_many(self, vp: VantagePoint,
                     remote_asns: Sequence[int]) -> List[PathPair]:
        """Measure many remotes: one bulk reverse-table lookup for the
        shared VP destination, per-destination forward lookups."""
        if not remote_asns:
            raise MeasurementError("no remote ASes given")
        with self._recorder.span(
                f"measure.{REVERSE_TRACEROUTE_CAMPAIGN}"):
            remotes = [asn for asn in remote_asns if asn != vp.asn]
            forward = self._bgp.paths_from(vp.asn, remotes)
            reverse = self._bgp.routes_to([vp.asn]).paths_for(remotes)
            scope = self._scope()
            if scope is not None and scope.active(FaultKind.PROBE_LOSS):
                measured = scope.survive_mask(FaultKind.PROBE_LOSS,
                                              len(remotes))
                pairs = [PathPair(vp_asn=vp.asn, remote_asn=asn,
                                  forward=forward[asn] if ok else None,
                                  reverse=reverse[asn] if ok else None)
                         for asn, ok in zip(remotes, measured)]
            else:
                pairs = [PathPair(vp_asn=vp.asn, remote_asn=asn,
                                  forward=forward[asn],
                                  reverse=reverse[asn])
                         for asn in remotes]
            rec = self._recorder
            rec.count(f"measure.{REVERSE_TRACEROUTE_CAMPAIGN}."
                      "pairs_measured", len(pairs))
            rec.count(f"measure.{REVERSE_TRACEROUTE_CAMPAIGN}.pairs_lost",
                      sum(1 for p in pairs if not p.measurable))
            return pairs


@dataclass
class AsymmetryStudy:
    """How asymmetric the measured path corpus is."""

    pairs_measured: int
    symmetric_fraction: float
    mean_length_difference: float   # |len(fwd) - len(rev)| in hops

    @property
    def asymmetric_fraction(self) -> float:
        return 1.0 - self.symmetric_fraction


def asymmetry_study(pairs: Sequence[PathPair]) -> AsymmetryStudy:
    """Quantify forward/reverse divergence over measured pairs."""
    measurable = [p for p in pairs if p.measurable]
    if not measurable:
        raise MeasurementError("no measurable pairs")
    symmetric = sum(1 for p in measurable if p.symmetric)
    length_diffs = [abs(len(p.forward) - len(p.reverse))
                    for p in measurable]
    return AsymmetryStudy(
        pairs_measured=len(measurable),
        symmetric_fraction=symmetric / len(measurable),
        mean_length_difference=sum(length_diffs) / len(length_diffs))
