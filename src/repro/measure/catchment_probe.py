"""Anycast catchment measurement, Verfploeter-style (§3.2.3).

"Another possibility may come from increased popularity of edge computing
platforms, such as Cloudflare's Workers [2], where CDN customers can
execute custom code on CDN PoPs. This may enable use of techniques that
infer per-PoP anycast catchments by probing out to the Internet [21]."

The campaign sends probes *from the anycast address* to targets across
the Internet; each reply routes back to whichever site the target's
network's BGP selects — the catchment. Coverage is limited to targets
that answer probes (ICMP-responsive), which the model samples per prefix.

This runs with the anycast operator's cooperation (or from rented edge
workers) — it needs no proprietary logs, only the ability to emit packets
from the anycast prefix, exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.prefixes import PrefixTable
from ..obs.recorder import Recorder, resolve_recorder
from ..par import CampaignExecutor, ShardPlan, ShardStreams
from ..services.anycast import AnycastModel

CATCHMENT_CAMPAIGN = "catchment-probing"
DEFAULT_RESPONSE_RATE = 0.62   # share of probed /24s that answer ICMP

# Target prefixes per shard on the sharded path (determinism contract:
# response/loss draws bind to shards — see docs/parallelism.md).
CATCHMENT_SHARD_SIZE = 8_192


@dataclass
class CatchmentMeasurement:
    """Measured catchment: site id per responsive target prefix."""

    prefix_ids: np.ndarray          # targets probed
    site_of_prefix: np.ndarray      # measured site id, -1 = no response
    site_count: int

    def responsive_fraction(self) -> float:
        return float((self.site_of_prefix >= 0).mean())

    def catchment_sizes(self) -> Dict[int, int]:
        """Responsive prefixes per site — the per-PoP catchment weights."""
        sizes: Dict[int, int] = {}
        for site in self.site_of_prefix[self.site_of_prefix >= 0]:
            sizes[int(site)] = sizes.get(int(site), 0) + 1
        return sizes

    def measured_site(self, pid: int) -> Optional[int]:
        idx = np.searchsorted(self.prefix_ids, pid)
        if idx >= len(self.prefix_ids) or self.prefix_ids[idx] != pid:
            raise MeasurementError(f"prefix {pid} was not probed")
        site = int(self.site_of_prefix[idx])
        return site if site >= 0 else None


def _site_lookup(model: AnycastModel, asns: np.ndarray) -> np.ndarray:
    """Measured site per target, -1 where the AS has no catchment.

    Catchments are per-AS (BGP decides per network), so each distinct AS
    is resolved once and the answers broadcast back over the targets.
    """
    uniq, inverse = np.unique(asns, return_inverse=True)
    site_of_uniq = np.full(len(uniq), -1, dtype=np.int32)
    for j, asn in enumerate(uniq):
        result = model.catchment(int(asn))
        if result is not None:
            site_of_uniq[j] = result.site.site_id
    return site_of_uniq[inverse]


def _catchment_shard(payload: Tuple["VerfploeterCampaign", np.ndarray,
                                    ShardPlan],
                     shard: int) -> Tuple[np.ndarray, int, Optional[Dict]]:
    """Probe one block of sorted targets."""
    campaign, targets, plan = payload
    lo, hi = plan.bounds(shard)
    block = targets[lo:hi]
    rng = campaign._streams.stream(shard)
    responds = rng.random(len(block)) < campaign._response_rate
    scope = None
    if campaign._faults is not None:
        ctx = campaign._faults.shard_context(ShardStreams.label(shard))
        scope = ctx.campaign(CATCHMENT_CAMPAIGN)
    if scope is not None and scope.active(FaultKind.PROBE_LOSS):
        responds &= scope.survive_mask(FaultKind.PROBE_LOSS, len(block))
    mapped = _site_lookup(campaign._model,
                          campaign._prefixes.asn_array[block])
    sites = np.where(responds, mapped, -1).astype(np.int32)
    state = scope.export_state() if scope is not None else None
    return sites, int(responds.sum()), state


class VerfploeterCampaign:
    """Probe out from the anycast prefix; replies reveal catchments.

    With an active :class:`FaultContext`, outbound probes (or their
    replies) are lost in flight (``probe_loss``) on top of ordinary
    ICMP non-response, shrinking the measured catchments.

    With ``streams`` the target list is split into fixed-size shards,
    each drawing from its own substream (the builder's path — results
    bit-identical for any worker count of the optional ``executor``);
    with ``rng`` the legacy single-stream sweep runs.
    """

    def __init__(self, model: AnycastModel, prefix_table: PrefixTable,
                 rng: Optional[np.random.Generator] = None,
                 response_rate: float = DEFAULT_RESPONSE_RATE,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None,
                 streams: Optional[ShardStreams] = None,
                 executor: Optional[CampaignExecutor] = None) -> None:
        if not 0.0 < response_rate <= 1.0:
            raise MeasurementError("response_rate must be in (0, 1]")
        if rng is None and streams is None:
            raise MeasurementError("need either rng or streams")
        self._model = model
        self._prefixes = prefix_table
        self._rng = rng
        self._response_rate = response_rate
        self._faults = faults
        self._recorder = resolve_recorder(recorder)
        self._streams = streams
        self._executor = executor

    def run(self, target_pids: np.ndarray) -> CatchmentMeasurement:
        with self._recorder.span(f"measure.{CATCHMENT_CAMPAIGN}"):
            if self._streams is not None:
                return self._run_sharded(target_pids)
            return self._run(target_pids)

    def _run_sharded(self, target_pids: np.ndarray) -> CatchmentMeasurement:
        targets = np.sort(np.asarray(target_pids, dtype=int))
        if len(targets) == 0:
            raise MeasurementError("no targets to probe")
        rec = self._recorder
        plan = ShardPlan(len(targets), CATCHMENT_SHARD_SIZE)
        executor = self._executor or CampaignExecutor(recorder=rec)
        shards = executor.run(_catchment_shard, (self, targets, plan),
                              plan.n_shards, CATCHMENT_CAMPAIGN)
        scope = (self._faults.campaign(CATCHMENT_CAMPAIGN)
                 if self._faults is not None else None)
        replies = 0
        for _, shard_replies, state in shards:
            replies += shard_replies
            if scope is not None and state is not None:
                scope.merge_state(state)
        sites = np.concatenate([part for part, _, _ in shards])
        rec.count(f"measure.{CATCHMENT_CAMPAIGN}.probes_sent",
                  len(targets))
        rec.count(f"measure.{CATCHMENT_CAMPAIGN}.replies_received",
                  replies)
        return CatchmentMeasurement(
            prefix_ids=targets, site_of_prefix=sites,
            site_count=len(self._model.sites))

    def _run(self, target_pids: np.ndarray) -> CatchmentMeasurement:
        targets = np.sort(np.asarray(target_pids, dtype=int))
        if len(targets) == 0:
            raise MeasurementError("no targets to probe")
        responds = self._rng.random(len(targets)) < self._response_rate
        scope = (self._faults.campaign(CATCHMENT_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.PROBE_LOSS):
            responds &= scope.survive_mask(FaultKind.PROBE_LOSS,
                                           len(targets))
        mapped = _site_lookup(self._model, self._prefixes.asn_array[targets])
        sites = np.where(responds, mapped, -1).astype(np.int32)
        rec = self._recorder
        rec.count(f"measure.{CATCHMENT_CAMPAIGN}.probes_sent",
                  len(targets))
        rec.count(f"measure.{CATCHMENT_CAMPAIGN}.replies_received",
                  int(responds.sum()))
        return CatchmentMeasurement(
            prefix_ids=targets, site_of_prefix=sites,
            site_count=len(self._model.sites))
