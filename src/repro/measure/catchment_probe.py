"""Anycast catchment measurement, Verfploeter-style (§3.2.3).

"Another possibility may come from increased popularity of edge computing
platforms, such as Cloudflare's Workers [2], where CDN customers can
execute custom code on CDN PoPs. This may enable use of techniques that
infer per-PoP anycast catchments by probing out to the Internet [21]."

The campaign sends probes *from the anycast address* to targets across
the Internet; each reply routes back to whichever site the target's
network's BGP selects — the catchment. Coverage is limited to targets
that answer probes (ICMP-responsive), which the model samples per prefix.

This runs with the anycast operator's cooperation (or from rented edge
workers) — it needs no proprietary logs, only the ability to emit packets
from the anycast prefix, exactly the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.prefixes import PrefixTable
from ..obs.recorder import Recorder, resolve_recorder
from ..services.anycast import AnycastModel

CATCHMENT_CAMPAIGN = "catchment-probing"
DEFAULT_RESPONSE_RATE = 0.62   # share of probed /24s that answer ICMP


@dataclass
class CatchmentMeasurement:
    """Measured catchment: site id per responsive target prefix."""

    prefix_ids: np.ndarray          # targets probed
    site_of_prefix: np.ndarray      # measured site id, -1 = no response
    site_count: int

    def responsive_fraction(self) -> float:
        return float((self.site_of_prefix >= 0).mean())

    def catchment_sizes(self) -> Dict[int, int]:
        """Responsive prefixes per site — the per-PoP catchment weights."""
        sizes: Dict[int, int] = {}
        for site in self.site_of_prefix[self.site_of_prefix >= 0]:
            sizes[int(site)] = sizes.get(int(site), 0) + 1
        return sizes

    def measured_site(self, pid: int) -> Optional[int]:
        idx = np.searchsorted(self.prefix_ids, pid)
        if idx >= len(self.prefix_ids) or self.prefix_ids[idx] != pid:
            raise MeasurementError(f"prefix {pid} was not probed")
        site = int(self.site_of_prefix[idx])
        return site if site >= 0 else None


class VerfploeterCampaign:
    """Probe out from the anycast prefix; replies reveal catchments.

    With an active :class:`FaultContext`, outbound probes (or their
    replies) are lost in flight (``probe_loss``) on top of ordinary
    ICMP non-response, shrinking the measured catchments.
    """

    def __init__(self, model: AnycastModel, prefix_table: PrefixTable,
                 rng: np.random.Generator,
                 response_rate: float = DEFAULT_RESPONSE_RATE,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        if not 0.0 < response_rate <= 1.0:
            raise MeasurementError("response_rate must be in (0, 1]")
        self._model = model
        self._prefixes = prefix_table
        self._rng = rng
        self._response_rate = response_rate
        self._faults = faults
        self._recorder = resolve_recorder(recorder)

    def run(self, target_pids: np.ndarray) -> CatchmentMeasurement:
        with self._recorder.span(f"measure.{CATCHMENT_CAMPAIGN}"):
            return self._run(target_pids)

    def _run(self, target_pids: np.ndarray) -> CatchmentMeasurement:
        targets = np.sort(np.asarray(target_pids, dtype=int))
        if len(targets) == 0:
            raise MeasurementError("no targets to probe")
        sites = np.full(len(targets), -1, dtype=np.int32)
        responds = self._rng.random(len(targets)) < self._response_rate
        scope = (self._faults.campaign(CATCHMENT_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.PROBE_LOSS):
            responds &= scope.survive_mask(FaultKind.PROBE_LOSS,
                                           len(targets))
        # Catchments are per-AS (BGP decides per network); resolve each
        # distinct AS once.
        asns = self._prefixes.asn_array[targets]
        site_by_asn: Dict[int, int] = {}
        for asn in sorted({int(a) for a in asns}):
            result = self._model.catchment(asn)
            if result is not None:
                site_by_asn[asn] = result.site.site_id
        for i, (pid, asn) in enumerate(zip(targets, asns)):
            if not responds[i]:
                continue
            site = site_by_asn.get(int(asn))
            if site is not None:
                sites[i] = site
        rec = self._recorder
        rec.count(f"measure.{CATCHMENT_CAMPAIGN}.probes_sent",
                  len(targets))
        rec.count(f"measure.{CATCHMENT_CAMPAIGN}.replies_received",
                  int(responds.sum()))
        return CatchmentMeasurement(
            prefix_ids=targets, site_of_prefix=sites,
            site_count=len(self._model.sites))
