"""Measurement techniques (§3).

Every module here consumes only *public* surfaces of the scenario — probe
oracles, log archives, scan endpoints, collector feeds — never the ground
truth. Validation against ground truth happens in
:mod:`repro.core.validation`.
"""
