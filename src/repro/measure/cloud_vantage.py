"""Measuring out from cloud VMs (§3.3.2, [7]).

"Measuring out from cloud VMs uncovers most peering links between the
cloud and users [7], and Reverse Traceroute can measure reverse paths
[36]." — and the §3.3.3 limitation: "these techniques require a vantage
point within the cloud, so are not suitable for CDNs that do not support
VMs running measurements."

A researcher rents VMs inside a cloud hypergiant and traceroutes out to
every target network. The first AS hop of each path *is* one of the
cloud's interconnections — exactly the links route collectors cannot see.
The discovered links can then be merged into the public topology
(:func:`augment_public_view`), improving path prediction for that cloud —
while VM-less hypergiants (Netflix-style CDNs) stay dark, which is why
the paper still needs the §3.3.3 recommender.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.collectors import PublicTopologyView
from ..net.routing import BgpSimulator
from ..obs.recorder import Recorder, resolve_recorder

CLOUD_VANTAGE_CAMPAIGN = "cloud-vantage"


@dataclass
class CloudVantageResult:
    """Links discovered by tracerouting out of one cloud."""

    cloud_asn: int
    discovered_links: FrozenSet[Tuple[int, int]]
    targets_probed: int
    targets_reached: int

    @property
    def reach_fraction(self) -> float:
        if self.targets_probed == 0:
            return 0.0
        return self.targets_reached / self.targets_probed


class CloudVantageCampaign:
    """Traceroute from inside a cloud AS to a target list.

    The campaign consumes the network itself (paths the simulated
    Internet actually routes) — the same privilege level as running real
    traceroutes from rented VMs. It reveals only links on forward paths
    *from* the cloud; everything else stays hidden.
    """

    def __init__(self, bgp: BgpSimulator, cloud_asn: int,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        self._bgp = bgp
        self._cloud = cloud_asn
        self._faults = faults
        self._recorder = resolve_recorder(recorder)

    def run(self, target_asns: Sequence[int]) -> CloudVantageResult:
        with self._recorder.span(f"measure.{CLOUD_VANTAGE_CAMPAIGN}"):
            return self._run(target_asns)

    def _run(self, target_asns: Sequence[int]) -> CloudVantageResult:
        if not target_asns:
            raise MeasurementError("no targets to traceroute")
        links: Set[Tuple[int, int]] = set()
        reached = 0
        remotes = [dst for dst in target_asns if dst != self._cloud]
        paths = self._bgp.paths_from(self._cloud, remotes)
        scope = (self._faults.campaign(CLOUD_VANTAGE_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.PROBE_LOSS):
            # Traceroutes whose probes are lost end-to-end reveal nothing.
            delivered = scope.survive_mask(FaultKind.PROBE_LOSS,
                                           len(remotes))
            paths = {dst: (paths[dst] if ok else None)
                     for dst, ok in zip(remotes, delivered)}
        for dst in target_asns:
            if dst == self._cloud:
                continue
            path = paths[dst]
            if path is None:
                continue
            reached += 1
            for a, b in zip(path, path[1:]):
                links.add((min(a, b), max(a, b)))
        rec = self._recorder
        rec.count(f"measure.{CLOUD_VANTAGE_CAMPAIGN}.traceroutes_sent",
                  len(remotes))
        rec.count(f"measure.{CLOUD_VANTAGE_CAMPAIGN}.targets_reached",
                  reached)
        rec.count(f"measure.{CLOUD_VANTAGE_CAMPAIGN}.links_discovered",
                  len(links))
        return CloudVantageResult(
            cloud_asn=self._cloud,
            discovered_links=frozenset(links),
            targets_probed=len(target_asns),
            targets_reached=reached)


def augment_public_view(view: PublicTopologyView,
                        result: CloudVantageResult,
                        actual_graph) -> PublicTopologyView:
    """Merge cloud-discovered links into the public topology.

    ``actual_graph`` serves as the relationship oracle for the discovered
    links — in practice the relationship is inferable from the traceroute
    context (the first hop off a cloud is a peer or provider; standard
    relationship-inference algorithms [35, 41] classify the rest). Only
    links the campaign actually discovered are read from it.
    """
    augmented = view.graph.copy()
    for a, b in sorted(result.discovered_links):
        if a not in augmented or b not in augmented:
            continue
        if augmented.relationship_of(a, b) is not None:
            continue
        rel = actual_graph.relationship_of(a, b)
        if rel is None:
            continue
        if rel.name == "P2P":
            augmented.add_p2p(a, b)
        elif actual_graph.is_provider_of(b, a):
            augmented.add_c2p(a, b)     # a buys from b
        else:
            augmented.add_c2p(b, a)
    return PublicTopologyView(
        graph=augmented,
        vantage_asns=view.vantage_asns,
        visible_links=augmented.link_set())
