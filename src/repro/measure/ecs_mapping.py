"""User-to-host mapping discovery via ECS queries (§3.2).

"Studies have emulated global vantage point coverage by issuing DNS
queries using the DNS EDNS0 Client Subnet (ECS), which allows a DNS query
to include the client's IP prefix, allowing researchers to issue queries
to a service that appear to come from arbitrary locations/prefixes
[13, 56]. However, not all services support ECS..."

For each ECS-supporting, DNS-redirected service, the mapper iterates over
all routable /24s, sends ECS queries and records the answer address. The
answer's origin AS comes from the public routing table. Services without
ECS support yield no per-prefix mapping — exactly the coverage gap the
paper highlights (§3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.prefixes import PrefixTable
from ..obs.recorder import Recorder, resolve_recorder
from ..par import CampaignExecutor, ShardPlan, ShardStreams
from ..services.catalog import Service, ServiceCatalog
from ..services.dnsinfra import AuthoritativeDns
from ..services.hypergiants import RedirectionScheme

ECS_MAPPING_CAMPAIGN = "ecs-mapping"

# Client prefixes per shard on the sharded path (determinism contract:
# fault draws bind to shards — see docs/parallelism.md).
ECS_SHARD_SIZE = 16_384


@dataclass
class ServiceMappingResult:
    """client prefix -> answer prefix for one ECS-supporting service."""

    service_key: str
    client_pids: np.ndarray
    answer_pids: np.ndarray     # -1 where no usable answer

    def mapped_fraction(self) -> float:
        return float((self.answer_pids >= 0).mean())

    def answer_asns(self, prefix_table: PrefixTable) -> np.ndarray:
        """Origin AS of each answer address (-1 where unmapped)."""
        out = np.full(len(self.answer_pids), -1, dtype=np.int64)
        mapped = self.answer_pids >= 0
        out[mapped] = prefix_table.asn_array[self.answer_pids[mapped]]
        return out

    def clients_of_answer_prefix(self, answer_pid: int) -> np.ndarray:
        """Client prefixes mapped to one serving prefix (for
        client-centric geolocation, §3.2.2 approach 3)."""
        return self.client_pids[self.answer_pids == answer_pid]


@dataclass
class EcsMappingResult:
    """Mappings for every service the technique could cover."""

    per_service: Dict[str, ServiceMappingResult]
    uncovered_services: List[str]     # no ECS / not DNS-redirected

    def coverage_by_service_count(self) -> float:
        total = len(self.per_service) + len(self.uncovered_services)
        if total == 0:
            raise MeasurementError("no services attempted")
        return len(self.per_service) / total


def _ecs_shard(payload: Tuple["EcsMapper", np.ndarray, List[Service],
                              ShardPlan],
               shard: int) -> Tuple[Dict[str, np.ndarray], Optional[Dict]]:
    """Map one client-prefix block against every covered service."""
    mapper, client_pids, services, plan = payload
    lo, hi = plan.bounds(shard)
    pids = client_pids[lo:hi]
    scope = None
    if mapper._faults is not None:
        ctx = mapper._faults.shard_context(ShardStreams.label(shard))
        scope = ctx.campaign(ECS_MAPPING_CAMPAIGN)
    answers: Dict[str, np.ndarray] = {}
    for service in services:
        batch = mapper._auth.resolve_ecs_batch(service.key, pids)
        if scope is not None and scope.active(FaultKind.ECS_RATE_LIMIT):
            answered = scope.survive_mask(FaultKind.ECS_RATE_LIMIT,
                                          len(batch))
            batch = np.where(answered, batch, -1)
        answers[service.key] = batch
    state = scope.export_state() if scope is not None else None
    return answers, state


class EcsMapper:
    """Runs the ECS mapping campaign over a service catalogue.

    With an active :class:`FaultContext`, per-prefix ECS queries are
    rate-limited away (``ecs_rate_limit``): after the retry budget is
    spent, the affected client prefixes simply have no answer (-1) —
    exactly the partial coverage the paper warns rate limits cause.

    With an ``executor`` the sweep runs sharded over fixed-size client
    blocks (every shard visiting the services in catalogue order), which
    is the builder's path: results are bit-identical for any worker
    count. Without one the legacy whole-table sweep runs.
    """

    def __init__(self, authoritative: AuthoritativeDns,
                 catalog: ServiceCatalog,
                 prefix_table: PrefixTable,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None,
                 executor: Optional[CampaignExecutor] = None) -> None:
        self._auth = authoritative
        self._catalog = catalog
        self._prefixes = prefix_table
        self._faults = faults
        self._recorder = resolve_recorder(recorder)
        self._executor = executor

    def map_service(self, service: Service,
                    client_pids: np.ndarray) -> Optional[ServiceMappingResult]:
        """Map one service; None if the technique cannot cover it."""
        if not service.ecs_supported:
            return None
        if service.redirection is not RedirectionScheme.DNS:
            return None
        self._recorder.count(
            f"measure.{ECS_MAPPING_CAMPAIGN}.queries_sent",
            len(client_pids))
        answers = self._auth.resolve_ecs_batch(service.key, client_pids)
        scope = (self._faults.campaign(ECS_MAPPING_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.ECS_RATE_LIMIT):
            answered = scope.survive_mask(FaultKind.ECS_RATE_LIMIT,
                                          len(answers))
            answers = np.where(answered, answers, -1)
        return ServiceMappingResult(
            service_key=service.key,
            client_pids=np.asarray(client_pids, dtype=int),
            answer_pids=answers)

    def run(self, client_pids: np.ndarray,
            services: Optional[List[Service]] = None) -> EcsMappingResult:
        with self._recorder.span(f"measure.{ECS_MAPPING_CAMPAIGN}"):
            return self._run(client_pids, services)

    def _run(self, client_pids: np.ndarray,
             services: Optional[List[Service]]) -> EcsMappingResult:
        targets = services if services is not None else \
            self._catalog.services
        if self._executor is not None:
            return self._run_sharded(client_pids, targets)
        per_service: Dict[str, ServiceMappingResult] = {}
        uncovered: List[str] = []
        for service in targets:
            result = self.map_service(service, client_pids)
            if result is None:
                uncovered.append(service.key)
            else:
                per_service[service.key] = result
        rec = self._recorder
        rec.count(f"measure.{ECS_MAPPING_CAMPAIGN}.services_mapped",
                  len(per_service))
        rec.count(f"measure.{ECS_MAPPING_CAMPAIGN}.services_uncovered",
                  len(uncovered))
        return EcsMappingResult(per_service=per_service,
                                uncovered_services=uncovered)

    def _run_sharded(self, client_pids: np.ndarray,
                     targets: List[Service]) -> EcsMappingResult:
        pids = np.asarray(client_pids, dtype=int)
        covered = [s for s in targets
                   if s.ecs_supported and
                   s.redirection is RedirectionScheme.DNS]
        uncovered = [s.key for s in targets
                     if not (s.ecs_supported and
                             s.redirection is RedirectionScheme.DNS)]
        rec = self._recorder
        rec.count(f"measure.{ECS_MAPPING_CAMPAIGN}.queries_sent",
                  len(covered) * len(pids))
        per_service: Dict[str, ServiceMappingResult] = {}
        if covered:
            plan = ShardPlan(len(pids), ECS_SHARD_SIZE)
            executor = self._executor or CampaignExecutor(recorder=rec)
            shards = executor.run(_ecs_shard, (self, pids, covered, plan),
                                  plan.n_shards, ECS_MAPPING_CAMPAIGN)
            scope = (self._faults.campaign(ECS_MAPPING_CAMPAIGN)
                     if self._faults is not None else None)
            for _, state in shards:
                if scope is not None and state is not None:
                    scope.merge_state(state)
            for service in covered:
                answers = np.concatenate(
                    [part[service.key] for part, _ in shards]) \
                    if shards else np.empty(0, dtype=np.int64)
                per_service[service.key] = ServiceMappingResult(
                    service_key=service.key,
                    client_pids=pids,
                    answer_pids=answers)
        rec.count(f"measure.{ECS_MAPPING_CAMPAIGN}.services_mapped",
                  len(per_service))
        rec.count(f"measure.{ECS_MAPPING_CAMPAIGN}.services_uncovered",
                  len(uncovered))
        return EcsMappingResult(per_service=per_service,
                                uncovered_services=uncovered)
