"""Approach 2 of §3.1.2: crawling root DNS logs for Chromium probes.

"Chromium browsers use DNS probes to detect DNS interception ... the
queries go to a DNS root server. ... Since most queries to the root DNS
are from recursive resolvers (rather than clients), crawling root DNS logs
gave an indicator of activity by recursive resolver. With the assumption
that most users are in the same AS as their recursive resolvers, crawling
root DNS logs helped us identify the presence of Internet clients in ASes
representing 60% of Microsoft CDN traffic."

The crawler reads the usable roots' logs, filters Chromium-probe entries,
discards known public resolvers (whose clients could be anywhere), and
aggregates query volume per resolver AS. Known limitations are faithfully
reproduced:

* AS granularity only (clients assumed co-located with their resolver);
* networks whose users predominantly use public DNS are invisible;
* anonymised roots contribute nothing;
* a minimum-volume threshold suppresses noise entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..obs.recorder import Recorder, resolve_recorder
from ..par import CampaignExecutor, ShardStreams
from ..services.dnsinfra import RootLogArchive

ROOTLOG_CAMPAIGN = "root-logs"


@dataclass
class RootLogCrawlResult:
    """Per-AS Chromium-probe volume, from usable roots only."""

    volume_by_as: Dict[int, float]
    roots_crawled: int
    roots_total: int
    public_resolver_volume: float    # visible but unattributable
    min_query_threshold: float
    # Usable roots whose feed was truncated/withdrawn during the crawl
    # (fault injection); 0 on a clean crawl.
    roots_truncated: int = 0

    @property
    def delivered_anything(self) -> bool:
        """Whether the crawl produced a usable per-AS signal at all."""
        return self.roots_crawled > 0 and bool(self.volume_by_as)

    def detected_asns(self) -> "set[int]":
        """ASes whose resolvers show enough Chromium-probe volume."""
        return {asn for asn, vol in self.volume_by_as.items()
                if vol >= self.min_query_threshold}

    def relative_activity(self) -> Dict[int, float]:
        """Per-AS activity proxy (normalised to sum to 1).

        "The number of Chromium queries seen at the DNS roots is likely
        roughly proportional to the number of Chromium clients behind a
        recursive resolver" (§3.1.3).
        """
        detected = {asn: vol for asn, vol in self.volume_by_as.items()
                    if vol >= self.min_query_threshold}
        total = sum(detected.values())
        if total <= 0:
            return {}
        return {asn: vol / total for asn, vol in detected.items()}


def _crawl_shard(payload: Tuple["RootLogCrawler", List[str]],
                 shard: int) -> Tuple[Dict[int, float], float, bool,
                                      Optional[Dict]]:
    """Crawl one usable root's log (one root per shard)."""
    crawler, letters = payload
    letter = letters[shard]
    scope = None
    if crawler._faults is not None:
        ctx = crawler._faults.shard_context(ShardStreams.label(shard))
        scope = ctx.campaign(ROOTLOG_CAMPAIGN)
    if scope is not None and scope.active(FaultKind.ROOTLOG_TRUNCATION) \
            and not scope.survive(FaultKind.ROOTLOG_TRUNCATION):
        # This root's feed is truncated for the whole crawl window;
        # re-fetches (retries) already failed.
        return {}, 0.0, True, scope.export_state()
    volume: Dict[int, float] = {}
    public_volume = 0.0
    for entry in crawler._archive.entries_for(letter):
        if entry.is_public_resolver:
            # 8.8.8.8-style resolvers: the clients behind them are not
            # in the resolver's AS; volume is unattributable.
            public_volume += entry.query_count
            continue
        volume[entry.resolver_asn] = (
            volume.get(entry.resolver_asn, 0.0) + entry.query_count)
    state = scope.export_state() if scope is not None else None
    return volume, public_volume, False, state


class RootLogCrawler:
    """Crawls whatever root logs are publicly usable.

    With an ``executor`` each usable root is its own shard (truncation
    draws bind to the root, per-root subtotals merged in root-letter
    order) — the builder's path, bit-identical for any worker count.
    Without one the legacy single-pass crawl runs.
    """

    def __init__(self, archive: RootLogArchive,
                 min_query_threshold: float = 50.0,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None,
                 executor: Optional[CampaignExecutor] = None) -> None:
        if min_query_threshold < 0:
            raise MeasurementError("threshold must be non-negative")
        self._archive = archive
        self._threshold = min_query_threshold
        self._faults = faults
        self._recorder = resolve_recorder(recorder)
        self._executor = executor

    def run(self) -> RootLogCrawlResult:
        with self._recorder.span(f"measure.{ROOTLOG_CAMPAIGN}"):
            if self._executor is not None:
                return self._run_sharded()
            return self._run()

    def _run_sharded(self) -> RootLogCrawlResult:
        letters = [root.letter for root in self._archive.roots
                   if root.logs_usable]
        shards = self._executor.run(_crawl_shard, (self, letters),
                                    len(letters), ROOTLOG_CAMPAIGN)
        scope = (self._faults.campaign(ROOTLOG_CAMPAIGN)
                 if self._faults is not None else None)
        volume: Dict[int, float] = {}
        public_volume = 0.0
        crawled = 0
        truncated = 0
        for root_volume, root_public, was_truncated, state in shards:
            if was_truncated:
                truncated += 1
            else:
                crawled += 1
                public_volume += root_public
                for asn, count in root_volume.items():
                    volume[asn] = volume.get(asn, 0.0) + count
            if scope is not None and state is not None:
                scope.merge_state(state)
        rec = self._recorder
        rec.count(f"measure.{ROOTLOG_CAMPAIGN}.roots_crawled", crawled)
        rec.count(f"measure.{ROOTLOG_CAMPAIGN}.roots_truncated", truncated)
        rec.count(f"measure.{ROOTLOG_CAMPAIGN}.resolver_ases_seen",
                  len(volume))
        return RootLogCrawlResult(
            volume_by_as=volume,
            roots_crawled=crawled,
            roots_total=len(self._archive.roots),
            public_resolver_volume=public_volume,
            min_query_threshold=self._threshold,
            roots_truncated=truncated,
        )

    def _run(self) -> RootLogCrawlResult:
        volume: Dict[int, float] = {}
        public_volume = 0.0
        crawled = 0
        truncated = 0
        scope = (self._faults.campaign(ROOTLOG_CAMPAIGN)
                 if self._faults is not None else None)
        for root in self._archive.roots:
            if not root.logs_usable:
                continue
            if scope is not None and \
                    scope.active(FaultKind.ROOTLOG_TRUNCATION) and \
                    not scope.survive(FaultKind.ROOTLOG_TRUNCATION):
                # This root's feed is truncated for the whole crawl
                # window; re-fetches (retries) already failed.
                truncated += 1
                continue
            crawled += 1
            for entry in self._archive.entries_for(root.letter):
                if entry.is_public_resolver:
                    # 8.8.8.8-style resolvers: the clients behind them are
                    # not in the resolver's AS; volume is unattributable.
                    public_volume += entry.query_count
                    continue
                volume[entry.resolver_asn] = (
                    volume.get(entry.resolver_asn, 0.0) + entry.query_count)
        rec = self._recorder
        rec.count(f"measure.{ROOTLOG_CAMPAIGN}.roots_crawled", crawled)
        rec.count(f"measure.{ROOTLOG_CAMPAIGN}.roots_truncated", truncated)
        rec.count(f"measure.{ROOTLOG_CAMPAIGN}.resolver_ases_seen",
                  len(volume))
        return RootLogCrawlResult(
            volume_by_as=volume,
            roots_crawled=crawled,
            roots_total=len(self._archive.roots),
            public_resolver_volume=public_volume,
            min_query_threshold=self._threshold,
            roots_truncated=truncated,
        )
