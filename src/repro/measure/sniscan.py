"""Approach 2 of §3.2.2: SNI scans for per-service footprints.

"We propose using Internet-wide SNI (TLS + hostname) scans to uncover the
footprint of popular services by identifying which CDN or cloud IP
addresses have the services' TLS certificates."

Given a list of candidate serving prefixes (e.g. from a prior TLS scan),
the scanner offers each service's hostname in the SNI and records which
endpoints present a certificate covering it. The result maps every service
domain to the set of (prefix, AS) locations serving it — including
third-party services exposed on CDN/cloud infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.prefixes import PrefixTable
from ..obs.recorder import Recorder, resolve_recorder
from ..services.tls import CertificateStore

SNI_SCAN_CAMPAIGN = "sni-scan"


@dataclass
class SniScanResult:
    """domain -> endpoints presenting a matching certificate."""

    endpoints_by_domain: Dict[str, List[Tuple[int, int]]]  # (pid, asn)

    def footprint(self, domain: str) -> List[Tuple[int, int]]:
        return list(self.endpoints_by_domain.get(domain, []))

    def asns_serving(self, domain: str) -> "set[int]":
        return {asn for __, asn in self.endpoints_by_domain.get(domain, [])}

    def domains_found(self) -> List[str]:
        return sorted(d for d, eps in self.endpoints_by_domain.items()
                      if eps)

    def domains_missing(self) -> List[str]:
        return sorted(d for d, eps in self.endpoints_by_domain.items()
                      if not eps)


class SniScanner:
    """SNI scan of candidate endpoints for a set of service hostnames.

    With an active :class:`FaultContext`, endpoints that keep
    rate-limiting the scanner's handshakes (``sni_rate_limit``) drop out
    of the scan — their certificates, and whatever service coverage they
    would have proven, go unobserved.
    """

    def __init__(self, certstore: CertificateStore,
                 prefix_table: PrefixTable,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None) -> None:
        self._certstore = certstore
        self._prefixes = prefix_table
        self._faults = faults
        self._recorder = resolve_recorder(recorder)

    def run(self, domains: Sequence[str],
            candidate_prefixes: Iterable[int]) -> SniScanResult:
        with self._recorder.span(f"measure.{SNI_SCAN_CAMPAIGN}"):
            return self._run(domains, candidate_prefixes)

    def _run(self, domains: Sequence[str],
             candidate_prefixes: Iterable[int]) -> SniScanResult:
        if not domains:
            raise MeasurementError("no SNI hostnames given")
        candidates = sorted(set(int(p) for p in candidate_prefixes))
        scope = (self._faults.campaign(SNI_SCAN_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.SNI_RATE_LIMIT):
            reachable = scope.survive_mask(FaultKind.SNI_RATE_LIMIT,
                                           len(candidates))
            candidates = [pid for pid, ok in zip(candidates, reachable)
                          if ok]
        result: Dict[str, List[Tuple[int, int]]] = {d: [] for d in domains}
        for pid in candidates:
            cert = self._certstore.cert_for_prefix(pid)
            if cert is None:
                continue
            asn = self._prefixes.asn_of(pid)
            for domain in domains:
                if cert.covers_domain(domain):
                    result[domain].append((pid, asn))
        rec = self._recorder
        rec.count(f"measure.{SNI_SCAN_CAMPAIGN}.endpoints_scanned",
                  len(candidates))
        rec.count(f"measure.{SNI_SCAN_CAMPAIGN}.footprints_matched",
                  sum(len(eps) for eps in result.values()))
        return SniScanResult(endpoints_by_domain=result)
