"""Approach 1 of §3.1.2: probing public DNS caches with ECS.

"We issued non-recursive queries for popular domains to Google Public DNS
... we used the EDNS0 Client Subnet (ECS) option, which enables specifying
a client prefix, causing Google Public DNS to only return a result if a
client from that prefix recently queried for the domain. By iterating over
all routable prefixes, our methods identified client activity in prefixes
representing 95% of Microsoft CDN traffic."

The campaign iterates over routable /24s and the domains of the popularity
top list, issuing ``rounds_per_day`` probe rounds. Each probe is a
Bernoulli draw from the cache-occupancy oracle — statistically identical to
issuing the individual non-recursive ECS queries, just vectorised.

Outputs:

* per-(domain, prefix) hit counts — the raw campaign data;
* the detected-prefix set (any hit) — the users component's coverage;
* per-AS hit totals/rates — the relative-activity signal of §3.1.3 and
  Figure 2;
* per-GDNS-PoP detected-prefix counts — Figure 1a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..faults import FaultContext, FaultKind
from ..net.prefixes import PrefixTable
from ..obs.recorder import Recorder, resolve_recorder
from ..par import CampaignExecutor, ShardPlan, ShardStreams
from ..services.catalog import Service
from ..services.dnsinfra import (CacheOracle, GoogleDnsModel,
                                 TemporalCacheOracle)

CACHE_PROBING_CAMPAIGN = "cache-probing"

# Prefixes per shard on the sharded execution path. Part of the
# determinism contract: randomness binds to shards, so changing this
# constant changes campaign output (see docs/parallelism.md).
CACHE_PROBE_SHARD_SIZE = 8_192


@dataclass
class CacheProbingResult:
    """Everything a cache-probing campaign produces."""

    prefix_ids: np.ndarray            # probed prefixes (public routing table)
    service_sids: "tuple[int, ...]"   # probed domains (by service id)
    hits: np.ndarray                  # (domains, prefixes) hit counts
    rounds: int
    pop_of_prefix: np.ndarray         # which GDNS PoP answered each prefix

    @property
    def probes_per_prefix(self) -> int:
        return self.rounds * len(self.service_sids)

    def hits_per_prefix(self) -> np.ndarray:
        """Total hits per probed prefix across all domains."""
        return self.hits.sum(axis=0)

    def detected_mask(self) -> np.ndarray:
        """True where at least one probe hit — "prefix hosts clients"."""
        return self.hits_per_prefix() > 0

    def detected_prefixes(self) -> np.ndarray:
        """Prefix ids identified as hosting client activity."""
        return self.prefix_ids[self.detected_mask()]

    def detected_asns(self, prefix_table: PrefixTable) -> "set[int]":
        asns = prefix_table.asn_array[self.detected_prefixes()]
        return set(int(a) for a in np.unique(asns))

    def detected_per_pop(self) -> Dict[int, int]:
        """Figure 1a: number of client prefixes detected per GDNS PoP."""
        mask = self.detected_mask()
        counts: Dict[int, int] = {}
        for pop in np.unique(self.pop_of_prefix):
            counts[int(pop)] = int(
                (mask & (self.pop_of_prefix == pop)).sum())
        return counts

    def hit_counts_by_as(self, prefix_table: PrefixTable) -> Dict[int, float]:
        """Total cache hits per AS — the relative-activity signal.

        In the linear (unsaturated) regime a prefix's expected hits are
        proportional to its query rate, so per-AS hit totals are
        proportional to per-AS client activity (§3.1.3, Figure 2).
        """
        per_prefix = np.zeros(len(prefix_table))
        per_prefix[self.prefix_ids] = self.hits_per_prefix()
        return prefix_table.group_by_as(per_prefix)

    def hit_rate_by_as(self, prefix_table: PrefixTable) -> Dict[int, float]:
        """Hits per probe per AS (the paper's "cache hit rate")."""
        counts = self.hit_counts_by_as(prefix_table)
        probed = np.zeros(len(prefix_table))
        probed[self.prefix_ids] = self.probes_per_prefix
        probes = prefix_table.group_by_as(probed)
        return {asn: counts.get(asn, 0.0) / probes[asn]
                for asn in probes if probes[asn] > 0}

    def per_service_detected(self, sid: int) -> np.ndarray:
        """Prefixes with hits for one domain — per-service client sets."""
        if sid not in self.service_sids:
            raise MeasurementError(f"service {sid} was not probed")
        row = self.service_sids.index(sid)
        return self.prefix_ids[self.hits[row] > 0]


@dataclass
class TimedProbingResult:
    """Hourly probing output: hit counts per (hour, prefix)."""

    prefix_ids: np.ndarray
    probe_hours_utc: "tuple[float, ...]"
    hits_by_hour: np.ndarray        # (hours, prefixes)
    probes_per_slot: int            # domains x rounds per hour slot

    def hourly_profile_for(self, pids: np.ndarray) -> np.ndarray:
        """Summed hit counts per probe hour over a set of prefix ids."""
        columns = np.isin(self.prefix_ids, np.asarray(pids, dtype=int))
        return self.hits_by_hour[:, columns].sum(axis=1)

    def peak_hour_for(self, pids: np.ndarray) -> float:
        """Probe hour (UTC) with the most hits for a prefix subset."""
        profile = self.hourly_profile_for(pids)
        return float(self.probe_hours_utc[int(np.argmax(profile))])


class TimedCacheProbing:
    """Time-sliced probing: one round per hour slot, around the clock.

    Approaches Table 1's desired *hourly* precision: because cache
    occupancy tracks the instantaneous query rate, the per-slot hit
    counts of a region trace its diurnal activity curve, revealing *when*
    a prefix population is active, not just that it is.
    """

    def __init__(self, oracle: TemporalCacheOracle, gdns: GoogleDnsModel,
                 services: Sequence[Service], prefix_ids: np.ndarray,
                 probe_hours_utc: Sequence[float],
                 rounds_per_slot: int, rng: np.random.Generator) -> None:
        if not probe_hours_utc:
            raise MeasurementError("need at least one probe hour")
        if rounds_per_slot < 1:
            raise MeasurementError("rounds_per_slot must be >= 1")
        if not services:
            raise MeasurementError("no domains to probe")
        self._oracle = oracle
        self._gdns = gdns
        self._services = list(services)
        self._prefix_ids = np.asarray(prefix_ids, dtype=int)
        self._hours = tuple(float(h) for h in probe_hours_utc)
        self._rounds = rounds_per_slot
        self._rng = rng

    def run(self) -> TimedProbingResult:
        sids = [s.sid for s in self._services]
        hits = np.zeros((len(self._hours), len(self._prefix_ids)),
                        dtype=np.int32)
        for row, hour in enumerate(self._hours):
            probabilities = self._oracle.hit_probability_matrix_at(
                sids, self._prefix_ids, hour * 3600.0)
            hits[row] = self._rng.binomial(
                self._rounds, probabilities).sum(axis=0)
        return TimedProbingResult(
            prefix_ids=self._prefix_ids,
            probe_hours_utc=self._hours,
            hits_by_hour=hits,
            probes_per_slot=self._rounds * len(sids))


def _probe_shard(campaign: "CacheProbingCampaign",
                 shard: int) -> Tuple[np.ndarray, np.ndarray, int, int,
                                      Optional[Dict]]:
    """One prefix block of the probing sweep (runs in-process or in a
    pool worker). Pure function of (campaign inputs, shard index)."""
    lo, hi = campaign._shard_plan.bounds(shard)
    pids = campaign._prefix_ids[lo:hi]
    rng = campaign._streams.stream(shard)
    scope = None
    if campaign._faults is not None:
        ctx = campaign._faults.shard_context(ShardStreams.label(shard))
        scope = ctx.campaign(CACHE_PROBING_CAMPAIGN)
    if scope is not None and scope.active(FaultKind.RESOLVER_TIMEOUT):
        answered = scope.survive_mask(FaultKind.RESOLVER_TIMEOUT, len(pids))
        pids = pids[answered]
    probabilities = campaign._oracle.hit_probability_matrix(
        campaign._sids, pids)
    probes_sent = campaign._rounds * int(np.prod(probabilities.shape))
    if scope is not None and scope.active(FaultKind.PROBE_LOSS):
        delivered = scope.thin_rounds(FaultKind.PROBE_LOSS,
                                      campaign._rounds,
                                      probabilities.shape)
        delivered_total = int(delivered.sum())
        hits = rng.binomial(delivered, probabilities)
    else:
        delivered_total = probes_sent
        hits = rng.binomial(campaign._rounds, probabilities)
    state = scope.export_state() if scope is not None else None
    return pids, hits, probes_sent, delivered_total, state


class CacheProbingCampaign:
    """One day of ECS probing against the GDNS cache oracle.

    With an active :class:`FaultContext` the campaign degrades the way a
    real public-resolver sweep does: prefixes whose non-recursive queries
    keep timing out are dropped from the result entirely
    (``resolver_timeout``), and individual probe rounds are lost in
    flight (``probe_loss``), thinning the per-cell trial counts. Both
    apply the plan's retry policy before giving a unit up.

    Execution paths: with ``streams`` the sweep is decomposed into
    fixed-size prefix shards, each drawing from its own substream — the
    builder's path, bit-identical for any worker count of the optional
    ``executor``. Without ``streams`` the legacy single-stream sweep runs
    off ``rng``.
    """

    def __init__(self, oracle: CacheOracle, gdns: GoogleDnsModel,
                 services: Sequence[Service], prefix_ids: np.ndarray,
                 rounds_per_day: int,
                 rng: Optional[np.random.Generator] = None,
                 faults: Optional[FaultContext] = None,
                 recorder: Optional[Recorder] = None,
                 streams: Optional[ShardStreams] = None,
                 executor: Optional[CampaignExecutor] = None) -> None:
        if rounds_per_day < 1:
            raise MeasurementError("need at least one probe round")
        if len(prefix_ids) == 0:
            raise MeasurementError("no prefixes to probe")
        if not services:
            raise MeasurementError("no domains to probe")
        if rng is None and streams is None:
            raise MeasurementError("need either rng or streams")
        self._oracle = oracle
        self._gdns = gdns
        self._services = list(services)
        self._sids = [s.sid for s in self._services]
        self._prefix_ids = np.asarray(prefix_ids, dtype=int)
        self._rounds = rounds_per_day
        self._rng = rng
        self._faults = faults
        self._recorder = resolve_recorder(recorder)
        self._streams = streams
        self._executor = executor
        self._shard_plan = ShardPlan(len(self._prefix_ids),
                                     CACHE_PROBE_SHARD_SIZE)

    def run(self) -> CacheProbingResult:
        """Issue all probes (vectorised Bernoulli sampling)."""
        with self._recorder.span(f"measure.{CACHE_PROBING_CAMPAIGN}"):
            if self._streams is not None:
                return self._run_sharded()
            return self._run()

    def _run_sharded(self) -> CacheProbingResult:
        rec = self._recorder
        executor = self._executor or CampaignExecutor(recorder=rec)
        shards = executor.run(_probe_shard, self, self._shard_plan.n_shards,
                              CACHE_PROBING_CAMPAIGN)
        scope = (self._faults.campaign(CACHE_PROBING_CAMPAIGN)
                 if self._faults is not None else None)
        probes_sent = 0
        delivered_total = 0
        pid_parts: List[np.ndarray] = []
        hit_parts: List[np.ndarray] = []
        for pids, hits, sent, delivered, state in shards:
            pid_parts.append(pids)
            hit_parts.append(hits)
            probes_sent += sent
            delivered_total += delivered
            if scope is not None and state is not None:
                scope.merge_state(state)
        pids = np.concatenate(pid_parts)
        if pids.size == 0:
            raise MeasurementError(
                "every probed prefix timed out at the resolver")
        hits = np.concatenate(hit_parts, axis=1)
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.prefixes_probed",
                  len(pids))
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.probes_sent",
                  probes_sent)
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.probes_delivered",
                  delivered_total)
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.probes_dropped",
                  probes_sent - delivered_total)
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.cache_hits",
                  int(hits.sum()))
        return CacheProbingResult(
            prefix_ids=pids,
            service_sids=tuple(self._sids),
            hits=hits,
            rounds=self._rounds,
            pop_of_prefix=self._gdns.pop_of_prefix[pids],
        )

    def _run(self) -> CacheProbingResult:
        rec = self._recorder
        sids = [s.sid for s in self._services]
        pids = self._prefix_ids
        scope = (self._faults.campaign(CACHE_PROBING_CAMPAIGN)
                 if self._faults is not None else None)
        if scope is not None and scope.active(FaultKind.RESOLVER_TIMEOUT):
            answered = scope.survive_mask(FaultKind.RESOLVER_TIMEOUT,
                                          len(pids))
            pids = pids[answered]
            if pids.size == 0:
                raise MeasurementError(
                    "every probed prefix timed out at the resolver")
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.prefixes_probed",
                  len(pids))
        probabilities = self._oracle.hit_probability_matrix(sids, pids)
        probes_sent = self._rounds * int(np.prod(probabilities.shape))
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.probes_sent",
                  probes_sent)
        if scope is not None and scope.active(FaultKind.PROBE_LOSS):
            delivered = scope.thin_rounds(FaultKind.PROBE_LOSS,
                                          self._rounds,
                                          probabilities.shape)
            delivered_total = int(delivered.sum())
            hits = self._rng.binomial(delivered, probabilities)
        else:
            delivered_total = probes_sent
            hits = self._rng.binomial(self._rounds, probabilities)
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.probes_delivered",
                  delivered_total)
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.probes_dropped",
                  probes_sent - delivered_total)
        rec.count(f"measure.{CACHE_PROBING_CAMPAIGN}.cache_hits",
                  int(hits.sum()))
        return CacheProbingResult(
            prefix_ids=pids,
            service_sids=tuple(sids),
            hits=hits,
            rounds=self._rounds,
            pop_of_prefix=self._gdns.pop_of_prefix[pids],
        )
