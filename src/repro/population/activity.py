"""Diurnal activity model.

Human Internet activity follows a strong diurnal pattern (the paper leans
on this for the IP ID velocity technique, §3.1.3). The activity multiplier
is a two-harmonic Fourier series over local time of day with mean exactly
1, so multiplying a demand by the curve preserves daily totals:

    m(h) = 1 + c1*cos(wh) + s1*sin(wh) + c2*cos(2wh) + s2*sin(2wh)

with w = 2*pi/24. The default coefficients are fitted to a realistic
shape: trough ~0.36 around 04:00 local, evening peak ~1.55 around 20:00.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

SECONDS_PER_DAY = 86_400.0
_OMEGA_H = 2.0 * math.pi / 24.0


@dataclass(frozen=True)
class DiurnalCurve:
    """Mean-1 diurnal multiplier over local hour-of-day."""

    cos1: float = -0.06136
    sin1: float = -0.48401
    cos2: float = 0.02873
    sin2: float = -0.19745

    def __post_init__(self) -> None:
        hours = np.linspace(0.0, 24.0, 481)
        values = (1.0
                  + self.cos1 * np.cos(_OMEGA_H * hours)
                  + self.sin1 * np.sin(_OMEGA_H * hours)
                  + self.cos2 * np.cos(2 * _OMEGA_H * hours)
                  + self.sin2 * np.sin(2 * _OMEGA_H * hours))
        if values.min() <= 0:
            raise ConfigError("diurnal curve must stay positive")

    def value(self, local_hour: float) -> float:
        """Activity multiplier at a local hour (wraps mod 24)."""
        theta = _OMEGA_H * local_hour
        return (1.0
                + self.cos1 * math.cos(theta)
                + self.sin1 * math.sin(theta)
                + self.cos2 * math.cos(2 * theta)
                + self.sin2 * math.sin(2 * theta))

    def value_at(self, t_seconds: float, utc_offset: float) -> float:
        """Multiplier at absolute time ``t_seconds`` (UTC epoch of the
        simulation) for a place with the given UTC offset in hours."""
        local_hour = ((t_seconds / 3600.0) + utc_offset) % 24.0
        return self.value(local_hour)

    def integral(self, t0: float, t1: float, utc_offset: float) -> float:
        """Closed-form integral of the multiplier over [t0, t1] seconds.

        Useful for counting events of a non-homogeneous Poisson process
        with rate ``base_rate * value_at(t)``: the expected count over
        [t0, t1] is ``base_rate * integral(t0, t1)``.
        """
        if t1 < t0:
            raise ConfigError("t1 must be >= t0")
        omega = 2.0 * math.pi / SECONDS_PER_DAY
        phase = _OMEGA_H * utc_offset

        def antiderivative(t: float) -> float:
            theta = omega * t + phase
            return (t
                    + self.cos1 * math.sin(theta) / omega
                    - self.sin1 * math.cos(theta) / omega
                    + self.cos2 * math.sin(2 * theta) / (2 * omega)
                    - self.sin2 * math.cos(2 * theta) / (2 * omega))

        return antiderivative(t1) - antiderivative(t0)

    def mean_over_day(self) -> float:
        """Sanity helper: the daily mean is 1 by construction."""
        return self.integral(0.0, SECONDS_PER_DAY, 0.0) / SECONDS_PER_DAY

    def peak_hour(self) -> float:
        """Local hour with the highest multiplier (grid search)."""
        hours = np.linspace(0.0, 24.0, 481)
        values = [self.value(float(h)) for h in hours]
        return float(hours[int(np.argmax(values))])

    def trough_hour(self) -> float:
        """Local hour with the lowest multiplier (grid search)."""
        hours = np.linspace(0.0, 24.0, 481)
        values = [self.value(float(h)) for h in hours]
        return float(hours[int(np.argmin(values))])
