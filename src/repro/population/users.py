"""User populations: subscribers per AS and users per /24 prefix.

This is *ground truth* the paper's techniques try to recover: which prefixes
host users (§3.1 "Where are users?") and at what relative activity levels.

Subscriber counts per eyeball AS come from the topology's size weights
(country-local Zipf scaled by country Internet users), except for the named
focus ISPs whose counts are pinned so Figure 2 has its ground-truth axis.
Within an AS, subscribers are spread over its access /24s with log-normal
dispersion, so prefix-level activity spans orders of magnitude like the real
Internet.

The module also allocates the *userless* part of the address space:
infrastructure, hosting and scanner prefixes — the pool from which cache
probing could draw false positives (§3.1.2 reports <1%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..config import PopulationConfig
from ..errors import ConfigError
from ..net.ases import ASRegistry, ASType
from ..net.geography import WorldAtlas
from ..net.prefixes import PrefixKind, PrefixTable
from ..net.topology import TopologyBuild


@dataclass
class PopulationModel:
    """Ground-truth population: users per prefix and per AS."""

    prefix_table: PrefixTable
    users_per_prefix: np.ndarray                 # aligned with prefix ids
    subscribers_by_as: Dict[int, float]          # eyeball ASN -> subscribers
    scanner_rate_per_prefix: np.ndarray          # DNS-active non-users
    focus_subscribers_m: Dict[int, float] = field(default_factory=dict)

    def pad_to_table(self) -> None:
        """Zero-extend per-prefix vectors after later allocation phases
        (e.g. serving prefixes) appended to the prefix table."""
        n = len(self.prefix_table)
        for name in ("users_per_prefix", "scanner_rate_per_prefix"):
            vec = getattr(self, name)
            if len(vec) < n:
                setattr(self, name, np.concatenate(
                    [vec, np.zeros(n - len(vec))]))

    def users_in_as(self, asn: int) -> float:
        pids = self.prefix_table.prefixes_of_as(asn)
        if not pids:
            return 0.0
        return float(self.users_per_prefix[pids].sum())

    def users_by_as(self) -> Dict[int, float]:
        return self.prefix_table.group_by_as(self.users_per_prefix)

    def users_by_country(self, registry: ASRegistry) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for asn, users in self.users_by_as().items():
            asys = registry.maybe(asn)
            if asys is None or users <= 0:
                continue
            totals[asys.country_code] = totals.get(asys.country_code, 0) + users
        return totals

    @property
    def total_users(self) -> float:
        return float(self.users_per_prefix.sum())

    def prefixes_with_users(self) -> np.ndarray:
        return np.flatnonzero(self.users_per_prefix > 0)


def build_population(config: PopulationConfig, atlas: WorldAtlas,
                     topo: TopologyBuild, prefix_table: PrefixTable,
                     rng: np.random.Generator) -> PopulationModel:
    """Allocate prefixes and distribute users over them.

    Must run before the prefix table is frozen; it appends ACCESS prefixes
    for every eyeball AS plus INFRA/HOSTING/SCANNER prefixes, then the
    scenario freezes the table after serving prefixes are added too.
    """
    config.validate()
    if prefix_table.frozen:
        raise ConfigError("prefix table already frozen")
    registry = topo.registry

    # Subscribers per eyeball AS: pinned for focus ISPs, scaled weights
    # otherwise. The global scale makes one weight unit ~ one million users.
    subscribers: Dict[int, float] = {}
    for asn, weight in topo.eyeball_size_weight.items():
        pinned = topo.focus_subscribers_m.get(asn)
        if pinned is not None:
            subscribers[asn] = pinned * 1e6
        else:
            subscribers[asn] = weight * 1e6

    total_subscribers = sum(subscribers.values())
    if total_subscribers <= 0:
        raise ConfigError("no subscribers generated")

    # Access-prefix budget: most of the target address space, sized per AS
    # sublinearly in subscribers (big ISPs aggregate more users per /24).
    access_budget = int(config.target_prefixes
                        * (1.0 - config.userless_prefix_fraction))
    raw = {asn: max(subs, 1.0) ** 0.85 for asn, subs in subscribers.items()}
    raw_total = sum(raw.values())
    prefix_counts: Dict[int, int] = {
        asn: max(1, int(round(access_budget * share / raw_total)))
        for asn, share in raw.items()}

    users_list: List[float] = []
    scanner_list: List[float] = []

    def push(users: float, scanner: float) -> None:
        users_list.append(users)
        scanner_list.append(scanner)

    for asn in sorted(subscribers):
        asys = registry.get(asn)
        country = atlas.country(asys.country_code)
        n_prefixes = prefix_counts[asn]
        # Spread prefixes over the country's cities, weighted to the
        # ISP's home city.
        cities = list(country.cities)
        weights = np.array([3.0 if c == asys.home_city else 1.0
                            for c in cities])
        weights = weights / weights.sum()
        city_draws = rng.choice(len(cities), size=n_prefixes, p=weights)
        # Log-normal dispersion of users across prefixes, then scaled so the
        # AS total matches its subscriber count exactly.
        dispersion = rng.lognormal(0.0, config.prefix_dispersion_sigma,
                                   size=n_prefixes)
        dispersion *= subscribers[asn] / dispersion.sum()
        for users, city_idx in zip(dispersion, city_draws):
            prefix_table.add(asn, PrefixKind.ACCESS, cities[int(city_idx)])
            push(float(users), 0.0)

    # Userless address space.
    userless_budget = config.target_prefixes - len(prefix_table)
    userless_budget = max(userless_budget, 0)
    infra_share, hosting_share, scanner_share = 0.48, 0.49, 0.03
    transit_like = [a for a in registry
                    if a.as_type in (ASType.TIER1, ASType.TRANSIT)]
    stubs = registry.of_type(ASType.STUB)

    n_infra = int(userless_budget * infra_share)
    for i in range(n_infra):
        owner = transit_like[i % len(transit_like)] if transit_like else None
        if owner is None:
            break
        prefix_table.add(owner.asn, PrefixKind.INFRA, owner.home_city)
        push(0.0, 0.0)

    n_hosting = int(userless_budget * hosting_share)
    for i in range(n_hosting):
        owner = stubs[i % len(stubs)] if stubs else None
        if owner is None:
            break
        prefix_table.add(owner.asn, PrefixKind.HOSTING, owner.home_city)
        push(0.0, 0.0)

    # A small population of scanner/bot prefixes: DNS-loud, zero CDN
    # bytes. Their lookup rates overlap the low end of real user-prefix
    # rates, so a few get "detected" by cache probing — the paper's <1%
    # false-positive pool.
    n_scanner = max(1, int(userless_budget * scanner_share))
    hosts = stubs or transit_like
    for i in range(n_scanner):
        owner = hosts[i % len(hosts)]
        prefix_table.add(owner.asn, PrefixKind.SCANNER, owner.home_city)
        push(0.0, float(rng.lognormal(np.log(0.08), 1.5)))

    return PopulationModel(
        prefix_table=prefix_table,
        users_per_prefix=np.asarray(users_list, dtype=float),
        subscribers_by_as=subscribers,
        scanner_rate_per_prefix=np.asarray(scanner_list, dtype=float),
        focus_subscribers_m=dict(topo.focus_subscribers_m),
    )
