"""Simulated APNIC per-AS user estimates.

APNIC labs publishes estimated user counts per AS derived from ad-based
sampling [33]. The paper uses them as the best public baseline while noting
they are coarse-grained (AS granularity), yearly, and unvalidated. We
reproduce an estimator with exactly those properties:

* AS granularity only — no prefix detail;
* multiplicative log-normal noise on the true user counts;
* incomplete coverage — ASes below a user threshold are missing, plus a
  few percent dropped at random (sampling holes).

Figures 1b and 2 consume these estimates the same way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import PopulationConfig
from ..net.ases import ASRegistry
from .users import PopulationModel


@dataclass(frozen=True)
class ApnicDataset:
    """A yearly snapshot of per-AS user estimates (public data)."""

    estimates: Dict[int, float]       # ASN -> estimated users
    snapshot_year: int = 2021

    def users_for_as(self, asn: int) -> Optional[float]:
        """Estimated users, or None if APNIC has no data for the AS."""
        return self.estimates.get(asn)

    def covered_asns(self) -> "frozenset[int]":
        return frozenset(self.estimates)

    def users_by_country(self, registry: ASRegistry) -> Dict[str, float]:
        """Country totals of estimated users (AS home country attribution,
        mirroring how per-country APNIC rollups are built)."""
        totals: Dict[str, float] = {}
        for asn, users in self.estimates.items():
            asys = registry.maybe(asn)
            if asys is None:
                continue
            totals[asys.country_code] = totals.get(asys.country_code, 0) + users
        return totals

    @property
    def total_users(self) -> float:
        return float(sum(self.estimates.values()))


def simulate_apnic(config: PopulationConfig, population: PopulationModel,
                   rng: np.random.Generator,
                   dropout_fraction: float = 0.04) -> ApnicDataset:
    """Produce the public APNIC-style dataset from ground truth."""
    estimates: Dict[int, float] = {}
    for asn, users in sorted(population.users_by_as().items()):
        if users < config.apnic_min_users_covered:
            continue
        if rng.random() < dropout_fraction:
            continue
        noise = float(rng.lognormal(0.0, config.apnic_noise_sigma))
        estimates[asn] = users * noise
    return ApnicDataset(estimates=estimates)
