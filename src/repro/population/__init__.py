"""User populations, activity models and the simulated APNIC estimator."""
