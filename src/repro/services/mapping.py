"""Ground-truth mapping from users to serving hosts (§3.2).

For every hypergiant we compute, per client /24:

* the **optimal** serving site — the off-net cache inside the client's own
  AS when one exists, else the geographically nearest on-net site;
* the **DNS-redirection** assignment — what the hypergiant's mapping system
  actually does. Mapping quality grows with the client network's size:
  hypergiants peer directly with large eyeballs and have rich measurements
  for them, while small and remote networks are frequently mapped to a
  suboptimal site. This reproduces the structure behind the paper's §2.1
  observation (from [38]) that only ~31% of *routes* go to the closest site
  while ~60% of *users* are mapped optimally;
* the **anycast** assignment — BGP catchments from
  :class:`repro.services.anycast.AnycastModel`;
* the **custom-URL** assignment — optimal by construction: per-client URLs
  allow very precise redirection, so "the vast majority of bytes served
  from sites reached via custom URLs are likely from the optimal site"
  (§3.2.3).

The authoritative DNS layer answers ECS queries out of these assignments,
so measurement techniques observe exactly what the mapping system decided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..net.ases import ASRegistry, ASType
from ..net.geography import haversine_km_matrix
from ..net.prefixes import PrefixTable
from .anycast import AnycastModel
from .catalog import Service, ServiceCatalog
from .cdn import CdnDeployment, ServingSite, SiteKind
from .hypergiants import RedirectionScheme

# Mapping-quality model: P(optimal) = BASE + COEFF * (1 - quantile)^EXPONENT
# where quantile is 0 for the biggest client AS and 1 for the smallest.
QUALITY_BASE = 0.05
QUALITY_COEFF = 0.90
QUALITY_EXPONENT = 2.4
# A suboptimal mapping lands on one of the next-nearest sites.
SUBOPTIMAL_CANDIDATES = 5


@dataclass
class SchemeAssignment:
    """Per-prefix site assignment for one (hypergiant, scheme) pair."""

    site_index: np.ndarray      # (P,) index into hypergiant's site list, -1 = none
    dist_km: np.ndarray         # (P,) distance client -> assigned site
    optimal_index: np.ndarray   # (P,) index of the optimal site
    optimal_dist_km: np.ndarray # (P,) distance client -> optimal site

    def extra_km(self) -> np.ndarray:
        """Distance penalty of the actual assignment over the optimum."""
        return self.dist_km - self.optimal_dist_km

    def is_optimal(self) -> np.ndarray:
        return self.site_index == self.optimal_index


class GroundTruthMapping:
    """All ground-truth client->site assignments, per hypergiant/scheme."""

    def __init__(self, prefix_table: PrefixTable, registry: ASRegistry,
                 deployment: CdnDeployment, catalog: ServiceCatalog,
                 anycast_models: Dict[str, AnycastModel],
                 users_per_prefix: np.ndarray,
                 rng: np.random.Generator) -> None:
        if not prefix_table.frozen:
            raise ConfigError("freeze the prefix table before mapping")
        if len(users_per_prefix) != len(prefix_table):
            raise ConfigError("users vector does not match prefix table")
        self._prefixes = prefix_table
        self._registry = registry
        self._deployment = deployment
        self._catalog = catalog
        self._anycast = anycast_models
        self._rng = rng
        self._prefix_quantile = self._compute_prefix_quantiles(
            np.asarray(users_per_prefix, dtype=float))
        self._city_lat, self._city_lon = self._city_coords()
        self._city_index = self._prefixes.city_index_array
        self._city_dist: Dict[str, np.ndarray] = {}
        self._assignments: Dict[tuple, SchemeAssignment] = {}

    # -- geometry helpers ------------------------------------------------------

    def _city_coords(self) -> "tuple[np.ndarray, np.ndarray]":
        cities = self._prefixes.cities
        lats = np.array([c.lat for c in cities])
        lons = np.array([c.lon for c in cities])
        return lats, lons

    @staticmethod
    def _compute_prefix_quantiles(users_per_prefix: np.ndarray) -> np.ndarray:
        """Per-prefix size quantile: 0 for the highest-user /24, 1 for the
        smallest (userless prefixes pinned at 1).

        Mapping systems know their heavy client prefixes best — they peer
        with the networks behind them and measure them constantly — so
        mapping quality is a function of prefix weight, which is what
        makes "31% of routes vs 60% of users optimal" [38] possible.
        """
        quantile = np.ones(len(users_per_prefix))
        with_users = np.flatnonzero(users_per_prefix > 0)
        if len(with_users):
            order = np.argsort(-users_per_prefix[with_users], kind="stable")
            ranks = np.empty(len(with_users))
            ranks[order] = np.arange(len(with_users))
            quantile[with_users] = ranks / max(1, len(with_users) - 1)
        return quantile

    # -- core computation ----------------------------------------------------

    def _sites_of(self, hg_key: str) -> List[ServingSite]:
        sites = self._deployment.sites(hg_key)
        if not sites:
            raise ConfigError(f"hypergiant {hg_key!r} has no sites")
        return sites

    def _distance_matrix(self, hg_key: str,
                         sites: Sequence[ServingSite]) -> np.ndarray:
        """City-to-site distances, (C, S). Prefixes share a handful of
        cities, so distances are computed once per unique city and looked
        up through ``city_index_array`` — identical values to a full
        per-prefix matrix at a fraction of the memory and time."""
        cached = self._city_dist.get(hg_key)
        if cached is None or cached.shape[1] != len(sites):
            lats = np.array([s.city.lat for s in sites])
            lons = np.array([s.city.lon for s in sites])
            cached = haversine_km_matrix(self._city_lat, self._city_lon,
                                         lats, lons)
            self._city_dist[hg_key] = cached
        return cached

    def _apply_overrides(self, assigned: np.ndarray,
                         overrides: Dict[int, int]) -> None:
        """Vectorised ``assigned[asns == asn] = site`` for every override."""
        if not overrides:
            return
        asns = self._prefixes.asn_array
        keys = np.fromiter(sorted(overrides), dtype=np.int64,
                           count=len(overrides))
        values = np.array([overrides[int(k)] for k in keys], dtype=assigned.dtype)
        pos = np.searchsorted(keys, asns)
        pos_safe = np.clip(pos, 0, len(keys) - 1)
        hit = keys[pos_safe] == asns
        assigned[hit] = values[pos_safe[hit]]

    def _offnet_override(self, hg_key: str, sites: Sequence[ServingSite]
                         ) -> Dict[int, int]:
        """ASN -> site index of its in-AS off-net cache."""
        overrides: Dict[int, int] = {}
        for idx, site in enumerate(sites):
            if site.kind is SiteKind.OFFNET:
                overrides[site.host_asn] = idx
        return overrides

    def _optimal_assignment(self, hg_key: str) -> SchemeAssignment:
        sites = self._sites_of(hg_key)
        dist = self._distance_matrix(hg_key, sites)
        onnet_mask = np.array([s.kind is SiteKind.ONNET for s in sites])
        # Optimal among on-net sites, unless the client's AS hosts an
        # off-net cache — then that cache wins regardless of geography.
        masked = np.where(onnet_mask[None, :], dist, np.inf)
        if not onnet_mask.any():
            masked = dist
        city_optimal = np.argmin(masked, axis=1).astype(np.int32)
        optimal_idx = city_optimal[self._city_index]
        self._apply_overrides(optimal_idx,
                              self._offnet_override(hg_key, sites))
        optimal_dist = dist[self._city_index, optimal_idx]
        return SchemeAssignment(
            site_index=optimal_idx.copy(), dist_km=optimal_dist.copy(),
            optimal_index=optimal_idx, optimal_dist_km=optimal_dist)

    def _dns_assignment(self, hg_key: str) -> SchemeAssignment:
        sites = self._sites_of(hg_key)
        dist = self._distance_matrix(hg_key, sites)
        optimal = self._optimal_assignment(hg_key)
        n_prefixes = len(self._prefixes)
        quantiles = self._prefix_quantile
        p_optimal = QUALITY_BASE + QUALITY_COEFF * (1.0 - quantiles) ** QUALITY_EXPONENT
        optimal_draw = self._rng.random(n_prefixes) < p_optimal
        assigned = optimal.optimal_index.copy()
        # Suboptimal clients land on one of the next-nearest on-net sites.
        onnet_mask = np.array([s.kind is SiteKind.ONNET for s in sites])
        masked = np.where(onnet_mask[None, :], dist, np.inf)
        if not onnet_mask.any():
            masked = dist
        k = min(SUBOPTIMAL_CANDIDATES + 1, masked.shape[1])
        nearest_k = np.argsort(masked, axis=1)[:, :k]
        sub_rows = np.flatnonzero(~optimal_draw)
        if k > 1 and len(sub_rows):
            pick = self._rng.integers(1, k, size=len(sub_rows))
            assigned[sub_rows] = nearest_k[self._city_index[sub_rows], pick]
        # Off-net caches always serve their own AS (the cache is *in* the
        # request path and mapping it is trivial for the hypergiant).
        self._apply_overrides(assigned, self._offnet_override(hg_key, sites))
        assigned = assigned.astype(np.int32)
        assigned_dist = dist[self._city_index, assigned]
        return SchemeAssignment(
            site_index=assigned, dist_km=assigned_dist,
            optimal_index=optimal.optimal_index,
            optimal_dist_km=optimal.optimal_dist_km)

    def _anycast_assignment(self, hg_key: str) -> SchemeAssignment:
        model = self._anycast.get(hg_key)
        if model is None:
            raise ConfigError(f"{hg_key!r} has no anycast model")
        sites = self._sites_of(hg_key)
        dist = self._distance_matrix(hg_key, sites)
        optimal = self._optimal_assignment(hg_key)
        assigned = np.full(len(self._prefixes), -1, dtype=np.int32)
        site_by_asn: Dict[int, int] = {}
        for asn in sorted(set(int(a) for a in self._prefixes.asn_array)):
            result = model.catchment(asn)
            if result is not None:
                site_by_asn[asn] = result.site.site_id
        self._apply_overrides(assigned, site_by_asn)
        safe = np.where(assigned >= 0, assigned, 0)
        assigned_dist = dist[self._city_index, safe]
        assigned_dist[assigned < 0] = np.inf
        return SchemeAssignment(
            site_index=assigned, dist_km=assigned_dist,
            optimal_index=optimal.optimal_index,
            optimal_dist_km=optimal.optimal_dist_km)

    # -- public API -----------------------------------------------------------

    def assignment(self, hg_key: str,
                   scheme: RedirectionScheme) -> SchemeAssignment:
        """Per-prefix assignment for a hypergiant under a scheme (cached)."""
        cache_key = (hg_key, scheme)
        if cache_key not in self._assignments:
            if scheme is RedirectionScheme.DNS:
                result = self._dns_assignment(hg_key)
            elif scheme is RedirectionScheme.ANYCAST:
                result = self._anycast_assignment(hg_key)
            else:  # CUSTOM_URL serves from the optimal site (§3.2.3)
                result = self._optimal_assignment(hg_key)
            self._assignments[cache_key] = result
        return self._assignments[cache_key]

    def assignment_for_service(self, service: Service) -> Optional[SchemeAssignment]:
        """Assignment for a service; None for stub-hosted services."""
        if service.host_key is None:
            return None
        return self.assignment(service.host_key, service.redirection)

    def sites_of(self, hg_key: str) -> List[ServingSite]:
        """The hypergiant's site list, index-aligned with assignments."""
        return self._sites_of(hg_key)

    def site_of(self, service: Service, pid: int) -> Optional[ServingSite]:
        """Ground-truth serving site for a client prefix (None if the
        service is stub-hosted or the prefix is unmapped)."""
        assignment = self.assignment_for_service(service)
        if assignment is None:
            return None
        site_idx = int(assignment.site_index[pid])
        if site_idx < 0:
            return None
        return self._sites_of(service.host_key)[site_idx]
