"""TLS certificates bound to serving prefixes.

"TLS certificates validate the owner of a resource. With the recent
dramatic increase in web encryption, we used TLS scans to identify the
global serving infrastructure of large content providers and CDNs" (§3.2.2,
[25]). The store below is what an Internet-wide scanner can observe: for a
given address, the certificate served on port 443 — its organisation and
its SAN list.

Off-net caches present the *hypergiant's* certificate from inside an
eyeball AS, which is precisely the signal that lets TLS scans find off-nets
(cert organisation != address-space owner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..net.prefixes import PrefixTable
from .catalog import ServiceCatalog
from .cdn import CdnDeployment, SiteKind


@dataclass(frozen=True)
class Certificate:
    """An X.509 certificate as seen by a scanner (the relevant fields)."""

    organization: str
    common_name: str
    sans: Tuple[str, ...]

    def covers_domain(self, domain: str) -> bool:
        return domain == self.common_name or domain in self.sans


class CertificateStore:
    """Maps serving prefix -> certificate presented on its addresses."""

    def __init__(self) -> None:
        self._by_prefix: Dict[int, Certificate] = {}

    def bind(self, pid: int, cert: Certificate) -> None:
        if pid in self._by_prefix:
            raise ConfigError(f"prefix {pid} already has a certificate")
        self._by_prefix[pid] = cert

    def cert_for_prefix(self, pid: int) -> Optional[Certificate]:
        """The certificate served from this /24, or None (no TLS listener).

        This is the public scan surface: anyone can connect to port 443.
        """
        return self._by_prefix.get(pid)

    def prefixes_with_tls(self) -> List[int]:
        return sorted(self._by_prefix)

    def __len__(self) -> int:
        return len(self._by_prefix)


def issue_certificates(catalog: ServiceCatalog, deployment: CdnDeployment,
                       prefix_table: PrefixTable,
                       rng: np.random.Generator) -> CertificateStore:
    """Issue certificates for every serving prefix.

    * On-net prefixes carry the hypergiant's cert with SANs for the services
      it hosts there (all of them for simplicity — large providers use a
      small set of wildcard-heavy certs).
    * Off-net caches carry the hypergiant cert with SANs for the
      hypergiant's own cacheable services.
    * Stub-hosted services carry a self-branded cert.
    """
    store = CertificateStore()
    for key, spec in catalog.hypergiants.items():
        hosted = catalog.services_hosted_by(key)
        all_domains = tuple(s.domain for s in hosted)
        own_domains = tuple(s.domain for s in hosted if s.owner_key == key)
        for site in deployment.sites(key):
            sans = all_domains if site.kind is SiteKind.ONNET else (
                own_domains or all_domains[:1])
            cert = Certificate(
                organization=spec.cert_org,
                common_name=f"edge.{key}.example",
                sans=sans)
            for pid in site.prefix_ids:
                store.bind(pid, cert)
    for service_key, pid in deployment.stub_hosting.items():
        service = catalog.get(service_key)
        store.bind(pid, Certificate(
            organization=f"{service_key} org",
            common_name=service.domain,
            sans=(service.domain,)))
    return store
