"""Services substrate: hypergiants, the service catalogue, serving
infrastructure (on-nets, off-nets, anycast), DNS and TLS."""
