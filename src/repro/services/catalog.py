"""The service catalogue: popular sites, their owners, shares and DNS traits.

Two distinct notions of "size" coexist, as on the real Internet:

* ``visits_weight`` — popularity: how often users *visit/resolve* the
  service. The Alexa-style top list ranks by this.
* ``bytes_share`` — fraction of total Internet *bytes* the service accounts
  for. SimilarWeb/byte-volume views rank by this.

They deliberately diverge (video services carry many bytes per visit), which
is what makes the paper's §3.2.3 ECS observation consistent: 15 of the top
20 *sites* support ECS, representing ~35% of Internet traffic and ~91% of
traffic to the top 20 — while heavy custom-URL VOD services sit outside the
top-20 popularity list.

The named-service table below is calibrated so those numbers come out of
the catalogue by construction; the long tail of third-party services is
generated with a Zipf law and mostly hosted on hypergiant clouds, keeping
the hypergiants' infrastructure share of total traffic near the ~90% the
paper cites [25].
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ServiceConfig
from ..errors import ConfigError
from ..rand import zipf_weights
from .hypergiants import (HypergiantSpec, RedirectionScheme,
                          default_hypergiants)


@dataclass(frozen=True)
class Service:
    """One popular service ("site") with its public and structural traits."""

    sid: int
    key: str
    domain: str
    owner_key: Optional[str]    # hypergiant that owns the service, if any
    host_key: Optional[str]     # hypergiant whose infra serves it (None=stub)
    bytes_share: float          # fraction of total Internet bytes
    visits_weight: float        # unnormalised popularity weight
    ecs_supported: bool
    redirection: RedirectionScheme
    dns_ttl: int

    @property
    def served_by_hypergiant(self) -> bool:
        return self.host_key is not None


# (key, owner, host, bytes_%, visits_weight, ecs, redirection)
# The first 20 rows are the popularity top-20; 15 support ECS.
_NAMED: Tuple[Tuple[str, Optional[str], Optional[str], float, float, bool,
                    RedirectionScheme], ...] = (
    ("googol-search", "googol", "googol", 4.00, 100.0, True, RedirectionScheme.DNS),
    ("googol-video", "googol", "googol", 10.50, 85.0, True, RedirectionScheme.DNS),
    ("metabook-social", "metabook", "metabook", 5.50, 80.0, True, RedirectionScheme.DNS),
    ("metabook-photos", "metabook", "metabook", 3.50, 60.0, True, RedirectionScheme.DNS),
    ("tiktak-video", "tiktak", "tiktak", 4.00, 55.0, True, RedirectionScheme.DNS),
    ("shopzon", "amazonia", "amazonia", 1.00, 50.0, True, RedirectionScheme.DNS),
    ("wikiknow", None, "cloudfast", 0.90, 45.0, False, RedirectionScheme.ANYCAST),
    ("googol-mail", "googol", "googol", 0.80, 42.0, True, RedirectionScheme.DNS),
    ("chirper", None, "fastedge", 0.60, 40.0, False, RedirectionScheme.ANYCAST),
    ("office-cloud", "microcdn", "microcdn", 1.60, 38.0, True, RedirectionScheme.DNS),
    ("msn-portal", "microcdn", "microcdn", 0.60, 35.0, True, RedirectionScheme.DNS),
    ("metabook-chat", "metabook", "metabook", 0.80, 33.0, True, RedirectionScheme.DNS),
    ("redditlike", None, "cloudfast", 0.70, 30.0, False, RedirectionScheme.ANYCAST),
    ("pinzone", None, "amazonia", 0.80, 28.0, False, RedirectionScheme.DNS),
    ("orchard-store", "appleorchard", "appleorchard", 1.00, 26.0, True, RedirectionScheme.DNS),
    ("orchard-icloud", "appleorchard", "appleorchard", 0.70, 24.0, True, RedirectionScheme.DNS),
    ("newsglobe", None, "amazonia", 0.50, 22.0, False, RedirectionScheme.DNS),
    ("akamee-games", None, "akamee", 0.60, 20.0, True, RedirectionScheme.DNS),
    ("cloudmart", None, "microcdn", 0.35, 19.0, True, RedirectionScheme.DNS),
    ("vidshort", None, "googol", 0.35, 18.0, True, RedirectionScheme.DNS),
    # -- below the popularity top-20: the heavy hitters by bytes -------------
    ("streamflix-vod", "streamflix", "streamflix", 13.00, 17.0, False,
     RedirectionScheme.CUSTOM_URL),
    ("primevid", "amazonia", "amazonia", 3.00, 15.0, False,
     RedirectionScheme.CUSTOM_URL),
    ("gamestorm", None, "akamee", 2.50, 13.0, False,
     RedirectionScheme.CUSTOM_URL),
    ("cdn-assets", "akamee", "akamee", 2.50, 6.0, True, RedirectionScheme.DNS),
    ("musicstream", "appleorchard", "appleorchard", 2.00, 12.0, True,
     RedirectionScheme.DNS),
    ("clouddrive", "googol", "googol", 2.00, 11.0, True, RedirectionScheme.DNS),
    ("xbox-live", "microcdn", "microcdn", 1.50, 10.0, True, RedirectionScheme.DNS),
    ("cloudstore-b2b", "amazonia", "amazonia", 1.50, 8.0, True, RedirectionScheme.DNS),
    ("edge-bundle", "cloudfast", "cloudfast", 1.50, 6.0, False,
     RedirectionScheme.ANYCAST),
    ("maps", "googol", "googol", 1.20, 10.0, True, RedirectionScheme.DNS),
    ("conference-app", "microcdn", "microcdn", 1.00, 9.0, True, RedirectionScheme.DNS),
    ("metaverse", "metabook", "metabook", 1.00, 7.0, True, RedirectionScheme.DNS),
    ("voicechat", None, "googol", 0.80, 7.0, True, RedirectionScheme.DNS),
    ("fastsites", "fastedge", "fastedge", 0.70, 5.0, False,
     RedirectionScheme.ANYCAST),
)

TOP_LIST_SIZE = 20

# Fraction of long-tail services hosted on hypergiant clouds (the rest sit
# in stub hosting ASes); chosen so hypergiant infrastructure carries ~90%
# of all bytes, matching [25].
_LONGTAIL_CLOUD_HOSTED = 0.70
# Relative hosting market share among the cloud hypergiants.
_CLOUD_HOST_WEIGHTS = {
    "amazonia": 0.36, "googol": 0.22, "microcdn": 0.20,
    "cloudfast": 0.12, "akamee": 0.10,
}


class ServiceCatalog:
    """All services of the simulated Internet, with share bookkeeping."""

    def __init__(self, services: Sequence[Service],
                 hypergiants: Dict[str, HypergiantSpec]) -> None:
        if not services:
            raise ConfigError("empty service catalogue")
        total = sum(s.bytes_share for s in services)
        if not 0.999 <= total <= 1.001:
            raise ConfigError(f"bytes shares sum to {total}, expected 1")
        self._services = list(services)
        self._by_key = {s.key: s for s in services}
        if len(self._by_key) != len(self._services):
            raise ConfigError("duplicate service keys")
        self.hypergiants = hypergiants

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, config: ServiceConfig,
              rng: np.random.Generator) -> "ServiceCatalog":
        """Named table + generated long tail, bytes shares normalised."""
        config.validate()
        hypergiants = default_hypergiants()
        named_bytes = sum(row[3] for row in _NAMED) / 100.0
        tail_total = max(0.0, 1.0 - named_bytes)
        services: List[Service] = []
        for sid, row in enumerate(_NAMED):
            key, owner, host, share, visits, ecs, redirection = row
            if host is not None and host not in hypergiants:
                raise ConfigError(f"unknown host hypergiant {host!r}")
            services.append(Service(
                sid=sid, key=key, domain=f"www.{key}.example",
                owner_key=owner, host_key=host,
                bytes_share=share / 100.0, visits_weight=visits,
                ecs_supported=ecs, redirection=redirection,
                dns_ttl=config.default_dns_ttl))
        # Long tail: Zipf bytes shares, modest popularity, cloud-hosted.
        n_tail = config.n_longtail_services
        if n_tail > 0 and tail_total > 0:
            tail_shares = zipf_weights(n_tail, config.longtail_zipf_exponent)
            tail_shares = tail_shares * tail_total
            cloud_keys = list(_CLOUD_HOST_WEIGHTS)
            cloud_probs = np.array([_CLOUD_HOST_WEIGHTS[k] for k in cloud_keys])
            cloud_probs = cloud_probs / cloud_probs.sum()
            for i in range(n_tail):
                sid = len(services)
                if rng.random() < _LONGTAIL_CLOUD_HOSTED:
                    host: Optional[str] = cloud_keys[int(
                        rng.choice(len(cloud_keys), p=cloud_probs))]
                else:
                    host = None  # stub hosting
                host_spec = hypergiants.get(host) if host else None
                anycast = bool(host_spec and host_spec.uses_anycast)
                services.append(Service(
                    sid=sid, key=f"tail-{i + 1}",
                    domain=f"www.tail-{i + 1}.example",
                    owner_key=None, host_key=host,
                    bytes_share=float(tail_shares[i]),
                    visits_weight=float(4.0 * tail_shares[i] / tail_shares[0]
                                        + 0.05),
                    ecs_supported=bool(host_spec) and not anycast
                    and rng.random() < 0.6,
                    redirection=(RedirectionScheme.ANYCAST if anycast
                                 else RedirectionScheme.DNS),
                    dns_ttl=config.default_dns_ttl))
        # Renormalise bytes shares (exact 1.0 regardless of tail size).
        total = sum(s.bytes_share for s in services)
        services = [dataclasses.replace(s, bytes_share=s.bytes_share / total)
                    for s in services]
        return cls(services, hypergiants)

    # -- accessors -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self):
        return iter(self._services)

    def get(self, key: str) -> Service:
        try:
            return self._by_key[key]
        except KeyError:
            raise ConfigError(f"unknown service {key!r}") from None

    def by_sid(self, sid: int) -> Service:
        if not 0 <= sid < len(self._services):
            raise ConfigError(f"unknown service id {sid}")
        return self._services[sid]

    @property
    def services(self) -> List[Service]:
        return list(self._services)

    def top_by_popularity(self, k: int = TOP_LIST_SIZE) -> List[Service]:
        """The Alexa-style top list (rank by visits weight)."""
        ranked = sorted(self._services,
                        key=lambda s: (-s.visits_weight, s.sid))
        return ranked[:k]

    def services_hosted_by(self, hypergiant_key: str) -> List[Service]:
        return [s for s in self._services if s.host_key == hypergiant_key]

    def hypergiant_bytes_share(self, hypergiant_key: str) -> float:
        """Fraction of all bytes served from this hypergiant's infra."""
        return sum(s.bytes_share for s in self.services_hosted_by(
            hypergiant_key))

    def total_hypergiant_share(self) -> float:
        """Fraction of bytes served by any hypergiant (paper: ~90%)."""
        return sum(s.bytes_share for s in self._services
                   if s.host_key is not None)

    def visits_share(self, service: Service) -> float:
        total = sum(s.visits_weight for s in self._services)
        return service.visits_weight / total

    def dns_redirected(self) -> List[Service]:
        return [s for s in self._services
                if s.redirection is RedirectionScheme.DNS]

    def anycast_services(self) -> List[Service]:
        return [s for s in self._services
                if s.redirection is RedirectionScheme.ANYCAST]

    def custom_url_services(self) -> List[Service]:
        return [s for s in self._services
                if s.redirection is RedirectionScheme.CUSTOM_URL]

    def ecs_services(self) -> List[Service]:
        return [s for s in self._services if s.ecs_supported]
