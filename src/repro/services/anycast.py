"""Anycast catchments.

Anycast services announce one prefix from many sites; BGP, not the
operator, picks the serving site for each client ("some services ... use
anycast [14] to direct a user to a site", §3.2.3). We model catchment
formation through the *entry point* of the client's route into the anycast
operator's network:

* clients that peer directly with the operator enter at the common
  facility closest to the client's home city (flattened Internet: this is
  the common case, and it yields near-optimal catchments — the basis of the
  paper's observation that anycast is "extremely efficient for large
  services, with 80% of clients directed within 500 km of their closest
  serving site" [38]);
* clients reaching the operator through transit enter wherever that
  transit interconnects with the operator, which can haul traffic far from
  home — the source of anycast path inflation.

The catchment site is the operator site nearest to the entry city.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..net.ases import ASRegistry
from ..net.facilities import PeeringRegistry
from ..net.geography import City, haversine_km
from ..net.relationships import ASGraph, Relationship
from ..net.routing import BgpSimulator
from .cdn import ServingSite


@dataclass(frozen=True, slots=True)
class CatchmentResult:
    """Anycast catchment for one client AS."""

    client_asn: int
    site: ServingSite
    entry_city: City


class AnycastModel:
    """Computes per-AS catchments for one anycast hypergiant."""

    def __init__(self, hypergiant_key: str, hg_asn: int,
                 sites: Sequence[ServingSite], graph: ASGraph,
                 registry: ASRegistry, peeringdb: PeeringRegistry,
                 bgp: BgpSimulator) -> None:
        if not sites:
            raise ConfigError(f"anycast {hypergiant_key!r} has no sites")
        self._key = hypergiant_key
        self._hg_asn = hg_asn
        self._sites = list(sites)
        self._graph = graph
        self._registry = registry
        self._pdb = peeringdb
        self._bgp = bgp
        self._cache: Dict[int, Optional[CatchmentResult]] = {}
        # Entry cities repeat heavily across client ASes (there are only a
        # few dozen cities in the atlas), so nearest-site answers are
        # memoised per city.
        self._nearest_cache: Dict[City, ServingSite] = {}
        self._remote_entry_cache: Dict[City, City] = {}

    @property
    def sites(self) -> List[ServingSite]:
        return list(self._sites)

    def _nearest_site(self, city: City) -> ServingSite:
        cached = self._nearest_cache.get(city)
        if cached is None:
            cached = min(self._sites,
                         key=lambda s: (haversine_km(city.lat, city.lon,
                                                     s.city.lat, s.city.lon),
                                        s.site_id))
            self._nearest_cache[city] = cached
        return cached

    def _entry_city(self, client_asn: int) -> Optional[City]:
        """Where the client's best route enters the anycast network."""
        if client_asn == self._hg_asn:
            return self._registry.get(client_asn).home_city
        client = self._registry.get(client_asn)
        rel = self._graph.relationship_of(client_asn, self._hg_asn)
        if rel is not None:
            # Direct interconnection: enter at the common facility nearest
            # to the client's home. Peers with no shared facility are
            # remote peerings [47]: they still enter wherever the
            # *operator* has presence, nearest to the client.
            common = self._pdb.common_facilities(client_asn, self._hg_asn)
            if common:
                cities = [self._pdb.facility(fid).city for fid in common]
            else:
                # Remote peering: nearest operator presence. The operator
                # city list is fixed, so memoise per client home city.
                home = client.home_city
                cached = self._remote_entry_cache.get(home)
                if cached is None:
                    cities = self._pdb.facility_cities(self._hg_asn) or \
                        [home]
                    cached = min(cities, key=lambda c: (
                        haversine_km(home.lat, home.lon, c.lat, c.lon),
                        c.name))
                    self._remote_entry_cache[home] = cached
                return cached
            return min(cities, key=lambda c: (
                haversine_km(client.home_city.lat, client.home_city.lon,
                             c.lat, c.lon), c.name))
        # Indirect: walk the BGP route; the penultimate AS hands traffic to
        # the anycast operator wherever *they* interconnect. Only the
        # handoff AS matters, so ask the route table for it directly
        # rather than materializing the whole path.
        handoff_asn = self._bgp.routes_to(
            [self._hg_asn]).penultimate_of(client_asn)
        if handoff_asn is None:
            return None
        handoff = self._registry.get(handoff_asn)
        common = self._pdb.common_facilities(handoff_asn, self._hg_asn)
        if common:
            cities = [self._pdb.facility(fid).city for fid in common]
            return min(cities, key=lambda c: (
                haversine_km(handoff.home_city.lat, handoff.home_city.lon,
                             c.lat, c.lon), c.name))
        return handoff.home_city

    def catchment(self, client_asn: int) -> Optional[CatchmentResult]:
        """The site serving a client AS (None if the AS cannot reach it)."""
        if client_asn not in self._cache:
            entry = self._entry_city(client_asn)
            if entry is None:
                self._cache[client_asn] = None
            else:
                self._cache[client_asn] = CatchmentResult(
                    client_asn=client_asn,
                    site=self._nearest_site(entry),
                    entry_city=entry)
        return self._cache[client_asn]

    def catchment_map(self, client_asns: Sequence[int]
                      ) -> Dict[int, CatchmentResult]:
        """Catchments for many client ASes (unreachable ones omitted)."""
        result = {}
        for asn in client_asns:
            entry = self.catchment(asn)
            if entry is not None:
                result[asn] = entry
        return result
