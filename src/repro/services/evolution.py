"""Longitudinal off-net growth: the [25] lens on the map.

Table 1 wants the services component refreshed *weekly*; the companion
SIGCOMM paper the authors cite ("Seven years in the life of hypergiants'
off-nets" [25]) tracked off-net deployments over years of TLS scans. This
module models that time dimension: hypergiant off-net programmes grow
epoch by epoch (logistic adoption into not-yet-covered eyeballs, biggest
first), and periodic scans produce the footprint time series a
longitudinal study would plot.

The model runs *on top of* a built scenario without mutating it: each
epoch snapshot lists the off-net host ASes a scan at that epoch would
discover, with the scenario's initial deployment as the final state that
growth converges toward (and beyond, up to each hypergiant's ceiling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from ..errors import ConfigError
from ..net.ases import AutonomousSystem
from ..scenario import Scenario
from .hypergiants import OffnetReach


@dataclass
class EpochSnapshot:
    """What a TLS scan at one epoch would find."""

    epoch: int
    offnet_hosts: Dict[str, Set[int]]      # hg key -> eyeball ASNs

    def host_count(self, hg_key: str) -> int:
        return len(self.offnet_hosts.get(hg_key, set()))


@dataclass
class GrowthSeries:
    """Per-hypergiant off-net growth over all epochs."""

    snapshots: List[EpochSnapshot]

    def counts_for(self, hg_key: str) -> List[int]:
        return [snap.host_count(hg_key) for snap in self.snapshots]

    def user_coverage_series(self, hg_key: str,
                             users_by_as: Dict[int, float]
                             ) -> List[float]:
        """Share of all eyeball users inside off-net host ASes, per
        epoch — the headline curve of a longitudinal off-net study."""
        total = sum(users_by_as.values())
        if total <= 0:
            raise ConfigError("no users")
        series = []
        for snap in self.snapshots:
            hosts = snap.offnet_hosts.get(hg_key, set())
            covered = sum(users_by_as.get(a, 0.0) for a in hosts)
            series.append(covered / total)
        return series

    def is_monotone(self, hg_key: str) -> bool:
        counts = self.counts_for(hg_key)
        return all(b >= a for a, b in zip(counts, counts[1:]))


class OffnetGrowthModel:
    """Simulates epoch-by-epoch off-net adoption per hypergiant."""

    def __init__(self, scenario: Scenario, rng: np.random.Generator,
                 adoption_rate: float = 0.18) -> None:
        if not 0.0 < adoption_rate <= 1.0:
            raise ConfigError("adoption_rate must be in (0, 1]")
        self._scenario = scenario
        self._rng = rng
        self._rate = adoption_rate

    def _ceiling_hosts(self, hg_key: str) -> List[AutonomousSystem]:
        """Eyeballs a hypergiant would eventually deploy into, ranked
        biggest-first (its long-run ceiling)."""
        scenario = self._scenario
        spec = scenario.catalog.hypergiants[hg_key]
        if spec.offnet_reach is OffnetReach.NONE:
            return []
        weights = scenario.topology.eyeball_size_weight
        eyeballs = sorted(scenario.registry.eyeballs(),
                          key=lambda e: -weights[e.asn])
        if spec.offnet_reach is OffnetReach.MAJOR:
            share = 0.75
        else:
            share = 0.35
        return eyeballs[:max(1, int(len(eyeballs) * share))]

    def run(self, epochs: int = 14) -> GrowthSeries:
        """Grow every off-net programme and scan it each epoch.

        Adoption is logistic-flavoured: each epoch, every not-yet-covered
        ceiling host deploys with probability ``adoption_rate`` weighted
        by its rank (big networks sign earlier), seeded from a small
        initial deployment.
        """
        if epochs < 1:
            raise ConfigError("epochs must be >= 1")
        scenario = self._scenario
        current: Dict[str, Set[int]] = {}
        ceilings: Dict[str, List[AutonomousSystem]] = {}
        for key, spec in scenario.catalog.hypergiants.items():
            ceiling = self._ceiling_hosts(key)
            ceilings[key] = ceiling
            # Initial footprint: the top few networks only.
            seed_count = max(1, len(ceiling) // 12) if ceiling else 0
            current[key] = {e.asn for e in ceiling[:seed_count]}

        snapshots: List[EpochSnapshot] = []
        for epoch in range(epochs):
            snapshots.append(EpochSnapshot(
                epoch=epoch,
                offnet_hosts={k: set(v) for k, v in current.items()}))
            for key, ceiling in ceilings.items():
                if not ceiling:
                    continue
                n = len(ceiling)
                for rank, eyeball in enumerate(ceiling):
                    if eyeball.asn in current[key]:
                        continue
                    rank_factor = 1.5 - rank / max(1, n - 1)
                    if self._rng.random() < self._rate * rank_factor:
                        current[key].add(eyeball.asn)
        return GrowthSeries(snapshots=snapshots)
