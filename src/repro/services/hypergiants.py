"""Hypergiant specifications.

The paper's premise is that a handful of large cloud/content providers are
responsible for ~90% of Internet traffic [25] and deploy serving
infrastructure both *on-net* (their own AS) and *off-net* (caches inside
eyeball networks). The fictional-but-recognisable hypergiants below mirror
the deployment styles the literature documents:

* ``googol`` — search/video giant, huge off-net cache program, operates the
  dominant public DNS service (the probing target of §3.1.2);
* ``metabook`` — social giant with a wide off-net program (its server map
  is the dot layer of Figure 1b);
* ``streamflix`` — video-on-demand, off-net appliances, custom-URL
  redirection (§3.2.3's hard case);
* ``microcdn`` — cloud+CDN whose ground-truth traffic plays the role of the
  Microsoft CDN logs the paper validates against (95%/60%/99% coverage);
* ``amazonia`` — cloud with a private peering fabric, no off-nets;
* ``akamee`` — third-party CDN with a deep off-net program;
* ``cloudfast``/``fastedge`` — anycast CDNs (§3.2.3);
* ``appleorchard``, ``tiktak`` — large first-party services.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class OffnetReach(enum.Enum):
    """How aggressively a hypergiant deploys caches in other networks."""

    NONE = "none"
    MINOR = "minor"
    MAJOR = "major"


class RedirectionScheme(enum.Enum):
    """How a service steers clients to serving sites (§3.2)."""

    DNS = "dns"                # DNS-based redirection (maybe with ECS)
    ANYCAST = "anycast"        # one IP, BGP picks the site
    CUSTOM_URL = "custom_url"  # per-client URLs embedded in content


@dataclass(frozen=True)
class HypergiantSpec:
    """Public-knowledge description of one hypergiant."""

    key: str
    display_name: str
    is_cloud: bool                 # hosts third-party services
    operates_public_dns: bool      # runs the GDNS-like resolver
    offnet_reach: OffnetReach
    uses_anycast: bool             # serves over anycast prefixes
    cert_org: str                  # organisation string on its TLS certs

    @property
    def has_offnets(self) -> bool:
        return self.offnet_reach is not OffnetReach.NONE


_SPECS: Tuple[HypergiantSpec, ...] = (
    HypergiantSpec("googol", "Googol", True, True, OffnetReach.MAJOR,
                   False, "Googol LLC"),
    HypergiantSpec("metabook", "MetaBook", False, False, OffnetReach.MAJOR,
                   False, "MetaBook Inc"),
    HypergiantSpec("streamflix", "StreamFlix", False, False,
                   OffnetReach.MAJOR, False, "StreamFlix Inc"),
    HypergiantSpec("microcdn", "MicroCDN", True, False, OffnetReach.MINOR,
                   False, "MicroCDN Corp"),
    HypergiantSpec("amazonia", "Amazonia", True, False, OffnetReach.NONE,
                   False, "Amazonia Web Services"),
    HypergiantSpec("akamee", "Akamee", True, False, OffnetReach.MAJOR,
                   False, "Akamee Technologies"),
    HypergiantSpec("cloudfast", "CloudFast", True, False, OffnetReach.NONE,
                   True, "CloudFast Inc"),
    HypergiantSpec("appleorchard", "AppleOrchard", False, False,
                   OffnetReach.MINOR, False, "AppleOrchard Inc"),
    HypergiantSpec("tiktak", "TikTak", False, False, OffnetReach.MINOR,
                   False, "TikTak Pte"),
    HypergiantSpec("fastedge", "FastEdge", True, False, OffnetReach.NONE,
                   True, "FastEdge Inc"),
)


def default_hypergiants() -> Dict[str, HypergiantSpec]:
    """All hypergiant specs keyed by their short key (insertion-ordered)."""
    return {spec.key: spec for spec in _SPECS}


def hypergiant_names() -> Tuple[str, ...]:
    """Display names in canonical order (used for AS creation)."""
    return tuple(spec.display_name for spec in _SPECS)


# The hypergiant that plays the Microsoft-CDN role: its ground-truth
# traffic is the validation target for the paper's coverage numbers.
GROUND_TRUTH_CDN_KEY = "microcdn"
# The hypergiant whose server map is plotted in Figure 1b.
FIG1B_SERVER_MAP_KEY = "metabook"
# The public-DNS operator probed in §3.1.2.
PUBLIC_DNS_OPERATOR_KEY = "googol"
