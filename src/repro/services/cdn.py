"""Hypergiant serving infrastructure: on-net PoPs and off-net caches.

The largest providers "serve traffic from CDN caches in thousands of
networks around the world [25] or across private peering links only used
for their traffic [64]" (§1). We model both deployment modes:

* **on-net sites** — serving prefixes inside the hypergiant's own AS,
  placed at cities where the hypergiant has facility presence;
* **off-net sites** — serving prefixes inside *eyeball* ASes (the
  GGC/FNA/OCA pattern), deployed preferentially into large eyeballs.

Long-tail services without a hypergiant host get a serving prefix in a stub
hosting AS.

Everything allocated here lands in the shared :class:`PrefixTable` with
``SERVER_ONNET`` / ``SERVER_OFFNET`` kinds, which the TLS certificate store
then binds to owner organisations — the raw material of the §3.2.2 scans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ServiceConfig
from ..errors import ConfigError
from ..net.ases import ASType
from ..net.geography import City, WorldAtlas
from ..net.prefixes import PrefixKind, PrefixTable
from ..net.topology import TopologyBuild
from .catalog import ServiceCatalog
from .hypergiants import OffnetReach


class SiteKind(enum.Enum):
    """Whether a site lives in the hypergiant's own AS or a host AS."""

    ONNET = "onnet"
    OFFNET = "offnet"


@dataclass(frozen=True)
class ServingSite:
    """One serving location of a hypergiant."""

    site_id: int                # index within the hypergiant's site list
    hypergiant_key: str
    kind: SiteKind
    city: City
    host_asn: int               # hypergiant ASN (on-net) or eyeball ASN
    prefix_ids: Tuple[int, ...]

    @property
    def is_offnet(self) -> bool:
        return self.kind is SiteKind.OFFNET


@dataclass
class CdnDeployment:
    """All serving infrastructure, indexed for mapping and for scans."""

    sites_by_hypergiant: Dict[str, List[ServingSite]] = field(
        default_factory=dict)
    # eyeball ASN -> {hypergiant_key -> site} for off-net lookups.
    offnet_index: Dict[int, Dict[str, ServingSite]] = field(
        default_factory=dict)
    # prefix id -> (hypergiant_key, site) for scan-side lookups.
    site_of_prefix: Dict[int, Tuple[str, ServingSite]] = field(
        default_factory=dict)
    # stub-hosted service key -> hosting prefix id.
    stub_hosting: Dict[str, int] = field(default_factory=dict)

    def sites(self, hypergiant_key: str) -> List[ServingSite]:
        return list(self.sites_by_hypergiant.get(hypergiant_key, []))

    def onnet_sites(self, hypergiant_key: str) -> List[ServingSite]:
        return [s for s in self.sites(hypergiant_key)
                if s.kind is SiteKind.ONNET]

    def offnet_site_in_as(self, asn: int,
                          hypergiant_key: str) -> Optional[ServingSite]:
        return self.offnet_index.get(asn, {}).get(hypergiant_key)

    def all_serving_prefixes(self) -> List[int]:
        return sorted(self.site_of_prefix)

    def offnet_host_count(self, hypergiant_key: str) -> int:
        return sum(1 for s in self.sites(hypergiant_key) if s.is_offnet)


def _offnet_probability(reach: OffnetReach, size_quantile: float,
                        base_major: float, base_minor: float) -> float:
    """Probability an eyeball at a given size quantile hosts an off-net.

    ``size_quantile`` is 0 for the largest eyeball, 1 for the smallest;
    deployment probability decays with it — hypergiants install caches in
    big networks first.
    """
    if reach is OffnetReach.NONE:
        return 0.0
    base = base_major if reach is OffnetReach.MAJOR else base_minor
    return min(0.98, base * (1.8 - 1.6 * size_quantile))


def deploy_cdns(config: ServiceConfig, atlas: WorldAtlas,
                topo: TopologyBuild, catalog: ServiceCatalog,
                prefix_table: PrefixTable,
                rng: np.random.Generator) -> CdnDeployment:
    """Allocate serving prefixes for every hypergiant and stub host."""
    config.validate()
    if prefix_table.frozen:
        raise ConfigError("prefix table already frozen")
    deployment = CdnDeployment()
    registry = topo.registry
    eyeballs = registry.eyeballs()
    weights = topo.eyeball_size_weight
    ranked_eyeballs = sorted(eyeballs, key=lambda e: -weights[e.asn])

    for key, spec in catalog.hypergiants.items():
        hg_asn = topo.hypergiant_asns.get(spec.display_name)
        if hg_asn is None:
            raise ConfigError(f"no AS generated for hypergiant {key!r}")
        sites: List[ServingSite] = []

        # On-net PoPs at cities where the hypergiant has facilities; every
        # hypergiant keeps a core deployment even without facility data.
        cities = topo.peeringdb.facility_cities(hg_asn)
        unique_cities: List[City] = []
        seen = set()
        for city in cities:
            if (city.country_code, city.name) not in seen:
                seen.add((city.country_code, city.name))
                unique_cities.append(city)
        if not unique_cities:
            unique_cities = [registry.get(hg_asn).home_city]
        # Anycast CDNs deploy many thin sites; others fewer, bigger ones.
        target = (config.anycast_site_count if spec.uses_anycast
                  else max(6, int(len(unique_cities) * 0.6)))
        target = min(target, len(unique_cities))
        chosen = rng.choice(len(unique_cities), size=target, replace=False)
        for city_idx in sorted(int(i) for i in chosen):
            city = unique_cities[city_idx]
            n_prefixes = 1 + int(rng.integers(0, 3))
            pids = prefix_table.add_many(
                hg_asn, PrefixKind.SERVER_ONNET, city, n_prefixes)
            site = ServingSite(
                site_id=len(sites), hypergiant_key=key, kind=SiteKind.ONNET,
                city=city, host_asn=hg_asn, prefix_ids=tuple(pids))
            sites.append(site)
            for pid in pids:
                deployment.site_of_prefix[pid] = (key, site)

        # Off-net caches inside eyeball networks, biggest networks first,
        # scaled by the hypergiants' per-country infrastructure presence.
        n_eyeballs = len(ranked_eyeballs)
        presence = topo.hg_country_presence
        for rank, eyeball in enumerate(ranked_eyeballs):
            quantile = rank / max(1, n_eyeballs - 1)
            prob = _offnet_probability(
                spec.offnet_reach, quantile,
                config.offnet_reach_major, config.offnet_reach_minor)
            prob *= presence.get(eyeball.country_code, 1.0)
            if prob <= 0 or rng.random() >= prob:
                continue
            pid = prefix_table.add(
                eyeball.asn, PrefixKind.SERVER_OFFNET, eyeball.home_city)
            site = ServingSite(
                site_id=len(sites), hypergiant_key=key, kind=SiteKind.OFFNET,
                city=eyeball.home_city, host_asn=eyeball.asn,
                prefix_ids=(pid,))
            sites.append(site)
            deployment.offnet_index.setdefault(
                eyeball.asn, {})[key] = site
            deployment.site_of_prefix[pid] = (key, site)

        deployment.sites_by_hypergiant[key] = sites

    # Stub hosting for services without a hypergiant host.
    stubs = registry.of_type(ASType.STUB)
    if stubs:
        for service in catalog:
            if service.host_key is not None:
                continue
            stub = stubs[int(rng.integers(len(stubs)))]
            pid = prefix_table.add(
                stub.asn, PrefixKind.HOSTING, stub.home_city)
            deployment.stub_hosting[service.key] = pid
    return deployment
