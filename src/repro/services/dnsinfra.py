"""The DNS resolution ecosystem.

Everything §3.1-§3.2's techniques touch lives here:

* **Recursive resolver mix** — each client prefix splits its queries
  between its ISP's resolver and the Googol public DNS ("GDNS", which like
  its real counterpart answers 30-35% of DNS queries [16]). Some networks
  default CPE to public DNS, making their ISP resolvers nearly silent —
  those networks are invisible to root-log crawling, which is one reason
  the two techniques of §3.1.2 complement each other.
* **GDNS PoPs and caches** — GDNS operates PoPs worldwide; a prefix is
  served by a nearby PoP. Caches are scoped per (PoP, ECS /24, domain), so
  a *non-recursive* query with an ECS option reveals whether a client from
  that /24 recently resolved the domain — the cache-probing technique.
* **Cache occupancy oracle** — client queries per (prefix, domain) form a
  Poisson process whose rate comes from the traffic matrix. A probe at
  time t hits iff a client query landed within the record's TTL, i.e.
  with probability 1 - exp(-lambda_eff * TTL) for probes spaced >= TTL.
  ``observability_scale`` folds per-PoP cache sharding/eviction and
  probe-window misalignment into one calibrated constant (see DESIGN.md).
* **Exact resolver cache** — a discrete-event cache with real TTL
  semantics, used by unit tests and small-scale simulations to validate
  the analytic oracle.
* **Authoritative DNS** — answers ECS queries from the ground-truth
  mapping for ECS-supporting services, and refuses ECS precision for the
  rest (they answer based on resolver location).
* **Root servers** — 13 letters; Chromium's random-TLD interception
  probes leak through ISP resolvers to the roots, and a subset of root
  operators publish usable logs (§3.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DnsConfig
from ..errors import ConfigError, MeasurementError
from ..net.ases import ASRegistry, ASType
from ..net.geography import City, WorldAtlas, haversine_km_matrix
from ..net.prefixes import PrefixKind, PrefixTable
from .catalog import Service, ServiceCatalog
from .mapping import GroundTruthMapping
from .cdn import ServingSite

SECONDS_PER_DAY = 86_400.0

# Calibration target: the median user prefix's per-probe hit probability
# aggregated over the top-20 domains (keeps hit rates informative rather
# than saturated, and leaves the low-activity tail of prefixes genuinely
# hard to detect; see DESIGN.md "Analytic cache occupancy").
TARGET_MEDIAN_AGGREGATE_HIT = 0.22

# Fraction of ISPs that outsource recursion entirely to public DNS (CPE
# defaults / forwarders) — their own resolvers never appear at the roots,
# one of the blind spots that keeps root-log coverage near the paper's 60%.
OUTSOURCED_RESOLVER_FRACTION = 0.44


@dataclass(frozen=True)
class GdnsPop:
    """One point of presence of the public DNS service."""

    pop_id: int
    city: City

    @property
    def name(self) -> str:
        return f"gdns-{self.city.name.lower().replace(' ', '-')}"


class GoogleDnsModel:
    """PoP placement, per-prefix PoP attachment and GDNS query shares."""

    def __init__(self, config: DnsConfig, atlas: WorldAtlas,
                 registry: ASRegistry, prefix_table: PrefixTable,
                 rng: np.random.Generator) -> None:
        config.validate()
        if not prefix_table.frozen:
            raise ConfigError("freeze the prefix table first")
        self._config = config
        self.pops = self._place_pops(config, atlas)
        self.pop_of_prefix = self._attach_prefixes(prefix_table, rng)
        self.gdns_share, self.outsourced_by_asn = self._draw_shares(
            config, registry, prefix_table, rng)
        # Share of a prefix's DNS activity that shows up at the roots with
        # the ISP's own resolver address: zero when recursion is
        # outsourced, the non-GDNS remainder otherwise.
        outsourced_mask = np.array(
            [self.outsourced_by_asn.get(int(asn), False)
             for asn in prefix_table.asn_array])
        self.isp_resolver_share = np.where(
            outsourced_mask, 0.0, 1.0 - self.gdns_share)

    @staticmethod
    def _place_pops(config: DnsConfig, atlas: WorldAtlas) -> List[GdnsPop]:
        # PoPs go to the capitals of the largest countries, spread over
        # regions round-robin so no region is left unserved.
        by_region: Dict[str, List] = {}
        for country in sorted(atlas.countries,
                              key=lambda c: -c.internet_users_m):
            by_region.setdefault(country.region, []).append(country)
        pops: List[GdnsPop] = []
        region_lists = list(by_region.values())
        cursor = 0
        while len(pops) < config.gdns_pop_count:
            progressed = False
            for countries in region_lists:
                if len(pops) >= config.gdns_pop_count:
                    break
                if cursor < len(countries):
                    city = countries[cursor].capital
                    pops.append(GdnsPop(pop_id=len(pops), city=city))
                    progressed = True
            if not progressed:
                break
            cursor += 1
        return pops

    def _attach_prefixes(self, prefix_table: PrefixTable,
                         rng: np.random.Generator) -> np.ndarray:
        cities = prefix_table.cities
        city_lats = np.array([c.lat for c in cities])
        city_lons = np.array([c.lon for c in cities])
        pop_lats = np.array([p.city.lat for p in self.pops])
        pop_lons = np.array([p.city.lon for p in self.pops])
        dist = haversine_km_matrix(city_lats, city_lons, pop_lats, pop_lons)
        order = np.argsort(dist, axis=1)
        nearest = order[:, 0]
        second = order[:, min(1, order.shape[1] - 1)]
        # ~12% of a city's prefixes are served by the second-nearest PoP
        # (load balancing and routing artefacts).
        city_idx = prefix_table.city_index_array
        use_second = rng.random(len(city_idx)) < 0.12
        chosen = np.where(use_second, second[city_idx], nearest[city_idx])
        return chosen.astype(np.int32)

    @staticmethod
    def _draw_shares(config: DnsConfig, registry: ASRegistry,
                     prefix_table: PrefixTable, rng: np.random.Generator
                     ) -> "Tuple[np.ndarray, Dict[int, bool]]":
        """Per-prefix *direct* GDNS adoption, plus per-AS outsourcing flags.

        ``gdns_share`` models clients configured to query GDNS directly —
        their queries carry a client-scoped ECS and populate probeable
        cache entries. Adoption "varies by country (among other
        dimensions)" (§3.1.3), so the share is a country-level draw with
        small per-AS and per-prefix jitter — which is exactly why the
        paper's within-country ISP comparison (Figure 2) is meaningful.

        Separately, :data:`OUTSOURCED_RESOLVER_FRACTION` of networks run
        no recursion of their own: their resolver is a forwarder into
        public DNS. Forwarded queries carry the *forwarder's* address, so
        they neither populate client-scoped cache entries nor surface the
        ISP's ASN at the roots — the flag therefore only zeroes the AS's
        root-log visibility (see ``isp_resolver_share``).
        """
        mean = config.gdns_query_share_mean
        spread = config.gdns_query_share_spread
        strength = max(2.0, mean * (1 - mean) / max(spread, 1e-3) ** 2)
        country_share: Dict[str, float] = {}
        share_by_asn: Dict[int, float] = {}
        outsourced: Dict[int, bool] = {}
        for asys in registry:
            if asys.country_code not in country_share:
                country_share[asys.country_code] = float(
                    rng.beta(mean * strength, (1 - mean) * strength))
            share = country_share[asys.country_code] + rng.normal(0.0, 0.01)
            share_by_asn[asys.asn] = float(np.clip(share, 0.02, 0.95))
            outsourced[asys.asn] = bool(
                rng.random() < OUTSOURCED_RESOLVER_FRACTION)
        shares = np.array([share_by_asn.get(int(asn), mean)
                           for asn in prefix_table.asn_array])
        jitter = rng.normal(0.0, 0.01, size=len(shares))
        return np.clip(shares + jitter, 0.02, 0.95), outsourced

    def pop_for_prefix(self, pid: int) -> GdnsPop:
        return self.pops[int(self.pop_of_prefix[pid])]


class CacheOracle:
    """Analytic cache-occupancy model for GDNS ECS-scoped caches.

    ``rate_per_day[s, p]`` is the ground-truth client query rate reaching
    GDNS for service ``s`` from prefix ``p``. Cache entries live for
    exactly TTL after the *insertion* query (hits do not extend them), so
    occupancy is a renewal process alternating a busy period of length TTL
    and an idle period of mean ``1/lambda``; the stationary probability
    that a probe at a random instant hits is::

        P(hit) = lambda * TTL / (1 + lambda * TTL)

    with ``lambda = rate * observability_scale``. (A naive
    ``1 - exp(-lambda*TTL)`` agrees in the unsaturated regime but
    overestimates occupancy when ``lambda*TTL >> 1``; the exact
    event-driven :class:`ResolverCache` is used in tests to pin this
    formula down.)
    """

    def __init__(self, rate_per_day: np.ndarray, ttls: Sequence[int],
                 observability_scale: float) -> None:
        if rate_per_day.ndim != 2:
            raise ConfigError("rate matrix must be 2-D (services x prefixes)")
        if len(ttls) != rate_per_day.shape[0]:
            raise ConfigError("one TTL per service required")
        if observability_scale <= 0:
            raise ConfigError("observability_scale must be positive")
        self._rate = rate_per_day
        self._ttls = np.asarray(ttls, dtype=float)
        self._scale = observability_scale

    @classmethod
    def calibrated(cls, rate_per_day: np.ndarray, ttls: Sequence[int],
                   probe_domain_sids: Sequence[int],
                   user_prefix_ids: np.ndarray) -> "CacheOracle":
        """Pick ``observability_scale`` so the median user prefix's
        aggregate per-probe hit probability over the probe domains hits
        :data:`TARGET_MEDIAN_AGGREGATE_HIT`."""
        ttl_arr = np.asarray(ttls, dtype=float)
        sids = np.asarray(list(probe_domain_sids), dtype=int)
        per_day = rate_per_day[np.ix_(sids, np.asarray(user_prefix_ids))]
        lam_ttl = (per_day / SECONDS_PER_DAY) * ttl_arr[sids, None]
        aggregate = lam_ttl.sum(axis=0)
        median = float(np.median(aggregate[aggregate > 0])) if (
            aggregate > 0).any() else 0.0
        if median <= 0:
            scale = 1.0
        else:
            # Invert P = x/(1+x) at the target: x = P/(1-P).
            target = TARGET_MEDIAN_AGGREGATE_HIT
            scale = (target / (1.0 - target)) / median
        return cls(rate_per_day, ttls, scale)

    @property
    def observability_scale(self) -> float:
        return self._scale

    def hit_probability(self, sid: int, pid: int) -> float:
        """Per-probe hit probability for one (service, prefix)."""
        lam_ttl = ((self._rate[sid, pid] / SECONDS_PER_DAY) * self._scale
                   * self._ttls[sid])
        return float(lam_ttl / (1.0 + lam_ttl))

    def hit_probability_matrix(self, sids: Sequence[int],
                               pids: np.ndarray) -> np.ndarray:
        """(len(sids), len(pids)) per-probe hit probabilities."""
        sid_arr = np.asarray(list(sids), dtype=int)
        rates = self._rate[np.ix_(sid_arr, pids)] / SECONDS_PER_DAY
        lam_ttl = rates * self._scale * self._ttls[sid_arr, None]
        return lam_ttl / (1.0 + lam_ttl)

    def probe(self, sid: int, pid: int, rng: np.random.Generator) -> bool:
        """Issue one probe; Bernoulli draw from the hit probability."""
        return bool(rng.random() < self.hit_probability(sid, pid))


class TemporalCacheOracle(CacheOracle):
    """Cache oracle with diurnal query-rate modulation.

    The base oracle works with daily-mean rates; this variant evaluates
    occupancy at a specific UTC instant using each prefix's local diurnal
    multiplier. Valid under the quasi-stationary approximation TTL <<
    diurnal timescale (seconds vs hours), which holds for every service
    TTL in the catalogue.

    This is what lets a *time-sliced* probing campaign (§3.1.3's "hourly"
    ambition in Table 1) see more hits at a region's local evening than at
    its local dawn.
    """

    def __init__(self, rate_per_day: np.ndarray, ttls: Sequence[int],
                 observability_scale: float, utc_offsets: np.ndarray,
                 curve) -> None:
        super().__init__(rate_per_day, ttls, observability_scale)
        if len(utc_offsets) != rate_per_day.shape[1]:
            raise ConfigError("one UTC offset per prefix required")
        self._offsets = np.asarray(utc_offsets, dtype=float)
        self._curve = curve

    @classmethod
    def from_oracle(cls, oracle: CacheOracle, utc_offsets: np.ndarray,
                    curve) -> "TemporalCacheOracle":
        return cls(oracle._rate, list(oracle._ttls),
                   oracle.observability_scale, utc_offsets, curve)

    def _multiplier_at(self, pids: np.ndarray,
                       t_seconds: float) -> np.ndarray:
        local_hours = ((t_seconds / 3600.0)
                       + self._offsets[pids]) % 24.0
        theta = 2.0 * np.pi * local_hours / 24.0
        c = self._curve
        return (1.0 + c.cos1 * np.cos(theta) + c.sin1 * np.sin(theta)
                + c.cos2 * np.cos(2 * theta) + c.sin2 * np.sin(2 * theta))

    def hit_probability_matrix_at(self, sids: Sequence[int],
                                  pids: np.ndarray,
                                  t_seconds: float) -> np.ndarray:
        """(services, prefixes) hit probabilities for probes at time t."""
        pid_arr = np.asarray(pids, dtype=int)
        sid_arr = np.asarray(list(sids), dtype=int)
        rates = self._rate[np.ix_(sid_arr, pid_arr)] / SECONDS_PER_DAY
        rates = rates * self._multiplier_at(pid_arr, t_seconds)[None, :]
        lam_ttl = rates * self._scale * self._ttls[sid_arr, None]
        return lam_ttl / (1.0 + lam_ttl)


class ResolverCache:
    """Exact discrete-event DNS cache with per-(scope, domain) TTL entries.

    Used in tests and small simulations to validate the analytic oracle:
    feed it real query events, then probe at chosen times.
    """

    def __init__(self) -> None:
        self._expiry: Dict[Tuple[str, str], float] = {}

    def observe_query(self, scope: str, domain: str, t: float,
                      ttl: float) -> bool:
        """A client query arrives at time ``t``; returns True on cache hit
        (entry still valid), False on miss (entry (re)inserted)."""
        key = (scope, domain)
        hit = self._expiry.get(key, -np.inf) > t
        if not hit:
            self._expiry[key] = t + ttl
        return hit

    def probe(self, scope: str, domain: str, t: float) -> bool:
        """Non-recursive probe: True iff a valid cache entry exists.
        Probes never insert entries (RD=0 semantics)."""
        return self._expiry.get((scope, domain), -np.inf) > t

    def entry_count(self, t: float) -> int:
        return sum(1 for expiry in self._expiry.values() if expiry > t)


@dataclass(frozen=True)
class EcsAnswer:
    """Authoritative answer to an ECS query."""

    service_key: str
    site: Optional[ServingSite]     # None for stub-hosted services
    scope_prefix_len: int           # 24 when ECS honoured, 0 otherwise


class AuthoritativeDns:
    """Authoritative side of DNS redirection, with ECS support flags."""

    def __init__(self, catalog: ServiceCatalog,
                 mapping: GroundTruthMapping) -> None:
        self._catalog = catalog
        self._mapping = mapping

    def resolve_ecs(self, service_key: str, client_pid: int) -> EcsAnswer:
        """Answer a query carrying an ECS client subnet.

        Non-ECS services ignore the option (scope 0) and their answer must
        not be attributed to the client prefix — exactly the limitation
        §3.2.1 describes.
        """
        service = self._catalog.get(service_key)
        if not service.ecs_supported:
            return EcsAnswer(service_key=service_key, site=None,
                             scope_prefix_len=0)
        site = self._mapping.site_of(service, client_pid)
        return EcsAnswer(service_key=service_key, site=site,
                         scope_prefix_len=24)

    def resolve_ecs_batch(self, service_key: str,
                          client_pids: np.ndarray) -> np.ndarray:
        """Vectorised ECS resolution: answer *address prefix id* per client.

        Equivalent to issuing one ECS query per client prefix (the batch
        exists purely for speed). Returns -1 where the service ignores ECS
        or a client is unmapped. The returned prefix id is the public
        face of the answer — callers resolve it to an owner AS through the
        public BGP origin table, not through ground truth.
        """
        service = self._catalog.get(service_key)
        pids = np.asarray(client_pids, dtype=int)
        if not service.ecs_supported:
            return np.full(len(pids), -1, dtype=np.int64)
        assignment = self._mapping.assignment_for_service(service)
        if assignment is None:
            return np.full(len(pids), -1, dtype=np.int64)
        sites = self._mapping.sites_of(service.host_key)
        answer_pid = np.array([s.prefix_ids[0] for s in sites],
                              dtype=np.int64)
        idx = assignment.site_index[pids]
        return np.where(idx >= 0, answer_pid[np.clip(idx, 0, None)], -1)


@dataclass(frozen=True)
class RootServer:
    """One root letter: operator, log policy, and the AS hosting it.

    Real root letters are anycast, but one primary hosting AS per letter
    suffices for the path-prediction experiments of §3.3.1 (paths from
    Atlas probes to root DNS servers).
    """

    letter: str
    operator: str
    logs_usable: bool
    host_asn: int


@dataclass(frozen=True)
class RootLogEntry:
    """Aggregated Chromium-probe volume from one resolver address."""

    resolver_asn: int
    resolver_address: str
    query_count: float
    is_public_resolver: bool


class RootSystem:
    """The 13 root letters and the Chromium-probe log generation."""

    def __init__(self, config: DnsConfig, registry: ASRegistry,
                 rng: np.random.Generator) -> None:
        config.validate()
        letters = [chr(ord("a") + i) for i in range(config.root_server_count)]
        usable = set(rng.choice(
            config.root_server_count,
            size=config.roots_with_usable_logs, replace=False).tolist())
        operators = ["research-org", "registry", "operator-coop",
                     "university", "gov-agency"]
        # Root letters are hosted by research networks and transit
        # providers (ISI/UMD-style operators, §3.1.3).
        hosts = ([a.asn for a in registry.of_type(ASType.RESEARCH)]
                 or [a.asn for a in registry.of_type(ASType.TRANSIT)]
                 or registry.asns)
        self.roots = [
            RootServer(letter=letter,
                       operator=operators[i % len(operators)],
                       logs_usable=(i in usable),
                       host_asn=hosts[i % len(hosts)])
            for i, letter in enumerate(letters)]

    def usable_roots(self) -> List[RootServer]:
        return [r for r in self.roots if r.logs_usable]

    def generate_archive(self, registry: ASRegistry,
                         prefix_table: PrefixTable,
                         users_per_prefix: np.ndarray,
                         isp_resolver_share: np.ndarray,
                         gdns_operator_asn: int,
                         config: DnsConfig,
                         rng: np.random.Generator,
                         probes_per_user_day: float = 6.0
                         ) -> "RootLogArchive":
        """Simulate one day of Chromium random-TLD probes at the roots.

        Per prefix, ``users * chromium_share`` clients issue probes
        through their configured resolver: the ``isp_resolver_share``
        fraction surfaces at the roots with the ISP's resolver address
        (and ASN); the remainder arrives via public DNS and is visible
        only as the GDNS operator's ASN. Volume is split over the root
        letters roughly evenly.
        """
        if len(users_per_prefix) != len(prefix_table):
            raise ConfigError("users vector does not match prefix table")
        if len(isp_resolver_share) != len(prefix_table):
            raise ConfigError("resolver-share vector length mismatch")
        volume = (users_per_prefix * config.chromium_share
                  * probes_per_user_day)
        isp_volume_raw = volume * isp_resolver_share
        gdns_volume = float((volume * (1.0 - isp_resolver_share)).sum())
        by_asn: Dict[int, float] = {}
        for asn, vol in prefix_table.group_by_as(isp_volume_raw).items():
            if vol > 0:
                by_asn[asn] = vol
        entries: List[RootLogEntry] = []
        for asn in sorted(by_asn):
            entries.append(RootLogEntry(
                resolver_asn=asn,
                resolver_address=f"resolver.as{asn}.example",
                query_count=by_asn[asn],
                is_public_resolver=False))
        entries.append(RootLogEntry(
            resolver_asn=gdns_operator_asn,
            resolver_address="resolver.gdns.example",
            query_count=gdns_volume,
            is_public_resolver=True))
        # Split each resolver's volume across root letters (Dirichlet
        # around even shares), then Poisson-sample the daily counts.
        n_roots = len(self.roots)
        per_root: Dict[str, List[RootLogEntry]] = {
            r.letter: [] for r in self.roots}
        for entry in entries:
            split = rng.dirichlet(np.full(n_roots, 20.0)) * entry.query_count
            for root, share in zip(self.roots, split):
                count = float(rng.poisson(share)) if share < 1e6 else share
                if count <= 0:
                    continue
                per_root[root.letter].append(RootLogEntry(
                    resolver_asn=entry.resolver_asn,
                    resolver_address=entry.resolver_address,
                    query_count=count,
                    is_public_resolver=entry.is_public_resolver))
        return RootLogArchive(roots=self.roots, entries_by_root=per_root)


class RootLogArchive:
    """What a researcher crawling root logs can access (§3.1.2).

    Only roots with usable logs return entries; asking for an anonymised
    root raises, mirroring the real-world access restriction.
    """

    def __init__(self, roots: Sequence[RootServer],
                 entries_by_root: Dict[str, List[RootLogEntry]]) -> None:
        self._roots = list(roots)
        self._entries = entries_by_root

    @property
    def roots(self) -> List[RootServer]:
        return list(self._roots)

    def entries_for(self, letter: str) -> List[RootLogEntry]:
        root = next((r for r in self._roots if r.letter == letter), None)
        if root is None:
            raise MeasurementError(f"unknown root letter {letter!r}")
        if not root.logs_usable:
            raise MeasurementError(
                f"root {letter!r} does not publish usable logs")
        return list(self._entries.get(letter, []))
