"""One bounded-LRU implementation for every cache in the repo.

Two measurement paths independently grew the same idea: the
:class:`~repro.net.routing.BgpSimulator` route cache (bounding memory of
long anycast sweeps) and the community edge-cache simulator of §3.2.3
(:mod:`repro.measure.cache_efficacy`). Both are "keep the most recently
used N entries, count hits/misses/evictions" — so both now wrap
:class:`BoundedLru`, and both report the same :class:`CacheStats` shape
through their ``cache_stats()`` methods.

The helper is purely a container: it never draws randomness and its
optional recorder mirroring is observation-only, so wrapping a campaign's
cache in it cannot change what the campaign computes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, Optional, TypeVar

from .obs.recorder import Recorder, resolve_recorder

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Sentinel distinguishing "key absent" from a cached ``None`` value.
_MISS = object()


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counter snapshot of one bounded LRU cache."""

    entries: int
    max_entries: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 when the cache is cold)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BoundedLru(Generic[K, V]):
    """Fixed-capacity mapping with LRU eviction and lookup counters.

    ``get`` counts a hit or a miss and refreshes recency; ``put`` inserts
    (or refreshes) and evicts the least recently used entries beyond
    ``max_entries``. With a ``counter_prefix`` the same three events are
    also mirrored onto a :class:`repro.obs.Recorder` as
    ``<prefix>.hits`` / ``<prefix>.misses`` / ``<prefix>.evictions``.
    """

    def __init__(self, max_entries: int,
                 recorder: Optional[Recorder] = None,
                 counter_prefix: Optional[str] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._max_entries = int(max_entries)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._recorder = resolve_recorder(recorder)
        self._prefix = counter_prefix

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def attach_recorder(self, recorder: Optional[Recorder]) -> None:
        """Mirror counters onto ``recorder`` from now on (observation
        only; requires a ``counter_prefix``)."""
        self._recorder = resolve_recorder(recorder)

    def _count(self, event: str) -> None:
        if self._prefix is not None:
            self._recorder.count(f"{self._prefix}.{event}")

    # -- mapping operations ------------------------------------------------

    def get(self, key: K, default: object = None) -> object:
        """Look ``key`` up, counting a hit (and refreshing recency) or a
        miss; returns ``default`` on miss."""
        value = self._entries.get(key, _MISS)
        if value is not _MISS:
            self._hits += 1
            self._count("hits")
            self._entries.move_to_end(key)
            return value
        self._misses += 1
        self._count("misses")
        return default

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting beyond capacity."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
            self._count("evictions")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        # Pure peek: membership tests never touch the counters or the
        # recency order.
        return key in self._entries

    def values(self) -> Iterator[V]:
        """Cached values in recency order (oldest first); pure peek."""
        return iter(self._entries.values())

    def clear(self) -> None:
        """Drop every entry. Counters survive (an invalidated cache's
        history is still history); use :meth:`reset_counters` for those.
        Dropped entries are not evictions — nothing was displaced."""
        self._entries.clear()

    # -- counters ----------------------------------------------------------

    def reset_counters(self) -> None:
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def cache_stats(self) -> CacheStats:
        """Current counter snapshot."""
        return CacheStats(entries=len(self._entries),
                          max_entries=self._max_entries,
                          hits=self._hits, misses=self._misses,
                          evictions=self._evictions)
